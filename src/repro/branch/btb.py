"""Branch Target Buffer: 2048 entries, direct mapped (paper Table 4)."""

from __future__ import annotations


class BTB:
    """PC -> predicted target map with tag check."""

    def __init__(self, entries: int = 2048) -> None:
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags: list[int | None] = [None] * entries
        self._targets = [0] * entries
        self.lookups = 0
        self.hits = 0

    def predict(self, pc: int) -> int | None:
        """Predicted target for a control instruction at *pc*, if cached."""
        self.lookups += 1
        index = pc & self._mask
        if self._tags[index] == pc:
            self.hits += 1
            return self._targets[index]
        return None

    def update(self, pc: int, target: int) -> None:
        """Record the resolved *target* of the control instruction at *pc*."""
        index = pc & self._mask
        self._tags[index] = pc
        self._targets[index] = target
