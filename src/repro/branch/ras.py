"""Return Address Stack: 16 entries per context (paper Table 4)."""

from __future__ import annotations


class ReturnAddressStack:
    """Fixed-depth circular return-address predictor."""

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: list[int] = []
        self.pushes = 0
        self.pops = 0

    def push(self, return_pc: int) -> None:
        """Record a call's return address (on JAL)."""
        self.pushes += 1
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            del self._stack[0]

    def pop(self) -> int | None:
        """Predict the target of a return (JR ra); None when empty."""
        self.pops += 1
        if self._stack:
            return self._stack.pop()
        return None

    def copy_from(self, other: "ReturnAddressStack") -> None:
        """Clone another context's stack (used at thread remerge)."""
        self._stack = list(other._stack)
