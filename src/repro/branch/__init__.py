"""Branch prediction: two-level predictor, BTB, RAS, trace-cache model."""

from repro.branch.btb import BTB
from repro.branch.predictor import TwoLevelPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.trace_cache import TraceCacheModel

__all__ = ["BTB", "TwoLevelPredictor", "ReturnAddressStack", "TraceCacheModel"]
