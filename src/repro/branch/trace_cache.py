"""Trace-cache fetch model.

The paper equips its baseline with a 1 MB trace cache with *perfect trace
prediction* — deliberately strengthening the baseline's fetch so MMT's
shared fetch is not given an unfair advantage — and then reports that the
trace cache "had a negligible effect on the results".

We model the fetch-shaping consequence of a trace cache rather than its
storage: with the trace cache enabled, a single context (or merged thread
group) may fetch past taken branches, up to ``max_blocks`` basic blocks per
cycle; without it, fetch stops at the first taken branch.  Storage hits are
perfect (1 MB with perfect prediction ≈ always hits for our working sets);
the underlying L1I is still charged for the accesses so the energy model
sees the fetch traffic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TraceCacheModel:
    """Fetch-shaping policy of the trace cache."""

    enabled: bool = True
    max_blocks: int = 3

    def blocks_per_fetch(self) -> int:
        """How many basic blocks one context may fetch through per cycle."""
        return self.max_blocks if self.enabled else 1
