"""Two-level adaptive branch predictor (paper Table 4).

A gshare-style two-level scheme: per-context global history registers
(history length 10) index a shared 1024-entry pattern history table of
2-bit saturating counters, XOR-folded with the branch PC.  The PHT is
shared between hardware contexts, as on real SMT cores — merged MMT
fetches consult it once for the whole thread group.
"""

from __future__ import annotations


class TwoLevelPredictor:
    """GAg/gshare two-level predictor with per-context history."""

    def __init__(
        self,
        pht_entries: int = 1024,
        history_length: int = 10,
        num_contexts: int = 4,
    ) -> None:
        if pht_entries & (pht_entries - 1):
            raise ValueError("PHT entries must be a power of two")
        self.pht_entries = pht_entries
        self.history_length = history_length
        self._history_mask = (1 << history_length) - 1
        self._index_mask = pht_entries - 1
        self._pht = [1] * pht_entries  # weakly not-taken
        self._histories = [0] * num_contexts
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int, tid: int) -> int:
        return (pc ^ self._histories[tid]) & self._index_mask

    def predict(self, pc: int, tid: int) -> bool:
        """Predict taken/not-taken for the branch at *pc* in context *tid*."""
        self.lookups += 1
        return self._pht[self._index(pc, tid)] >= 2

    def update(self, pc: int, tid: int, taken: bool, predicted: bool) -> None:
        """Train the counter and shift the context's history register."""
        index = self._index(pc, tid)
        counter = self._pht[index]
        if taken:
            if counter < 3:
                self._pht[index] = counter + 1
        else:
            if counter > 0:
                self._pht[index] = counter - 1
        self._histories[tid] = (
            (self._histories[tid] << 1) | (1 if taken else 0)
        ) & self._history_mask
        if taken != predicted:
            self.mispredicts += 1

    def sync_history(self, src_tid: int, dst_tid: int) -> None:
        """Copy *src_tid*'s history into *dst_tid* (used when threads remerge,
        so the merged group predicts with one coherent history)."""
        self._histories[dst_tid] = self._histories[src_tid]
