"""MMT feature configurations (paper Table 5) and workload typing."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class WorkloadType(enum.Enum):
    """The paper's SPMD workload categories (§3.1).

    The paper evaluates multi-threaded and multi-execution; message-passing
    is named but deferred to future work (§7) — this repository implements
    it as an extension (separate address spaces plus a shared message
    network driven by the SEND/TRECV instructions).
    """

    MULTI_THREADED = "MT"  # threads share memory, differ in stack pointer
    MULTI_EXECUTION = "ME"  # separate processes, identical initial registers
    MESSAGE_PASSING = "MP"  # separate processes + explicit message channels


@dataclass(frozen=True)
class MMTConfig:
    """Which MMT mechanisms are active (paper Table 5).

    * ``shared_fetch`` — merged fetch with ITIDs and the sync FSM (§4.1).
    * ``shared_execute`` — RST-driven instruction merging at the split stage
      (§4.2); when off, fetch-identical instructions always split.
    * ``register_merging`` — commit-time value comparison (§4.2.7).
    * ``limit_identical`` — the Limit configuration: run N instances of the
      same context with identical inputs (an upper bound on performance).
    """

    name: str = "MMT-FXR"
    shared_fetch: bool = True
    shared_execute: bool = True
    register_merging: bool = True
    limit_identical: bool = False
    fhb_size: int = 32
    lvip_entries: int = 4096
    merge_read_ports: int = 2
    max_catchup_branches: int = 64
    #: Hold a freshly remerged group's fetch for up to ``remerge_drain``
    #: cycles (0 = off) while its members' in-flight instructions commit,
    #: so §4.2.7 register merging sees valid mappings and quiescent writers
    #: and can repair the registers the divergence episode marked unshared.
    #: Measurement (benchmarks/bench_ablation.py) shows the serialization
    #: usually costs more than the extra repairs recover, so the default is
    #: off; the knob remains for the ablation study.
    remerge_drain: int = 0
    #: Honour software HINT instructions as explicit remerge rendezvous
    #: points (the Thread Fusion [36] approach the paper's related-work
    #: section says MMT could combine with).  Off = pure-hardware MMT.
    use_hints: bool = False
    #: Longest a group parks at a HINT waiting for a partner (cycles).
    hint_window: int = 16

    @classmethod
    def base(cls) -> "MMTConfig":
        """Traditional SMT: no MMT mechanisms."""
        return cls(
            name="Base",
            shared_fetch=False,
            shared_execute=False,
            register_merging=False,
        )

    @classmethod
    def mmt_f(cls) -> "MMTConfig":
        """MMT with shared fetch only."""
        return cls(name="MMT-F", shared_execute=False, register_merging=False)

    @classmethod
    def mmt_fx(cls) -> "MMTConfig":
        """MMT with shared fetch and shared execution."""
        return cls(name="MMT-FX", register_merging=False)

    @classmethod
    def mmt_fxr(cls) -> "MMTConfig":
        """Full MMT: shared fetch, shared execution, register merging."""
        return cls(name="MMT-FXR")

    @classmethod
    def mmt_fxr_hints(cls) -> "MMTConfig":
        """Full MMT plus software remerge hints (Thread Fusion combined)."""
        return cls(name="MMT-FXR+H", use_hints=True)

    @classmethod
    def limit(cls) -> "MMTConfig":
        """MMT-FXR running identical instances: the performance upper bound."""
        return cls(name="Limit", limit_identical=True)

    @classmethod
    def all_paper_configs(cls) -> list["MMTConfig"]:
        """The five configurations of Table 5, in paper order."""
        return [cls.base(), cls.mmt_f(), cls.mmt_fx(), cls.mmt_fxr(), cls.limit()]

    def with_fhb_size(self, size: int) -> "MMTConfig":
        """Copy of this config with a different FHB size (Figure 7 sweeps)."""
        return replace(self, fhb_size=size)

    @staticmethod
    def table5_rows() -> list[tuple[str, str]]:
        """The Name/Description rows of the paper's Table 5."""
        return [
            ("Base", "Traditional SMT"),
            ("MMT-F", "MMT, shared fetch only"),
            ("MMT-FX", "MMT, shared fetch and execute"),
            ("MMT-FXR", "MMT-FX with register merging"),
            ("Limit", "MMT-FXR running instances with identical inputs"),
        ]
