"""The MMT contribution: ITIDs, fetch sync, RST, splitter, LVIP, merging."""

from repro.core.config import MMTConfig, WorkloadType
from repro.core.fhb import FetchHistoryBuffer
from repro.core.itid import (
    MAX_THREADS,
    PAIRS,
    first_thread,
    itid_str,
    pair_bit,
    popcount,
    single,
    threads_of,
)
from repro.core.lvip import LoadValuesIdenticalPredictor
from repro.core.regmerge import RegisterMergeUnit
from repro.core.rst import RegisterSharingTable
from repro.core.splitter import SplitDecision, split_itid
from repro.core.sync import FetchMode, SyncController, SyncStats, ThreadGroup

__all__ = [
    "MMTConfig",
    "WorkloadType",
    "FetchHistoryBuffer",
    "MAX_THREADS",
    "PAIRS",
    "first_thread",
    "itid_str",
    "pair_bit",
    "popcount",
    "single",
    "threads_of",
    "LoadValuesIdenticalPredictor",
    "RegisterMergeUnit",
    "RegisterSharingTable",
    "SplitDecision",
    "split_itid",
    "FetchMode",
    "SyncController",
    "SyncStats",
    "ThreadGroup",
]
