"""Commit-time register merging (paper §4.2.7).

The RST tracks register *mappings*, so two threads that write the same
value to the same architected register on divergent paths look different to
it — without help, the whole register file drifts apart and no further
execute-identical instructions are found.  Register merging repairs this:
when an instruction fetched in DETECT or CATCHUP mode commits and its
architected-destination mapping is still valid (no younger in-flight writer
— checked against a shadow copy of the mapping table), the committed value
is compared against the other threads' current values of the same
architected register, bounded by the register file read ports available
that cycle.  Matches set the corresponding RST pair bits back to 1.
"""

from __future__ import annotations

from repro.core.itid import MAX_THREADS, threads_of
from repro.core.rst import RegisterSharingTable
from repro.isa.registers import NUM_ARCH_REGS


class RegisterMergeUnit:
    """Tracks per-thread writer activity and performs commit-time merges."""

    def __init__(self, num_threads: int, read_ports: int = 2) -> None:
        self.num_threads = num_threads
        self.read_ports = read_ports
        # no_active_writer[t][r]: 1 iff no in-flight instruction of thread t
        # writes architected register r (the paper's per-thread bit vector).
        self.no_active_writer = [
            [True] * NUM_ARCH_REGS for _ in range(num_threads)
        ]
        self._ports_left = read_ports
        self.attempts = 0
        self.merges = 0
        self.port_starved = 0

    def new_cycle(self) -> None:
        """Refresh the read-port budget at the start of each cycle."""
        self._ports_left = self.read_ports

    # ------------------------------------------------------- writer tracking
    def on_writer_allocated(self, itid: int, arch_reg: int) -> None:
        """An instruction with *itid* was renamed with destination *arch_reg*."""
        for t in threads_of(itid):
            self.no_active_writer[t][arch_reg] = False

    def on_writer_retired(
        self, tid: int, arch_reg: int, mapping_valid: bool
    ) -> None:
        """A writer committed; restore the bit only if it was the last writer."""
        if mapping_valid:
            self.no_active_writer[tid][arch_reg] = True

    # --------------------------------------------------------------- merging
    def try_merge(
        self,
        itid: int,
        arch_reg: int,
        value,
        rst: RegisterSharingTable,
        read_other_value,
        active_mask: int,
    ) -> int:
        """Attempt value merges for a committing DETECT/CATCHUP instruction.

        *read_other_value(tid)* returns thread *tid*'s current architectural
        value of *arch_reg* (through the shadow mapping into the physical
        register file).  Returns the number of pair bits newly set.
        """
        merged = 0
        own_threads = threads_of(itid)
        for u in range(MAX_THREADS):
            if itid >> u & 1 or not active_mask >> u & 1:
                continue
            if not self.no_active_writer[u][arch_reg]:
                continue
            already = all(rst.pair_shared(arch_reg, t, u) for t in own_threads)
            if already:
                continue
            if self._ports_left <= 0:
                self.port_starved += 1
                break
            self._ports_left -= 1
            self.attempts += 1
            other_value = read_other_value(u)
            if other_value is not None and values_equal(other_value, value):
                for t in own_threads:
                    rst.set_pair(arch_reg, t, u, True, via_merge=True)
                merged += 1
                self.merges += 1
        return merged


def values_equal(a, b) -> bool:
    """Bit-identity comparison as register-file hardware would perform it.

    Ints and floats compare as equal only within their own kind: hardware
    compares raw register bits, and our int/float values model disjoint
    encodings.  NaN never matches (NaN bits would, but Python NaN != NaN and
    our workloads never produce NaN; being conservative is always safe).
    """
    if isinstance(a, float) != isinstance(b, float):
        return False
    return a == b
