"""Instruction splitting: the filter + chooser stage (paper §4.2.2).

This stage sits between decode and register renaming.  Given a
fetch-identical instruction with ITID *S*, it produces the minimal set of
1–4 instructions such that threads grouped in one resulting ITID have
identical values in every source register (per the Register Sharing Table).

Structure follows the paper exactly:

* the *sharing network* reads each source register's pair bits and ANDs the
  combinations to produce a sharing flag for every candidate EID (every
  subset of 2–4 threads);
* the *filter* keeps only EIDs that are subsets of the instruction's ITID;
* the *chooser* emits the valid EID with the most threads; the chosen
  threads are removed and the process repeats (at most 3 splits).

Because value-identity is transitive, the greedy chooser yields the
partition of the ITID into identical-value classes — the provably minimal
instruction set.
"""

from __future__ import annotations

from repro.core.itid import CANDIDATE_EIDS, popcount, threads_of
from repro.core.rst import RegisterSharingTable


class SplitDecision:
    """Outcome of the split stage for one fetched instruction."""

    __slots__ = ("itids", "split_count")

    def __init__(self, itids: list[int]) -> None:
        #: Resulting ITIDs, largest first; their union is the input ITID.
        self.itids = itids
        #: Number of extra instructions created (0 = stayed merged/single).
        self.split_count = len(itids) - 1


def split_itid(
    itid: int,
    srcs: tuple[int, ...],
    rst: RegisterSharingTable,
    allow_merge: bool = True,
) -> SplitDecision:
    """Partition *itid* into execute-identical groups.

    ``allow_merge=False`` models the MMT-F configuration, where instructions
    are always split into one instruction per thread at this stage (shared
    fetch only, no shared execution).
    """
    if popcount(itid) <= 1:
        return SplitDecision([itid])
    if not allow_merge:
        return SplitDecision([1 << t for t in threads_of(itid)])

    remaining = itid
    result: list[int] = []
    # At most 3 iterations pick a multi-thread EID (4 threads -> <=2 groups
    # of >=2, or one group plus singletons); the loop structure mirrors the
    # up-to-three split stages of the hardware.
    while popcount(remaining) >= 2:
        chosen = 0
        for eid in CANDIDATE_EIDS[remaining]:
            # The filter admits only subsets of the remaining ITID (the
            # iteration order already has the largest candidates first).
            if rst.eid_shared(eid, srcs):
                chosen = eid
                break
        if not chosen:
            break
        result.append(chosen)
        remaining &= ~chosen
    for t in threads_of(remaining):
        result.append(1 << t)
    result.sort(key=lambda m: (-popcount(m), m))
    return SplitDecision(result)
