"""Fetch History Buffer (paper §4.1, Figure 3(b)).

One per hardware thread: a small CAM holding the target PCs of the last N
taken branches the thread fetched while in DETECT or CATCHUP mode.  Other
threads CAM-search it every taken branch to detect a potential remerge
point.  The 32-entry default is the paper's chosen design point; Figure
7(a)/(c) sweep it from 8 to 128.
"""

from __future__ import annotations

from collections import deque


class FetchHistoryBuffer:
    """Circular CAM of recent taken-branch target PCs."""

    def __init__(self, size: int = 32) -> None:
        if size < 1:
            raise ValueError("FHB size must be positive")
        self.size = size
        self._fifo: deque[int] = deque()
        self._counts: dict[int, int] = {}
        self.records = 0
        self.searches = 0
        self.search_hits = 0

    def record(self, target_pc: int) -> None:
        """Insert a taken-branch target, evicting the oldest when full."""
        self.records += 1
        if len(self._fifo) >= self.size:
            old = self._fifo.popleft()
            count = self._counts[old] - 1
            if count:
                self._counts[old] = count
            else:
                del self._counts[old]
        self._fifo.append(target_pc)
        self._counts[target_pc] = self._counts.get(target_pc, 0) + 1

    def contains(self, target_pc: int) -> bool:
        """CAM search for *target_pc*."""
        self.searches += 1
        hit = target_pc in self._counts
        if hit:
            self.search_hits += 1
        return hit

    def clear(self) -> None:
        """Flush all entries (on remerge, the joint path starts fresh)."""
        self._fifo.clear()
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._fifo)
