"""Register Sharing Table (paper §4.2.1, §4.2.3).

One entry per architected register; each entry holds one bit per potential
sharing pair (6 bits for 4 threads).  Bit = 1 means the two threads' values
for that architected register are known identical — either because their
RATs map it to the same physical register, or because commit-time register
merging (§4.2.7) proved the values equal.

The table is conservative: a 0 never causes incorrect execution, only a
missed merging opportunity; a 1 must always be true, which the pipeline's
oracle self-check enforces.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.itid import MAX_THREADS, PAIRS, PAIRS_IN_MASK, pair_bit
from repro.isa.registers import NUM_ARCH_REGS, SP

_ALL_PAIRS_MASK = (1 << len(PAIRS)) - 1


class RegisterSharingTable:
    """Pairwise value-identity tracking for architected registers."""

    def __init__(self, num_regs: int = NUM_ARCH_REGS) -> None:
        self.num_regs = num_regs
        self._bits = [0] * num_regs
        # Provenance taint, parallel to the sharing bits: a set taint bit
        # means the pair's identity was established (directly or through
        # dataflow) by commit-time register merging.  Figure 5(b) reports
        # instructions that are execute-identical *only thanks to* register
        # merging; the taint is how we attribute them.
        self._taint = [0] * num_regs
        self.updates = 0

    # ------------------------------------------------------------- lifecycle
    def reset_all_shared(self, except_regs: Iterable[int] = ()) -> None:
        """Mark every register shared by every pair.

        Multi-execution workloads start with *all* architected registers
        identical; multi-threaded workloads start identical except the stack
        pointer (paper §4.2.6) — pass ``except_regs=(SP,)`` for those.
        """
        self._bits = [_ALL_PAIRS_MASK] * self.num_regs
        self._taint = [0] * self.num_regs
        for reg in except_regs:
            self._bits[reg] = 0

    @classmethod
    def for_multi_execution(cls) -> "RegisterSharingTable":
        table = cls()
        table.reset_all_shared()
        return table

    @classmethod
    def for_multi_threaded(cls) -> "RegisterSharingTable":
        table = cls()
        table.reset_all_shared(except_regs=(SP,))
        return table

    # --------------------------------------------------------------- queries
    def pair_shared(self, reg: int, t: int, u: int) -> bool:
        """Is *reg* known identical between threads *t* and *u*?"""
        return bool(self._bits[reg] >> pair_bit(t, u) & 1)

    def eid_shared(self, eid_mask: int, srcs: tuple[int, ...]) -> bool:
        """Are all of *srcs* identical across every pair inside *eid_mask*?

        This is the AND network of §4.2.2: per source register, the pair
        bits are read and ANDed for every pair combination in the candidate
        EID.
        """
        pair_bits = PAIRS_IN_MASK[eid_mask]
        for reg in srcs:
            bits = self._bits[reg]
            for bit in pair_bits:
                if not bits >> bit & 1:
                    return False
        return True

    # --------------------------------------------------------------- updates
    def set_pair(
        self, reg: int, t: int, u: int, shared: bool, via_merge: bool = False
    ) -> None:
        """Force the sharing bit for one pair.

        ``via_merge=True`` marks the identity as established by commit-time
        register merging (provenance for Figure 5(b)).
        """
        bit = 1 << pair_bit(t, u)
        if shared:
            self._bits[reg] |= bit
            if via_merge:
                self._taint[reg] |= bit
            else:
                self._taint[reg] &= ~bit
        else:
            self._bits[reg] &= ~bit
            self._taint[reg] &= ~bit
        self.updates += 1

    def update_dest(
        self,
        reg: int,
        itid: int,
        result_itids: Iterable[int],
        src_taint_mask: int = 0,
    ) -> None:
        """Update *reg*'s entry after an instruction with *itid* was split
        into *result_itids* (paper §4.2.3).

        For every pair with at least one thread in *itid*: the bit becomes 1
        iff some resulting ITID contains both threads, 0 otherwise.  Pairs
        untouched by the instruction keep their previous value.
        *src_taint_mask* carries regmerge provenance from the sources into
        the destination's pairs.
        """
        shared_mask = 0
        for res in result_itids:
            shared_mask |= self._pairs_mask_within(res)
        touched = self._pairs_mask_touching(itid)
        self._bits[reg] = (self._bits[reg] & ~touched) | (shared_mask & touched)
        self._taint[reg] = (self._taint[reg] & ~touched) | (
            shared_mask & touched & src_taint_mask
        )
        self.updates += 1

    def taint_mask(self, srcs: tuple[int, ...]) -> int:
        """OR of the regmerge-provenance taint bits across *srcs*."""
        mask = 0
        for reg in srcs:
            mask |= self._taint[reg]
        return mask

    def eid_uses_merge(self, eid_mask: int, srcs: tuple[int, ...]) -> bool:
        """Does keeping *eid_mask* merged rely on any regmerge-tainted pair?"""
        taint = self.taint_mask(srcs)
        if not taint:
            return False
        return any(taint >> bit & 1 for bit in PAIRS_IN_MASK[eid_mask])

    @staticmethod
    def _pairs_mask_within(mask: int) -> int:
        bits = 0
        for bit in PAIRS_IN_MASK[mask]:
            bits |= 1 << bit
        return bits

    @staticmethod
    def _pairs_mask_touching(itid: int) -> int:
        bits = 0
        for index, (t, u) in enumerate(PAIRS):
            if itid >> t & 1 or itid >> u & 1:
                bits |= 1 << index
        return bits

    def sharing_fraction(self, num_threads: int) -> float:
        """Fraction of pair bits set among the first *num_threads* threads,
        across all registers — the interval-metrics 'RST sharing rate'."""
        if num_threads < 2:
            return 0.0
        pair_mask = 0
        for index, (t, u) in enumerate(PAIRS):
            if t < num_threads and u < num_threads:
                pair_mask |= 1 << index
        total_pairs = bin(pair_mask).count("1") * self.num_regs
        set_bits = sum(bin(bits & pair_mask).count("1") for bits in self._bits)
        return set_bits / total_pairs

    # ----------------------------------------------------------------- debug
    def entry(self, reg: int) -> int:
        """Raw 6-bit entry for *reg* (tests and debugging)."""
        return self._bits[reg]

    def shared_set(self, reg: int, tid: int, active_mask: int) -> int:
        """Mask of active threads whose *reg* is identical to *tid*'s."""
        result = 1 << tid
        for u in range(MAX_THREADS):
            if u != tid and active_mask >> u & 1 and self.pair_shared(reg, tid, u):
                result |= 1 << u
        return result
