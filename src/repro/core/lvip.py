"""Load Values Identical Predictor (paper §4.2.5).

Multi-execution workloads share no memory, so a load whose *inputs* are
identical across instances may still return different values.  The LVIP
predicts whether such a load will return identical values in all instances:
it is a PC-indexed table of loads that have previously *mispredicted*
(returned differing values); any load not in the table is predicted
identical — the optimistic default the paper chose based on the load-value
similarity observed in multi-execution workloads [Biswas et al., ISCA'09].

The paper sizes it at 4K entries of 4 bytes (Table 3/4).
"""

from __future__ import annotations


class LoadValuesIdenticalPredictor:
    """Direct-mapped PC-tagged table of previously mispredicted loads."""

    def __init__(self, entries: int = 4096) -> None:
        if entries & (entries - 1):
            raise ValueError("LVIP entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags: list[int | None] = [None] * entries
        self.predictions = 0
        self.predicted_identical = 0
        self.mispredictions = 0
        # Per-PC check/mispredict counts: the surface the static oracle's
        # per-site LVIP contract is validated against.
        self.site_checks: dict[int, int] = {}
        self.site_mispredicts: dict[int, int] = {}

    def predict_identical(self, pc: int) -> bool:
        """Predict whether the load at *pc* returns identical values."""
        self.predictions += 1
        self.site_checks[pc] = self.site_checks.get(pc, 0) + 1
        identical = self._tags[pc & self._mask] != pc
        if identical:
            self.predicted_identical += 1
        return identical

    def record_mispredict(self, pc: int) -> None:
        """The load at *pc* returned differing values: remember it."""
        self.mispredictions += 1
        self.site_mispredicts[pc] = self.site_mispredicts.get(pc, 0) + 1
        self._tags[pc & self._mask] = pc

    def record_identical(self, pc: int) -> None:
        """The load at *pc* returned identical values.

        Entries are sticky: a load that ever differed stays predicted
        "different" (conservative — a wrong "different" costs only the merge
        opportunity, never a rollback).
        """
