"""Fetch synchronization: MERGE / DETECT / CATCHUP (paper §4.1, Figure 3).

Threads are organised into *groups*.  A group of two or more threads fetches
merged (MERGE mode): one fetch, one instruction-window entry, ITID = group
mask.  When a merged control instruction resolves differently for different
member threads, the group splits (DETECT mode).  While apart, every taken
branch a group fetches records its target PC in the group leader's Fetch
History Buffer and CAM-searches the other groups' FHBs; a hit means this
group has reached a point another group passed earlier — it is *behind* —
and the pair moves to CATCHUP: the behind group gets top fetch priority and
the ahead group is demoted.  Remerge completes when the two groups' fetch
PCs become equal; a CATCHUP branch target that misses the ahead FHB is the
false-positive exit back to DETECT.

The controller also gathers the statistics behind Figures 5(d)/7(c) (fetch
mode breakdown) and the §6.3 claim that 90% of remerges complete within 512
fetched branches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.fhb import FetchHistoryBuffer
from repro.core.itid import first_thread, popcount, threads_of
from repro.obs.events import EventKind
from repro.obs.observer import NULL_OBS


class FetchMode(enum.Enum):
    """Instruction-fetch mode of a thread group."""

    MERGE = "merge"
    DETECT = "detect"
    CATCHUP = "catchup"


class ThreadGroup:
    """A set of hardware threads fetching in lockstep at one PC."""

    __slots__ = (
        "gid",
        "mask",
        "branches_since_split",
        "created_cycle",
        "drain_pending",
    )

    def __init__(self, gid: int, mask: int, created_cycle: int = 0) -> None:
        self.gid = gid
        self.mask = mask
        self.branches_since_split = 0
        self.created_cycle = created_cycle
        #: Set on a fresh remerge: the group holds fetch until its members'
        #: in-flight instructions commit, so commit-time register merging
        #: (§4.2.7) sees valid mappings and quiescent writers and can repair
        #: the registers the divergence episode marked unshared.
        self.drain_pending = False

    @property
    def leader(self) -> int:
        """Lowest member thread id; owns the group's FHB."""
        return first_thread(self.mask)

    @property
    def size(self) -> int:
        return popcount(self.mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group {self.gid} mask={self.mask:04b}>"


@dataclass
class SyncStats:
    """Counters for the synchronization mechanism."""

    divergences: int = 0
    remerges: int = 0
    catchup_entries: int = 0
    catchup_false_positives: int = 0
    catchup_timeouts: int = 0
    fhb_hits: int = 0
    remerge_branch_distances: list[int] = field(default_factory=list)

    def remerge_within(self, branches: int) -> float:
        """Fraction of remerges found within *branches* fetched branches."""
        if not self.remerge_branch_distances:
            return 0.0
        good = sum(1 for d in self.remerge_branch_distances if d <= branches)
        return good / len(self.remerge_branch_distances)


class SyncController:
    """Manages thread groups, FHBs, and the fetch-mode state machine."""

    def __init__(
        self,
        num_threads: int,
        fhb_size: int = 32,
        enabled: bool = True,
        max_catchup_branches: int = 64,
    ) -> None:
        self.num_threads = num_threads
        self.enabled = enabled
        self.max_catchup_branches = max_catchup_branches
        # Rebound by SMTCore; FSM events use ``obs.now`` on the paths that
        # carry no cycle argument (taken-branch bookkeeping).
        self.obs = NULL_OBS
        self._next_gid = 0
        self.fhbs = [FetchHistoryBuffer(fhb_size) for _ in range(num_threads)]
        self.stats = SyncStats()
        # behind gid -> ahead gid, plus catchup branch budget per behind gid.
        self._catchup_target: dict[int, int] = {}
        self._catchup_branches: dict[int, int] = {}
        self.groups: list[ThreadGroup] = []
        self._group_of: list[ThreadGroup | None] = [None] * num_threads
        initial_mask = (1 << num_threads) - 1
        if enabled:
            self._add_group(initial_mask)
        else:
            for t in range(num_threads):
                self._add_group(1 << t)

    # ------------------------------------------------------------- topology
    def _add_group(self, mask: int, cycle: int = 0) -> ThreadGroup:
        group = ThreadGroup(self._next_gid, mask, cycle)
        self._next_gid += 1
        self.groups.append(group)
        for t in threads_of(mask):
            self._group_of[t] = group
        return group

    def _remove_group(self, group: ThreadGroup) -> None:
        self.groups.remove(group)
        self._drop_catchup(group)

    def _drop_catchup(self, group: ThreadGroup) -> None:
        self._catchup_target.pop(group.gid, None)
        self._catchup_branches.pop(group.gid, None)
        stale = [b for b, a in self._catchup_target.items() if a == group.gid]
        for behind in stale:
            del self._catchup_target[behind]
            self._catchup_branches.pop(behind, None)

    def group_of(self, tid: int) -> ThreadGroup:
        """Current group of thread *tid*."""
        group = self._group_of[tid]
        if group is None:
            raise ValueError(f"thread {tid} is not active")
        return group

    def active_groups(self) -> list[ThreadGroup]:
        """All live groups."""
        return list(self.groups)

    # ----------------------------------------------------------------- modes
    def mode_of(self, group: ThreadGroup) -> FetchMode:
        """Fetch mode of *group* for statistics and FHB gating."""
        if group.size >= 2 and len(self.groups) == 1:
            return FetchMode.MERGE
        if group.size >= 2:
            # Partially merged machine: the group fetches merged for its
            # members but still participates in detection w.r.t. others.
            if group.gid in self._catchup_target:
                return FetchMode.CATCHUP
            return FetchMode.MERGE
        if group.gid in self._catchup_target:
            return FetchMode.CATCHUP
        return FetchMode.DETECT

    def is_fully_merged(self) -> bool:
        """True when every active thread is in one group."""
        return len(self.groups) <= 1

    def catchup_ahead_gids(self) -> set[int]:
        """gids of groups currently acting as CATCHUP 'ahead' targets."""
        return set(self._catchup_target.values())

    def behinds_of(self, ahead_gid: int) -> list[int]:
        """gids of groups currently chasing *ahead_gid*."""
        return [b for b, a in self._catchup_target.items() if a == ahead_gid]

    # ------------------------------------------------------------ divergence
    def on_divergence(
        self, group: ThreadGroup, masks_by_pc: list[int], cycle: int = 0
    ) -> list[ThreadGroup]:
        """Split *group*: members disagreed on the next PC.

        *masks_by_pc* are the member masks per distinct next PC; their union
        must equal the group mask.
        """
        if len(masks_by_pc) < 2:
            raise ValueError("divergence requires at least two distinct PCs")
        total = 0
        for mask in masks_by_pc:
            total |= mask
        if total != group.mask:
            raise ValueError("divergence masks must partition the group")
        self.stats.divergences += 1
        self._remove_group(group)
        # A fresh episode begins: stale history from before the divergence
        # would otherwise trigger catchup pairings against the *shared*
        # pre-divergence path (wrong phase, wrong direction).
        for tid in threads_of(group.mask):
            self.fhbs[tid].clear()
        subgroups = [self._add_group(mask, cycle) for mask in masks_by_pc]
        if self.obs.tracing:
            self.obs.emit(
                EventKind.SPLIT,
                cycle,
                tid=group.leader,
                gid=group.gid,
                mask=group.mask,
                into=[sub.mask for sub in subgroups],
            )
        return subgroups

    # --------------------------------------------------------- taken branches
    def on_taken_branch(self, group: ThreadGroup, target_pc: int) -> None:
        """A group fetched a taken branch while the machine is not fully
        merged: record the target, search the other groups, update the FSM."""
        if not self.enabled or self.is_fully_merged():
            return
        group.branches_since_split += 1
        self.fhbs[group.leader].record(target_pc)

        ahead_gid = self._catchup_target.get(group.gid)
        if ahead_gid is not None:
            # CATCHUP: keep checking the ahead group's history; a miss is the
            # false-positive exit back to DETECT.
            ahead = self._group_by_gid(ahead_gid)
            if ahead is None or not self.fhbs[ahead.leader].contains(target_pc):
                del self._catchup_target[group.gid]
                self._catchup_branches.pop(group.gid, None)
                self.stats.catchup_false_positives += 1
                if self.obs.tracing:
                    self.obs.emit(
                        EventKind.MODE,
                        self.obs.now,
                        tid=group.leader,
                        pc=target_pc,
                        gid=group.gid,
                        transition="catchup_exit",
                        why="false_positive",
                    )
            else:
                budget = self._catchup_branches.get(group.gid, 0) - 1
                self._catchup_branches[group.gid] = budget
                if budget <= 0:
                    del self._catchup_target[group.gid]
                    del self._catchup_branches[group.gid]
                    self.stats.catchup_timeouts += 1
                    if self.obs.tracing:
                        self.obs.emit(
                            EventKind.MODE,
                            self.obs.now,
                            tid=group.leader,
                            pc=target_pc,
                            gid=group.gid,
                            transition="catchup_exit",
                            why="timeout",
                        )
            return

        # DETECT: search every other group's FHB for our target.
        for other in self.groups:
            if other is group:
                continue
            if self.fhbs[other.leader].contains(target_pc):
                self.stats.fhb_hits += 1
                # Our target is in their history: they passed this point
                # already, so we are behind them.
                if other.gid not in self._catchup_target:
                    self._catchup_target[group.gid] = other.gid
                    self._catchup_branches[group.gid] = self.max_catchup_branches
                    self.stats.catchup_entries += 1
                    if self.obs.tracing:
                        self.obs.emit(
                            EventKind.MODE,
                            self.obs.now,
                            tid=group.leader,
                            pc=target_pc,
                            gid=group.gid,
                            transition="catchup_enter",
                            ahead_gid=other.gid,
                        )
                break

    def _group_by_gid(self, gid: int) -> ThreadGroup | None:
        for group in self.groups:
            if group.gid == gid:
                return group
        return None

    # ---------------------------------------------------------------- merges
    def check_merges(self, fetch_pcs: dict[int, int], cycle: int = 0) -> list[
        tuple[ThreadGroup, ThreadGroup, ThreadGroup]
    ]:
        """Merge groups whose fetch PCs are equal this cycle.

        *fetch_pcs* maps gid -> next fetch PC for groups able to fetch.
        Returns ``(survivor, absorbed_a, absorbed_b)`` events (survivor is
        the freshly created union group).
        """
        if not self.enabled:
            return []
        events = []
        merged = True
        while merged:
            merged = False
            by_pc: dict[int, ThreadGroup] = {}
            for group in list(self.groups):
                pc = fetch_pcs.get(group.gid)
                if pc is None:
                    continue
                other = by_pc.get(pc)
                if other is None:
                    by_pc[pc] = group
                    continue
                survivor = self._merge_pair(other, group, cycle)
                fetch_pcs[survivor.gid] = pc
                events.append((survivor, other, group))
                merged = True
                break
        return events

    def _merge_pair(
        self, a: ThreadGroup, b: ThreadGroup, cycle: int
    ) -> ThreadGroup:
        distance = max(a.branches_since_split, b.branches_since_split)
        self.stats.remerges += 1
        self.stats.remerge_branch_distances.append(distance)
        self._remove_group(a)
        self._remove_group(b)
        survivor = self._add_group(a.mask | b.mask, cycle)
        survivor.drain_pending = True
        if self.obs.tracing:
            self.obs.emit(
                EventKind.MERGE,
                cycle,
                tid=survivor.leader,
                gid=survivor.gid,
                mask=survivor.mask,
                from_gids=[a.gid, b.gid],
                branch_distance=distance,
            )
        # The joint path starts fresh: stale targets in any member's FHB
        # would otherwise trigger spurious catchups after the next split.
        for tid in threads_of(survivor.mask):
            self.fhbs[tid].clear()
        return survivor

    def isolate(self, tid: int) -> ThreadGroup:
        """Pull *tid* out of its group into a fresh singleton (squash path).

        The LVIP rollback rewinds one thread's fetch; its group (if any)
        continues without it and the thread resynchronizes later through
        the normal PC-equality / FHB machinery.
        """
        group = self._group_of[tid]
        if group is None:
            # The thread had fetched HALT (left its group) but a squash is
            # rewinding it: it needs a group again to resume fetching.
            return self._add_group(1 << tid)
        if group.size == 1:
            return group
        remaining = group.mask & ~(1 << tid)
        self._remove_group(group)
        if remaining:
            self._add_group(remaining)
        return self._add_group(1 << tid)

    # ----------------------------------------------------------------- halts
    def on_halt(self, tid: int) -> None:
        """Remove a halted thread from its group."""
        group = self._group_of[tid]
        if group is None:
            return
        self._group_of[tid] = None
        remaining = group.mask & ~(1 << tid)
        self._remove_group(group)
        if remaining:
            self._add_group(remaining)

    # -------------------------------------------------------------- priority
    def fetch_order(self, icount: dict[int, int]) -> list[ThreadGroup]:
        """Groups in fetch-priority order.

        CATCHUP 'behind' groups come first (the paper raises their fetch
        priority), ordinary groups follow ICOUNT order (fewest in-flight
        instructions first), and CATCHUP 'ahead' groups come last.
        """
        ahead = self.catchup_ahead_gids()

        def key(group: ThreadGroup) -> tuple:
            if group.gid in self._catchup_target:
                rank = 0
            elif group.gid in ahead:
                rank = 2
            else:
                rank = 1
            return (rank, icount.get(group.gid, 0), group.gid)

        return sorted(self.groups, key=key)
