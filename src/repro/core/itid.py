"""Instruction Thread ID (ITID) bit-vector helpers.

The ITID is the 4-bit pattern attached to every instruction-window entry
identifying which hardware threads share the instruction (paper §4.1).  We
represent it as a plain int bitmask; thread *t* owns the instruction iff bit
``1 << t`` is set.

For a 4-thread MMT there are 6 unordered thread pairs; the Register Sharing
Table stores one bit per pair per architected register, so the canonical
pair ordering lives here too.
"""

from __future__ import annotations

from itertools import combinations

#: Maximum hardware threads, as in the paper.
MAX_THREADS = 4

#: Canonical ordering of the 6 sharing pairs for 4 threads.
PAIRS: tuple[tuple[int, int], ...] = tuple(combinations(range(MAX_THREADS), 2))

#: (t, u) -> index into the 6-bit RST entry; symmetric.
PAIR_INDEX: dict[tuple[int, int], int] = {}
for _i, (_t, _u) in enumerate(PAIRS):
    PAIR_INDEX[(_t, _u)] = _i
    PAIR_INDEX[(_u, _t)] = _i

#: Precomputed pair indices inside every thread-set mask (size >= 2).
PAIRS_IN_MASK: dict[int, tuple[int, ...]] = {}
for _mask in range(1 << MAX_THREADS):
    _members = [t for t in range(MAX_THREADS) if _mask >> t & 1]
    PAIRS_IN_MASK[_mask] = tuple(
        PAIR_INDEX[pair] for pair in combinations(_members, 2)
    )

_POPCOUNT = [bin(m).count("1") for m in range(1 << MAX_THREADS)]

#: Subsets of each mask with at least two members, largest first.  These are
#: the candidate EIDs the splitter's filter/chooser considers.
CANDIDATE_EIDS: dict[int, tuple[int, ...]] = {}
for _mask in range(1 << MAX_THREADS):
    subsets = []
    sub = _mask
    while sub:
        if _POPCOUNT[sub] >= 2:
            subsets.append(sub)
        sub = (sub - 1) & _mask
    subsets.sort(key=lambda s: (-_POPCOUNT[s], s))
    CANDIDATE_EIDS[_mask] = tuple(subsets)


def popcount(mask: int) -> int:
    """Number of threads in *mask*."""
    return _POPCOUNT[mask]


def threads_of(mask: int) -> list[int]:
    """Thread ids present in *mask*, ascending."""
    return [t for t in range(MAX_THREADS) if mask >> t & 1]


def single(tid: int) -> int:
    """ITID mask owning only thread *tid*."""
    return 1 << tid


def first_thread(mask: int) -> int:
    """Lowest thread id in *mask*."""
    if not mask:
        raise ValueError("empty ITID")
    return (mask & -mask).bit_length() - 1


def pair_bit(t: int, u: int) -> int:
    """RST bit index for the unordered pair (*t*, *u*)."""
    return PAIR_INDEX[(t, u)]


def itid_str(mask: int) -> str:
    """Render *mask* in the paper's bit-pattern style, thread 0 leftmost."""
    return "".join("1" if mask >> t & 1 else "0" for t in range(MAX_THREADS))
