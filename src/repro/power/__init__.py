"""Energy model (Wattch-style) and hardware budget (Table 3)."""

from repro.power.budget import (
    BudgetRow,
    hardware_budget,
    storage_overhead_fraction,
    total_storage_bits,
)
from repro.power.model import energy_of_run, energy_per_job
from repro.power.params import EnergyBreakdown, EnergyParams

__all__ = [
    "BudgetRow",
    "hardware_budget",
    "storage_overhead_fraction",
    "total_storage_bits",
    "energy_of_run",
    "energy_per_job",
    "EnergyBreakdown",
    "EnergyParams",
]
