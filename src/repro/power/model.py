"""Activity-based energy model (paper §6.2, Figure 6).

Consumes the statistics of a finished simulation plus the component
counters of the core's structures, and produces an
:class:`~repro.power.params.EnergyBreakdown` with the paper's three
components: cache energy, MMT-overhead energy, and everything else.
"""

from __future__ import annotations

from repro.power.params import EnergyBreakdown, EnergyParams


def energy_of_run(core, params: EnergyParams | None = None) -> EnergyBreakdown:
    """Energy consumed by a finished :class:`~repro.pipeline.smt.SMTCore` run."""
    params = params or EnergyParams()
    stats = core.stats
    mem = core.hierarchy.event_counts()
    detail: dict[str, float] = {}

    # --------------------------------------------------------------- caches
    detail["l1i"] = mem.l1i_accesses * params.l1i_access
    detail["l1d"] = mem.l1d_accesses * params.l1d_access
    detail["l2"] = mem.l2_accesses * params.l2_access
    detail["dram"] = mem.dram_accesses * params.dram_access
    cache = detail["l1i"] + detail["l1d"] + detail["l2"] + detail["dram"]

    # --------------------------------------------------------- MMT overhead
    fhb_records = sum(fhb.records for fhb in core.sync.fhbs)
    fhb_searches = sum(fhb.searches for fhb in core.sync.fhbs)
    detail["fhb"] = (
        fhb_records * params.fhb_record + fhb_searches * params.fhb_search
    )
    detail["rst"] = (
        core.rst.updates * params.rst_update
        + (stats.cycles * params.rst_cycle if core.mmt.shared_fetch else 0.0)
    )
    detail["lvip"] = core.lvip.predictions * params.lvip_access
    detail["split_stage"] = (
        stats.split_stage_outputs * params.split_stage_entry
        if core.mmt.shared_fetch
        else 0.0
    )
    detail["regmerge"] = core.regmerge.attempts * params.regmerge_check
    detail["mmt_static"] = (
        stats.cycles * params.mmt_static_per_cycle
        if core.mmt.shared_fetch
        else 0.0
    )
    overhead = (
        detail["fhb"]
        + detail["rst"]
        + detail["lvip"]
        + detail["split_stage"]
        + detail["regmerge"]
        + detail["mmt_static"]
    )

    # ----------------------------------------------------------- everything
    detail["frontend"] = (
        stats.fetched_entries * (params.fetch_entry + params.decode_entry)
        + core.bpred.lookups * params.bpred_lookup
        + core.btb.lookups * params.btb_lookup
    )
    detail["rename"] = stats.renamed_entries * params.rename_entry
    detail["window"] = (
        stats.renamed_entries * (params.rob_entry + params.iq_entry)
        + (stats.load_accesses + stats.store_accesses) * params.lsq_entry
        + stats.issued_entries * params.issue_entry
        + stats.committed_entries * params.commit_entry
    )
    detail["regfile"] = (
        stats.regfile_reads * params.regfile_read
        + stats.regfile_writes * params.regfile_write
    )
    fpu = stats.issued_fpu_entries
    alu = max(0, stats.issued_entries - fpu)
    detail["fu"] = alu * params.alu_op + fpu * params.fpu_op
    detail["static"] = stats.cycles * params.static_per_cycle
    other = (
        detail["frontend"]
        + detail["rename"]
        + detail["window"]
        + detail["regfile"]
        + detail["fu"]
        + detail["static"]
    )

    return EnergyBreakdown(
        cache=cache, mmt_overhead=overhead, other=other, detail=detail
    )


def energy_per_job(core, params: EnergyParams | None = None) -> float:
    """Total energy divided by committed thread-instructions.

    Figure 6 plots energy *per job completed*; committed thread-instructions
    are proportional to jobs for a fixed workload, and this normalisation is
    also meaningful when thread counts differ (multi-execution doubles the
    work when doubling threads; multi-threaded splits the same work).
    """
    breakdown = energy_of_run(core, params)
    work = max(1, core.stats.committed_thread_insts)
    return breakdown.total / work
