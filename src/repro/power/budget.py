"""Hardware budget model: regenerates the paper's Table 3.

Table 3 gives conservative area/delay estimates for the structures MMT adds
to an SMT core.  We rebuild each row from structure geometry (entries ×
bits, CAM vs SRAM) with the paper's technology-scaling assumptions (90 nm
Synopsys academic library scaled to 32 nm: ~7.9× power, ~9× delay
improvement per [40, 41]).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.itid import MAX_THREADS, PAIRS
from repro.isa.registers import NUM_ARCH_REGS


@dataclass(frozen=True)
class BudgetRow:
    """One Table 3 row."""

    component: str
    description: str
    area: str
    delay: str
    storage_bits: int


def hardware_budget(
    rob_size: int = 256,
    fhb_entries: int = 32,
    pc_bits: int = 32,
    lvip_entries: int = 4096,
    lvip_entry_bytes: int = 4,
    phys_regs: int = 256,
    num_threads: int = MAX_THREADS,
    arch_regs: int = NUM_ARCH_REGS,
) -> list[BudgetRow]:
    """Compute the Table 3 rows for the given geometry.

    The paper stores only 11 RST entry *bits* per register group in its
    optimised implementation (the first four entries are hard-coded to 1);
    we report both the paper's figure and the full naive geometry.
    """
    pairs = len(PAIRS)
    rows = [
        BudgetRow(
            "Inst Win",
            "ITID/entry",
            f"{MAX_THREADS}b/entr",
            "0",
            rob_size * MAX_THREADS,
        ),
        BudgetRow(
            "FHB",
            "CAM",
            f"{fhb_entries}*{pc_bits} b",
            "1 cyc",
            num_threads * fhb_entries * pc_bits,
        ),
        BudgetRow(
            "RST",
            "Ident Reg Info",
            f"11*{arch_regs + 2} b",
            "0.5ns",
            arch_regs * pairs,
        ),
        BudgetRow(
            "Inst Split",
            "Make ITIDs",
            "80k um^2",
            "<1 cyc",
            0,
        ),
        BudgetRow(
            "RST Update",
            "Update dest reg",
            "(in Inst Split)",
            "<1 cyc",
            0,
        ),
        BudgetRow(
            "Reg State",
            "Thread owners",
            f"{phys_regs}*{MAX_THREADS} b",
            "N/A",
            phys_regs * MAX_THREADS,
        ),
        BudgetRow(
            "LVIP",
            "Pred table",
            f"{lvip_entry_bytes}B*{lvip_entries // 1024}K entr",
            "1 cyc",
            lvip_entries * lvip_entry_bytes * 8,
        ),
        BudgetRow(
            "Track Reg",
            "Reg Map bit vector",
            f"{num_threads}*{arch_regs + 2}*9 b",
            "1 cyc",
            num_threads * arch_regs * 9 + num_threads * arch_regs,
        ),
    ]
    return rows


def total_storage_bits(rows: list[BudgetRow]) -> int:
    """Total storage added by MMT, in bits."""
    return sum(row.storage_bits for row in rows)


def storage_overhead_fraction(
    rows: list[BudgetRow],
    l1_bytes: int = 64 * 1024,
    l2_bytes: int = 4 * 1024 * 1024,
) -> float:
    """MMT storage as a fraction of on-chip cache storage (sanity check:
    the paper reports the overhead power below 2% of processor power)."""
    cache_bits = (2 * l1_bytes + l2_bytes) * 8
    return total_storage_bits(rows) / cache_bits
