"""Per-event and static energy parameters (32 nm, Wattch-style).

The paper models power with Wattch [46] plus conservative Synopsys
estimates for the MMT structures, scaled to 32 nm.  We use the same
accounting structure: each microarchitectural event costs a fixed energy;
idle structures leak; MMT structures are charged only when the paper says
they are exercised (FHB outside MERGE mode, LVIP on MERGE-mode loads, RST
every cycle).

Absolute joules are not meaningful here — every figure normalises energy to
the baseline SMT — so the parameters are expressed in arbitrary units whose
*ratios* follow CACTI/Wattch-style scaling: energy grows roughly with port
count and capacity, DRAM ≫ L2 ≫ L1 ≫ register file ≫ latch.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EnergyParams:
    """Energy cost per event (arbitrary units) and static power per cycle."""

    # Cache / memory events.
    l1i_access: float = 16.0
    l1d_access: float = 18.0
    l2_access: float = 90.0
    dram_access: float = 1800.0

    # Front end.
    fetch_entry: float = 4.0  # per instruction-window entry fetched
    decode_entry: float = 3.0
    bpred_lookup: float = 2.0
    btb_lookup: float = 2.0

    # Rename / window / backend, per entry.
    rename_entry: float = 4.0
    rob_entry: float = 5.0
    iq_entry: float = 5.0
    lsq_entry: float = 5.0
    issue_entry: float = 4.0
    commit_entry: float = 4.0
    regfile_read: float = 2.5
    regfile_write: float = 3.5

    # Functional units, per executed entry.
    alu_op: float = 8.0
    fpu_op: float = 20.0

    # MMT overhead structures (conservative Synopsys-derived: the paper
    # reports the total overhead below 2% of processor power).
    fhb_record: float = 1.2  # CAM write
    fhb_search: float = 1.6  # CAM search
    rst_update: float = 0.8
    rst_cycle: float = 0.4  # the RST is updated every cycle regardless
    lvip_access: float = 1.5
    split_stage_entry: float = 1.0
    regmerge_check: float = 2.5

    # Static (leakage + clock) power per cycle, whole core and the MMT
    # overhead share of it.
    static_per_cycle: float = 30.0
    mmt_static_per_cycle: float = 0.5

    def scaled(self, factor: float) -> "EnergyParams":
        """All dynamic events scaled by *factor* (technology what-ifs)."""
        values = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return EnergyParams(**values)


@dataclass
class EnergyBreakdown:
    """Energy split the way Figure 6 reports it."""

    cache: float = 0.0
    mmt_overhead: float = 0.0
    other: float = 0.0
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.cache + self.mmt_overhead + self.other

    def normalized_to(self, baseline: "EnergyBreakdown") -> dict[str, float]:
        """Components as fractions of *baseline*'s total (Figure 6 bars)."""
        denom = baseline.total or 1.0
        return {
            "cache": self.cache / denom,
            "mmt_overhead": self.mmt_overhead / denom,
            "other": self.other / denom,
            "total": self.total / denom,
        }
