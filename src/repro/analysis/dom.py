"""Dominator trees, postdominators, and natural loops.

Implements the Cooper–Harvey–Kennedy iterative dominance algorithm ("A
Simple, Fast Dominance Algorithm") over :class:`~repro.analysis.cfg.CFG`.
Postdominators run the same algorithm on the reversed graph augmented with
a virtual exit node that every block without successors flows into; blocks
that cannot reach any exit (infinite loops) have no postdominator.

Natural loops are derived from back edges ``n -> h`` where ``h`` dominates
``n``; irreducible cycles (none are emitted by our generators) are caught
separately by the linter's SCC-based infinite-loop rule.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.analysis.cfg import CFG

#: Node id of the virtual exit used by :func:`postdominators`.
VIRTUAL_EXIT = -1


def _reverse_postorder(
    num_nodes: int, entry: int, succs_of: Callable[[int], Sequence[int]]
) -> list[int]:
    """Reverse postorder over the nodes reachable from *entry*."""
    seen = {entry}
    order: list[int] = []
    stack: list[tuple[int, int]] = [(entry, 0)]
    while stack:
        node, child = stack[-1]
        succs = succs_of(node)
        if child < len(succs):
            stack[-1] = (node, child + 1)
            succ = succs[child]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, 0))
        else:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def _idoms(
    num_nodes: int,
    entry: int,
    succs_of: Callable[[int], Sequence[int]],
    preds_of: Callable[[int], Sequence[int]],
) -> dict[int, int]:
    """Immediate dominators for nodes reachable from *entry*.

    Returns a map ``node -> idom`` with ``idom[entry] == entry``;
    unreachable nodes are absent.
    """
    rpo = _reverse_postorder(num_nodes, entry, succs_of)
    position = {node: i for i, node in enumerate(rpo)}
    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            new_idom: int | None = None
            for pred in preds_of(node):
                if pred not in idom:
                    continue  # not yet processed / unreachable
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominators(cfg: CFG) -> list[int | None]:
    """``idom[b]`` per block id (entry maps to itself, unreachable to None)."""
    if not cfg.blocks:
        return []
    idom = _idoms(
        len(cfg.blocks),
        cfg.entry_block,
        lambda b: cfg.blocks[b].succs,
        lambda b: cfg.blocks[b].preds,
    )
    return [idom.get(bid) for bid in range(len(cfg.blocks))]


def dominates(idom: Sequence[int | None], a: int, b: int) -> bool:
    """Does block *a* dominate block *b* (given the idom array)?"""
    node: int | None = b
    while node is not None:
        if node == a:
            return True
        parent = idom[node]
        if parent == node:
            return False
        node = parent
    return False


def postdominators(cfg: CFG) -> list[int | None]:
    """``ipdom[b]`` per block id, over a virtual exit.

    ``ipdom[b]`` is the immediate postdominator block id, or
    :data:`VIRTUAL_EXIT` when the virtual exit itself is the immediate
    postdominator, or ``None`` when *b* cannot reach any exit.
    """
    num = len(cfg.blocks)
    if num == 0:
        return []
    exit_node = num  # virtual
    exit_preds = [b.bid for b in cfg.blocks if not b.succs]

    def succs_rev(node: int) -> Sequence[int]:
        if node == exit_node:
            return exit_preds
        return cfg.blocks[node].preds

    def preds_rev(node: int) -> Sequence[int]:
        if node == exit_node:
            return ()
        succs = cfg.blocks[node].succs
        if not succs:
            return [exit_node]
        return succs

    idom = _idoms(num + 1, exit_node, succs_rev, preds_rev)
    result: list[int | None] = []
    for bid in range(num):
        ip = idom.get(bid)
        if ip is None:
            result.append(None)
        elif ip == exit_node:
            result.append(VIRTUAL_EXIT)
        else:
            result.append(ip)
    return result


def natural_loops(cfg: CFG) -> list[tuple[int, frozenset[int]]]:
    """Natural loops as ``(header, body)`` pairs, body including the header.

    One entry per back edge; loops sharing a header are merged.
    """
    idom = dominators(cfg)
    bodies: dict[int, set[int]] = {}
    for block in cfg.blocks:
        if idom[block.bid] is None:
            continue  # unreachable tail
        for succ in block.succs:
            if not dominates(idom, succ, block.bid):
                continue
            body = bodies.setdefault(succ, {succ})
            stack = [block.bid]
            while stack:
                node = stack.pop()
                if node in body:
                    continue
                body.add(node)
                stack.extend(cfg.blocks[node].preds)
    return [(header, frozenset(body)) for header, body in sorted(bodies.items())]


def loop_depths(cfg: CFG) -> list[int]:
    """Loop-nesting depth per block (0 = not in any natural loop)."""
    depths = [0] * len(cfg.blocks)
    for _header, body in natural_loops(cfg):
        for bid in body:
            depths[bid] += 1
    return depths
