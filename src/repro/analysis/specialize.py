"""Static specialization oracle: per-PC rare-path reachability + superblocks.

The fast engine (:mod:`repro.pipeline.fast`) runs every instruction through
generic per-record guard checks — *is this a HALT? a hint? a control
transfer?* — and delegates six rare paths to the reference implementation
(control transfer, sync split, LVIP verify, store commit, hints, traps).
For most PCs of most programs those guards can never fire: an ``ADD`` is
never a control transfer, a ``NOP`` can never trap.  This module proves
that *statically*, ahead of the run:

* **Per-PC rare-path verdicts.**  For every PC the pass decides which of
  the six delegated paths is *statically impossible* there.  Five verdicts
  are syntactic (an instruction's opcode decides whether the control /
  hint / sync-split / LVIP-verify / store-commit paths can ever be taken
  at that PC).  The **trap** verdict is two-tier: a syntactic tier keyed
  on the fast executor's dispatch table (closures with no raising path:
  ``NOP``/``HINT``/``HALT``/``TID``/``NCTX``, resolved jumps and
  branches, compile-time-converted ``LI``/``FLI``), and an optional
  value-lattice tier (``use_values=True``) that additionally discharges
  ``DIV``/``REM`` sites whose divisor interval provably excludes zero and
  whose operands carry finite bounds — interval reasoning is
  enforced-tier sound in :mod:`repro.analysis.values` (floats carry
  unbounded intervals, so a bounded interval implies a finite integer).

  Verdicts are **monotone in lattice precision**: the weakened lattice
  (``use_values=False``) produces an ``impossible`` set that is a subset
  of the refined one at every PC, so no PC the weak tier proves
  impossible ever flips to possible under refinement, and weakening can
  only conservatively downgrade ``impossible`` to ``possible`` — never
  manufacture new impossibility claims.

* **Plain-run lengths.**  A PC is *plain* when the fast fetch loop's
  per-record guards are statically dead there (not a control transfer,
  not a ``HINT``, not a ``HALT``).  Plain instructions always fall
  through (``npc = pc + 1``), so ``plain_run[pc]`` consecutive buffered
  functional records starting at ``pc`` are guaranteed guard-free and can
  be replayed as one batch.

* **Hot superblocks.**  Reachable basic blocks are chained into
  single-entry straight-line regions (a block joins its predecessor's
  chain only when the link is single-successor/single-predecessor and the
  block is not a natural-loop header), annotated with loop depth, opcode
  mix, and guard-free instruction runs.  Superblocks partition the
  reachable blocks and each is enterable only at its head.

The result is a content-addressed :class:`SpecializationManifest`
(canonical JSON; digest keyed like :meth:`repro.isa.program.Program.digest`)
that :class:`~repro.pipeline.fast.FastSMTCore` consumes to precompute
per-PC dispatch entries — the reference-delegation boundary stays the
correctness contract, and a paranoid mode (``REPRO_SPECIALIZE_PARANOID``)
raises :class:`SpecializationViolation` if a statically-impossible path
ever fires at runtime.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass

from repro.analysis.cfg import CFG
from repro.analysis.dom import loop_depths, natural_loops
from repro.analysis.values import (
    ValueAnalysis,
    ValueAnalysisDivergence,
    analyze_values_cfg,
    interval_of,
)
from repro.func.fastexec import decode_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

__all__ = [
    "RARE_PATHS",
    "PATH_BITS",
    "SPECIALIZE_SCHEMA_VERSION",
    "PCVerdict",
    "Superblock",
    "SpecializationManifest",
    "SpecializationViolation",
    "analyze_specialization",
]

#: Manifest document / digest schema version.
SPECIALIZE_SCHEMA_VERSION = 1

#: The fast engine's reference-delegated rare paths, in canonical order.
RARE_PATHS: tuple[str, ...] = (
    "control",
    "hint",
    "sync",
    "lvip_verify",
    "store_commit",
    "trap",
)

#: Bit assigned to each rare path in the per-PC impossibility masks.
PATH_BITS: dict[str, int] = {p: 1 << i for i, p in enumerate(RARE_PATHS)}


class SpecializationViolation(AssertionError):
    """A statically-impossible rare path fired at runtime (paranoid mode)."""


#: Opcodes whose *opcode* (not mask shape) triggers the rename-stage sync
#: split in the fast engine.
_SYNC_OPS = frozenset({Opcode.SEND, Opcode.TRECV, Opcode.TID})

#: Opcodes whose compiled fast-executor closure has no raising path.
#: Branches and jumps count only when they actually compiled (a ``None``
#: dispatch entry falls back to the reference step, which may raise).
#: Numeric comparisons between register scalars cannot raise, and
#: ``LI``/``FLI`` convert their immediate at compile time.
_TRAP_FREE_OPS = frozenset(
    {
        Opcode.NOP,
        Opcode.HINT,
        Opcode.HALT,
        Opcode.TID,
        Opcode.NCTX,
        Opcode.J,
        Opcode.JAL,
        Opcode.JR,
        Opcode.BEQ,
        Opcode.BNE,
        Opcode.BLT,
        Opcode.BGE,
        Opcode.LI,
        Opcode.FLI,
    }
)

_DIV_OPS = frozenset({Opcode.DIV, Opcode.REM})


@dataclass(frozen=True)
class PCVerdict:
    """Rare-path verdicts for one PC.

    ``impossible`` names the delegated paths that can *never* fire at
    this PC; ``plain_run`` is the number of consecutive guard-free
    instructions starting here (0 when this PC itself needs a fetch-loop
    guard).  Unreachable PCs have every path impossible — they never
    execute.
    """

    pc: int
    op: str
    reachable: bool
    impossible: frozenset[str]
    plain_run: int

    @property
    def mask(self) -> int:
        """Bitmask of the impossible paths (see :data:`PATH_BITS`)."""
        return sum(PATH_BITS[p] for p in self.impossible)


@dataclass(frozen=True)
class Superblock:
    """A single-entry straight-line chain of reachable basic blocks."""

    sid: int
    entry_pc: int
    blocks: tuple[int, ...]
    #: Half-open ``[start, end)`` PC range of each chained block, in
    #: chain order (ranges need not be contiguous across jump links).
    ranges: tuple[tuple[int, int], ...]
    loop_header: bool
    loop_depth: int
    #: ``(opcode name, count)`` pairs, sorted by name.
    opcode_mix: tuple[tuple[str, int], ...]
    #: Maximal ``(start_pc, length)`` runs of plain (guard-free) PCs.
    guard_free_runs: tuple[tuple[int, int], ...]

    @property
    def length(self) -> int:
        """Total instruction count across the chained blocks."""
        return sum(end - start for start, end in self.ranges)


@dataclass(frozen=True)
class SpecializationManifest:
    """Content-addressed result of :func:`analyze_specialization`."""

    program_digest: str
    program_name: str
    num_pcs: int
    nctx: int
    use_values: bool
    verdicts: tuple[PCVerdict, ...]
    superblocks: tuple[Superblock, ...]

    # ------------------------------------------------------ engine facing
    def plain_runs(self) -> list[int]:
        """Per-PC guard-free run lengths (0 where a guard is needed)."""
        return [v.plain_run for v in self.verdicts]

    def impossible_masks(self) -> list[int]:
        """Per-PC bitmask of statically-impossible rare paths."""
        return [v.mask for v in self.verdicts]

    def impossible_at(self, pc: int) -> frozenset[str]:
        """Rare paths that can never fire at *pc*."""
        return self.verdicts[pc].impossible

    # -------------------------------------------------------- documents
    def summary(self) -> dict[str, object]:
        """Aggregate counts for tables and JSON output."""
        reachable = [v for v in self.verdicts if v.reachable]
        per_path = {
            p: sum(1 for v in reachable if p in v.impossible)
            for p in RARE_PATHS
        }
        longest_run = max(
            (run for sb in self.superblocks for _, run in sb.guard_free_runs),
            default=0,
        )
        return {
            "num_pcs": self.num_pcs,
            "reachable_pcs": len(reachable),
            "plain_pcs": sum(1 for v in reachable if v.plain_run > 0),
            "impossible_counts": per_path,
            "num_superblocks": len(self.superblocks),
            "max_superblock_length": max(
                (sb.length for sb in self.superblocks), default=0
            ),
            "longest_guard_free_run": longest_run,
        }

    def _core_document(self) -> dict[str, object]:
        """The digest-covered content (excludes the program *name*)."""
        return {
            "schema": SPECIALIZE_SCHEMA_VERSION,
            "program_digest": self.program_digest,
            "num_pcs": self.num_pcs,
            "nctx": self.nctx,
            "use_values": self.use_values,
            "rare_paths": list(RARE_PATHS),
            "verdicts": [
                {
                    "pc": v.pc,
                    "op": v.op,
                    "reachable": v.reachable,
                    "impossible": sorted(v.impossible),
                    "plain_run": v.plain_run,
                }
                for v in self.verdicts
            ],
            "superblocks": [
                {
                    "id": sb.sid,
                    "entry_pc": sb.entry_pc,
                    "blocks": list(sb.blocks),
                    "ranges": [list(r) for r in sb.ranges],
                    "length": sb.length,
                    "loop_header": sb.loop_header,
                    "loop_depth": sb.loop_depth,
                    "opcode_mix": {name: n for name, n in sb.opcode_mix},
                    "guard_free_runs": [
                        list(r) for r in sb.guard_free_runs
                    ],
                }
                for sb in self.superblocks
            ],
        }

    def digest(self) -> str:
        """Content hash of the manifest (canonical JSON, name-independent).

        Keyed like :meth:`Program.digest`: two manifests with the same
        digest make identical claims about behaviourally-identical
        programs, so the digest can join memo/cache keys.
        """
        blob = json.dumps(
            self._core_document(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_document(self) -> dict[str, object]:
        """Full canonical-JSON document (content plus name and summary)."""
        document = self._core_document()
        document["kind"] = "specialization-manifest"
        document["program_name"] = self.program_name
        document["summary"] = self.summary()
        document["digest"] = self.digest()
        return document


def _is_plain(inst: Instruction) -> bool:
    """True when the fast fetch loop's per-record guards cannot fire."""
    op = inst.op
    return not inst.is_control and op is not Opcode.HINT and op is not Opcode.HALT


def _refined_trap_impossible(
    va: ValueAnalysis, pc: int, inst: Instruction
) -> bool:
    """Interval proof that a ``DIV``/``REM`` at *pc* can never trap.

    Requires the divisor interval to exclude zero and both operands to
    carry finite bounds: floats carry unbounded intervals in the value
    lattice, so bounded operands are finite integers, and integer
    division by a provably-nonzero integer has no raising path.
    """
    rs1, rs2 = inst.rs1, inst.rs2
    if rs1 is None or rs2 is None:
        return False
    if va.cfg.block_of[pc] not in va.reachable:
        return False
    regs = va.state_at(pc)
    lo1, hi1 = interval_of(regs[rs1])
    if lo1 is None or hi1 is None:
        return False
    lo2, hi2 = interval_of(regs[rs2])
    return (lo2 is not None and lo2 > 0) or (hi2 is not None and hi2 < 0)


def _chain_blocks(
    cfg: CFG, reachable: set[int], headers: frozenset[int]
) -> list[list[int]]:
    """Partition the reachable blocks into single-entry chains.

    A block extends its predecessor's chain only when the link is the
    predecessor's sole (deduplicated) reachable successor, the block's
    sole reachable predecessor, and the block is not a natural-loop
    header — so every chain is enterable only at its first block, and
    every reachable block lands in exactly one chain.
    """
    assigned: set[int] = set()
    chains: list[list[int]] = []
    for bid in sorted(reachable):
        if bid in assigned:
            continue
        chain = [bid]
        assigned.add(bid)
        cur = bid
        while True:
            succs = {s for s in cfg.blocks[cur].succs if s in reachable}
            if len(succs) != 1:
                break
            (nxt,) = succs
            if nxt in assigned or nxt in headers:
                break
            preds = {p for p in cfg.blocks[nxt].preds if p in reachable}
            if preds != {cur}:
                break
            chain.append(nxt)
            assigned.add(nxt)
            cur = nxt
        chains.append(chain)
    return chains


def _superblocks(
    cfg: CFG,
    reachable: set[int],
    instructions: list[Instruction],
    plain: list[bool],
) -> tuple[Superblock, ...]:
    headers = frozenset(h for h, _ in natural_loops(cfg))
    depths = loop_depths(cfg)
    out: list[Superblock] = []
    for sid, chain in enumerate(_chain_blocks(cfg, reachable, headers)):
        ranges = tuple(
            (cfg.blocks[b].start, cfg.blocks[b].end) for b in chain
        )
        mix = Counter(
            instructions[pc].op.name
            for start, end in ranges
            for pc in range(start, end)
        )
        runs: list[tuple[int, int]] = []
        for start, end in ranges:
            pc = start
            while pc < end:
                if plain[pc]:
                    run_start = pc
                    while pc < end and plain[pc]:
                        pc += 1
                    runs.append((run_start, pc - run_start))
                else:
                    pc += 1
        entry = chain[0]
        out.append(
            Superblock(
                sid=sid,
                entry_pc=cfg.blocks[entry].start,
                blocks=tuple(chain),
                ranges=ranges,
                loop_header=entry in headers,
                loop_depth=depths[entry],
                opcode_mix=tuple(sorted(mix.items())),
                guard_free_runs=tuple(runs),
            )
        )
    return tuple(out)


def analyze_specialization(
    program: Program,
    nctx: int,
    *,
    use_values: bool = True,
) -> SpecializationManifest:
    """Run the specialization pass over *program* for *nctx* contexts.

    ``use_values=False`` restricts the trap verdict to its syntactic tier
    (no value-lattice facts); every other verdict is lattice-independent.
    The refined tier's ``impossible`` sets are supersets of the weak
    tier's at every PC.  A diverging value fixpoint quietly degrades to
    the syntactic tier — the manifest stays sound, just less precise.
    """
    instructions = program.instructions
    n = len(instructions)
    if n == 0:
        return SpecializationManifest(
            program_digest=program.digest(),
            program_name=program.name,
            num_pcs=0,
            nctx=nctx,
            use_values=use_values,
            verdicts=(),
            superblocks=(),
        )

    cfg = CFG.from_program(program)
    reachable = cfg.reachable()
    ops = decode_program(program)  # type: ignore[no-untyped-call]
    compiled = [fn is not None for fn in ops]
    plain = [_is_plain(inst) for inst in instructions]

    va: ValueAnalysis | None = None
    if use_values and any(inst.op in _DIV_OPS for inst in instructions):
        try:
            va = analyze_values_cfg(cfg, nctx)
        except ValueAnalysisDivergence:
            va = None

    plain_run = [0] * (n + 1)
    for pc in range(n - 1, -1, -1):
        if plain[pc]:
            plain_run[pc] = plain_run[pc + 1] + 1

    verdicts: list[PCVerdict] = []
    for pc, inst in enumerate(instructions):
        pc_reachable = cfg.block_of[pc] in reachable
        impossible: set[str] = set()
        if not pc_reachable:
            impossible.update(RARE_PATHS)
        else:
            op = inst.op
            if not inst.is_control:
                impossible.add("control")
            if op is not Opcode.HINT:
                impossible.add("hint")
            if op not in _SYNC_OPS:
                impossible.add("sync")
            if not inst.is_load:
                impossible.add("lvip_verify")
            if not inst.is_store:
                impossible.add("store_commit")
            if compiled[pc] and op in _TRAP_FREE_OPS:
                impossible.add("trap")
            elif (
                va is not None
                and op in _DIV_OPS
                and _refined_trap_impossible(va, pc, inst)
            ):
                impossible.add("trap")
        verdicts.append(
            PCVerdict(
                pc=pc,
                op=inst.op.name,
                reachable=pc_reachable,
                impossible=frozenset(impossible),
                plain_run=plain_run[pc],
            )
        )

    return SpecializationManifest(
        program_digest=program.digest(),
        program_name=program.name,
        num_pcs=n,
        nctx=nctx,
        use_values=use_values,
        verdicts=tuple(verdicts),
        superblocks=_superblocks(cfg, reachable, instructions, plain),
    )
