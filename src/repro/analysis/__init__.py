"""Static analysis over guest programs: CFG, dataflow, linter, oracle.

Public surface:

* :class:`~repro.analysis.cfg.CFG` / :class:`~repro.analysis.cfg.BasicBlock`
* :func:`~repro.analysis.dom.dominators`,
  :func:`~repro.analysis.dom.postdominators`,
  :func:`~repro.analysis.dom.natural_loops`
* :func:`~repro.analysis.dataflow.solve`,
  :func:`~repro.analysis.dataflow.reaching_definitions`,
  :func:`~repro.analysis.dataflow.liveness`
* :func:`~repro.analysis.lint.lint_program` and the
  :class:`~repro.analysis.lint.Diagnostic` records it emits
* :func:`~repro.analysis.redundancy.analyze_program` /
  :func:`~repro.analysis.redundancy.analyze_build` and the
  :class:`~repro.analysis.redundancy.OracleReport` they return
* :func:`~repro.analysis.values.analyze_values_cfg`, the value-level
  fixpoint (intervals, value numbers, loop-uniformity widening) the
  oracle is built on, with its :class:`~repro.analysis.values.MemoryModel`
  and :class:`~repro.analysis.values.ValueAnalysis` results
* :func:`~repro.analysis.specialize.analyze_specialization` and the
  content-addressed
  :class:`~repro.analysis.specialize.SpecializationManifest` the fast
  engine consumes (per-PC rare-path verdicts, superblocks, paranoid-mode
  :class:`~repro.analysis.specialize.SpecializationViolation`)
"""

from repro.analysis.cfg import CFG, BasicBlock
from repro.analysis.dataflow import (
    ENTRY_DEF,
    DataflowDivergence,
    Liveness,
    MustDefined,
    ReachingDefs,
    liveness,
    must_defined,
    reaching_definitions,
    solve,
)
from repro.analysis.dom import (
    VIRTUAL_EXIT,
    dominates,
    dominators,
    loop_depths,
    natural_loops,
    postdominators,
)
from repro.analysis.lint import (
    RULES,
    Diagnostic,
    lint_instructions,
    lint_program,
    rule_catalogue,
)
from repro.analysis.redundancy import (
    OracleReport,
    analyze_build,
    analyze_cfg,
    analyze_limit_build,
    analyze_mp_build,
    analyze_program,
)
from repro.analysis.specialize import (
    PATH_BITS,
    RARE_PATHS,
    PCVerdict,
    SpecializationManifest,
    SpecializationViolation,
    Superblock,
    analyze_specialization,
)
from repro.analysis.values import (
    LoadClass,
    MemoryModel,
    Region,
    ValueAnalysis,
    ValueAnalysisDivergence,
    analyze_values_cfg,
    regions_from_symbols,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "ENTRY_DEF",
    "DataflowDivergence",
    "Liveness",
    "MustDefined",
    "ReachingDefs",
    "liveness",
    "must_defined",
    "reaching_definitions",
    "solve",
    "VIRTUAL_EXIT",
    "dominates",
    "dominators",
    "loop_depths",
    "natural_loops",
    "postdominators",
    "RULES",
    "Diagnostic",
    "lint_instructions",
    "lint_program",
    "rule_catalogue",
    "OracleReport",
    "analyze_build",
    "analyze_cfg",
    "analyze_limit_build",
    "analyze_mp_build",
    "analyze_program",
    "PATH_BITS",
    "RARE_PATHS",
    "PCVerdict",
    "SpecializationManifest",
    "SpecializationViolation",
    "Superblock",
    "analyze_specialization",
    "LoadClass",
    "MemoryModel",
    "Region",
    "ValueAnalysis",
    "ValueAnalysisDivergence",
    "analyze_values_cfg",
    "regions_from_symbols",
]
