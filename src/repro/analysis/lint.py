"""Guest-program linter: CFG/dataflow rules over assembled programs.

Every rule emits structured :class:`Diagnostic` records (rule id,
severity, PC, block id, message); rules are individually suppressible by
id.  The rules are pre-simulation correctness gates: a program that lints
clean cannot branch outside its image, run off the end, spin forever
without an exit, read registers no path ever wrote, or feed fp registers
to integer datapaths — the workload-generator bug classes that otherwise
surface as baffling mid-simulation divergences.

Rule catalogue (see docs/static-analysis.md):

========================  ========  =====================================
rule id                   severity  fires on
========================  ========  =====================================
``bad-target``            error     control target missing / outside image
``fall-off-end``          error     fall-through past the last instruction
``infinite-loop``         error     cycle with no exit edge and no HALT
``reg-class``             error     operand violates the opcode signature
``store-undef-base``      error     store base register never written
``undef-read``            warning   read with no reaching definition
``undef-read-must``       warning   read *some* path reaches undefined
``unreachable-block``     warning   block unreachable from the entry
========================  ========  =====================================

``undef-read`` is a may-analysis (it fires only when *no* path defines
the register); ``undef-read-must`` is its must-analysis sharpening: it
fires when at least one path reaches the read without a definition,
catching conditionally-undefined reads — an if-branch that skips the
initialisation — that the may-rule is structurally blind to.  The two
rules partition the undefined-read space, so a single read never
triggers both.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import must_defined, reaching_definitions
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import SP, ZERO, is_fp_reg, is_int_reg, reg_name

ERROR = "error"
WARNING = "warning"

#: rule id -> (severity, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "bad-target": (ERROR, "control-flow target missing or outside the image"),
    "fall-off-end": (ERROR, "execution can fall through past the image end"),
    "infinite-loop": (ERROR, "cycle with no exit edge and no HALT inside"),
    "reg-class": (ERROR, "operand violates the opcode's register-class signature"),
    "store-undef-base": (ERROR, "store address base register is never written"),
    "undef-read": (WARNING, "register read with no reaching definition"),
    "undef-read-must": (
        WARNING, "register read that some path reaches with no definition"
    ),
    "unreachable-block": (WARNING, "basic block unreachable from the entry"),
}

#: Registers defined by hardware before the first instruction executes.
ENTRY_DEFINED = (ZERO, SP)


class Diagnostic:
    """One linter finding."""

    __slots__ = ("rule", "severity", "pc", "block", "message")

    def __init__(
        self, rule: str, severity: str, pc: int, block: int, message: str
    ) -> None:
        self.rule = rule
        self.severity = severity
        self.pc = pc
        self.block = block
        self.message = message

    def __str__(self) -> str:
        return f"pc {self.pc} [B{self.block}] {self.severity} {self.rule}: {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Diagnostic {self}>"


# ------------------------------------------------------ opcode signatures
_I = "i"
_F = "f"
# op -> (rd class, rs1 class, rs2 class); None = operand must be absent.
_III = (_I, _I, _I)
_II_ = (_I, _I, None)
_I__ = (_I, None, None)
_FFF = (_F, _F, _F)
_FF_ = (_F, _F, None)
_SIG: dict[Opcode, tuple[str | None, str | None, str | None]] = {
    Opcode.ADD: _III, Opcode.SUB: _III, Opcode.MUL: _III, Opcode.DIV: _III,
    Opcode.REM: _III, Opcode.AND: _III, Opcode.OR: _III, Opcode.XOR: _III,
    Opcode.SLL: _III, Opcode.SRL: _III, Opcode.SRA: _III, Opcode.SLT: _III,
    Opcode.SEQ: _III,
    Opcode.ADDI: _II_, Opcode.ANDI: _II_, Opcode.ORI: _II_, Opcode.XORI: _II_,
    Opcode.SLLI: _II_, Opcode.SRLI: _II_, Opcode.SLTI: _II_,
    Opcode.LI: _I__, Opcode.FLI: (_F, None, None),
    Opcode.FADD: _FFF, Opcode.FSUB: _FFF, Opcode.FMUL: _FFF, Opcode.FDIV: _FFF,
    Opcode.FMIN: _FFF, Opcode.FMAX: _FFF,
    Opcode.FSQRT: _FF_, Opcode.FNEG: _FF_, Opcode.FABS: _FF_,
    Opcode.FCVT: (_F, _I, None), Opcode.FTOI: (_I, _F, None),
    Opcode.FSLT: (_I, _F, _F), Opcode.FSEQ: (_I, _F, _F),
    Opcode.LW: _II_, Opcode.FLW: (_F, _I, None),
    Opcode.SW: (None, _I, _I), Opcode.FSW: (None, _I, _F),
    Opcode.BEQ: (None, _I, _I), Opcode.BNE: (None, _I, _I),
    Opcode.BLT: (None, _I, _I), Opcode.BGE: (None, _I, _I),
    Opcode.J: (None, None, None), Opcode.JAL: (_I, None, None),
    Opcode.JR: (None, _I, None),
    Opcode.SEND: (None, _I, _I), Opcode.TRECV: _II_,
    Opcode.TID: _I__, Opcode.NCTX: _I__,
    Opcode.NOP: (None, None, None), Opcode.HALT: (None, None, None),
    Opcode.HINT: (None, None, None),
}

#: Opcodes whose ``imm`` field is required.
_NEEDS_IMM = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI,
    Opcode.SRLI, Opcode.SLTI, Opcode.LI, Opcode.FLI,
    Opcode.LW, Opcode.SW, Opcode.FLW, Opcode.FSW,
})


def _class_ok(reg: int, want: str) -> bool:
    return is_int_reg(reg) if want == _I else is_fp_reg(reg)


def rule_catalogue() -> dict[str, tuple[str, str]]:
    """Copy of the rule id -> (severity, description) table."""
    return dict(RULES)


def lint_program(
    program: Program, suppress: Collection[str] = ()
) -> list[Diagnostic]:
    """Lint a linked program; returns diagnostics in PC order."""
    return lint_instructions(
        program.instructions,
        entry=program.entry,
        name=program.name,
        suppress=suppress,
    )


def lint_instructions(
    instructions: Sequence[Instruction],
    entry: int = 0,
    name: str = "program",
    suppress: Collection[str] = (),
) -> list[Diagnostic]:
    """Lint a raw instruction sequence (pre-:class:`Program` images too)."""
    unknown = set(suppress) - set(RULES)
    if unknown:
        raise ValueError(f"unknown lint rule(s): {sorted(unknown)}")
    cfg = CFG(instructions, entry=entry, name=name)
    findings: list[Diagnostic] = []

    def emit(rule: str, pc: int, message: str) -> None:
        if rule in suppress:
            return
        severity = RULES[rule][0]
        block = cfg.block_of[pc] if cfg.block_of else 0
        findings.append(Diagnostic(rule, severity, pc, block, message))

    if not cfg.instructions:
        return findings
    reachable = cfg.reachable()

    _check_targets(cfg, emit)
    _check_unreachable(cfg, reachable, emit)
    _check_fall_off_end(cfg, reachable, emit)
    _check_infinite_loops(cfg, reachable, emit)
    _check_reg_classes(cfg, emit)
    _check_reaching(cfg, reachable, emit)

    findings.sort(key=lambda d: (d.pc, d.rule))
    return findings


# ----------------------------------------------------------------- checks
def _check_targets(cfg: CFG, emit) -> None:
    n = len(cfg.instructions)
    for pc, inst in enumerate(cfg.instructions):
        if inst.op is Opcode.JR:
            continue  # indirect; modelled through return sites
        if inst.is_control:
            if inst.target is None:
                emit("bad-target", pc, f"{inst.op.value} has no target")
            elif not 0 <= inst.target < n:
                emit(
                    "bad-target", pc,
                    f"{inst.op.value} targets {inst.target}, outside the "
                    f"{n}-instruction image",
                )


def _check_unreachable(cfg: CFG, reachable: set[int], emit) -> None:
    for block in cfg.blocks:
        if block.bid not in reachable:
            emit(
                "unreachable-block", block.start,
                f"block [{block.start}..{block.end}) is unreachable "
                "from the entry",
            )


def _check_fall_off_end(cfg: CFG, reachable: set[int], emit) -> None:
    for pc in sorted(cfg.falls_off_end):
        if cfg.block_of[pc] in reachable:
            emit(
                "fall-off-end", pc,
                f"{cfg.instructions[pc].op.value} at the image end falls "
                "through past the last instruction",
            )


def _check_infinite_loops(cfg: CFG, reachable: set[int], emit) -> None:
    for component in cfg.sccs():
        members = set(component)
        if not members & reachable:
            continue
        is_cycle = len(component) > 1 or any(
            bid in cfg.blocks[bid].succs for bid in component
        )
        if not is_cycle:
            continue
        has_exit = any(
            succ not in members
            for bid in component
            for succ in cfg.blocks[bid].succs
        )
        has_halt = any(
            cfg.instructions[pc].op is Opcode.HALT
            for bid in component
            for pc in cfg.blocks[bid].pcs()
        )
        if not has_exit and not has_halt:
            head = min(cfg.blocks[bid].start for bid in component)
            emit(
                "infinite-loop", head,
                f"cycle through block(s) {sorted(component)} has no exit "
                "edge and contains no HALT",
            )


def _check_reg_classes(cfg: CFG, emit) -> None:
    for pc, inst in enumerate(cfg.instructions):
        sig = _SIG[inst.op]
        for field, want in zip(("rd", "rs1", "rs2"), sig):
            reg = getattr(inst, field)
            if want is None:
                if reg is not None:
                    emit(
                        "reg-class", pc,
                        f"{inst.op.value} must not carry {field} "
                        f"(got {reg_name(reg)})",
                    )
            elif reg is None:
                emit("reg-class", pc, f"{inst.op.value} requires {field}")
            elif not _class_ok(reg, want):
                kind = "integer" if want == _I else "floating-point"
                emit(
                    "reg-class", pc,
                    f"{inst.op.value} {field} must be an {kind} register, "
                    f"got {reg_name(reg)}",
                )
        if inst.op in _NEEDS_IMM and inst.imm is None:
            emit("reg-class", pc, f"{inst.op.value} requires an immediate")


def _check_reaching(cfg: CFG, reachable: set[int], emit) -> None:
    rd = reaching_definitions(cfg, entry_regs=ENTRY_DEFINED)
    md = must_defined(cfg, entry_regs=ENTRY_DEFINED)
    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        for pc in block.pcs():
            inst = cfg.instructions[pc]
            must = None
            for reg in inst.srcs:
                if rd.defs_of(pc, reg):
                    if must is None:
                        must = md.at(pc)
                    if reg not in must:
                        # Defined on some path (rd hit) but not on every
                        # path: conditionally undefined.
                        emit(
                            "undef-read-must", pc,
                            f"{inst.op.value} reads {reg_name(reg)}, which "
                            "at least one path reaches with no definition",
                        )
                    continue
                if inst.is_store and reg == inst.rs1:
                    emit(
                        "store-undef-base", pc,
                        f"{inst.op.value} address base {reg_name(reg)} has "
                        "no reaching definition on any path",
                    )
                else:
                    emit(
                        "undef-read", pc,
                        f"{inst.op.value} reads {reg_name(reg)}, which no "
                        "path defines before this point",
                    )
