"""Static redundancy oracle: predict mergeable fractions before simulating.

MMT's fetch merge (PAPER.md §3) exploits that SPMD threads run the *same
program image*: instructions merge whenever the threads sit at the same PC,
and registers stay RST-shared while threads write identical values.  Both
phenomena are statically predictable.  This module runs a thread-divergence
taint analysis over a program's CFG and produces *sound upper bounds*:

* ``merge_upper_bound`` — an upper bound on the dynamic fetch-merge
  fraction (``SimStats.mode_breakdown()["merge"]``).  Only *provable*
  control divergence is subtracted: a conditional branch whose outcome is
  guaranteed to differ between at least two thread ids forces the threads
  onto different paths until the branch's immediate postdominator, and the
  lighter of the two sides can never fetch-merge.  Everything the analysis
  cannot prove divergent stays inside the bound, so the bound can only be
  loose, never unsound.
* ``rst_upper_bound`` — an upper bound on the final RST
  ``sharing_fraction()``: registers whose exit value is a provably
  injective function of the thread id (e.g. ``tid`` itself, or the strided
  stack pointer) must end pairwise-different, so at most the remaining
  registers can still be shared.

The taint lattice is flat: ``BOT < {CLEAN(c), UNIFORM(site),
DIFF(site, a, b)} < MAYBE``.  ``CLEAN(c)`` is a known constant (identical
in every thread); ``UNIFORM(site)`` is an unknown value computed
identically by all threads at one def site; ``DIFF(site, a, b)`` is the
affine function ``a*tid + b`` (``a != 0``), or with ``a is b is None`` an
unknown-but-injective function of ``tid``; ``MAYBE`` is anything else.
Joining two unequal non-bottom taints yields ``MAYBE``, which keeps every
must-claim path-insensitive and therefore valid even under thread-divergent
control flow.  Affine arithmetic assumes no 64-bit wrap-around, which holds
for the small thread counts and strides the generators emit
(``a*tid + b`` stays far below ``2**63``).

Loop bodies are weighted by ``LOOP_WEIGHT ** depth`` when converting block
sets into fractions — a static stand-in for execution frequency.  The
*bounds* above do not depend on that heuristic being accurate for the
built-in workloads (their divergent branches are data-dependent, hence
never *provably* divergent, so nothing is subtracted); it only sharpens
reports for hand-written programs with structural ``tid`` branches.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import ENTRY_DEF, solve
from repro.analysis.dom import VIRTUAL_EXIT, loop_depths, postdominators
from repro.core.config import WorkloadType
from repro.func.state import DEFAULT_STACK_TOP, STACK_STRIDE
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, SP, reg_name
from repro.pipeline.stats import SimStats
from repro.workloads.generator import WorkloadBuild
from repro.workloads.message_passing import MPWorkloadBuild

#: Static execution-frequency multiplier per loop-nesting level.
LOOP_WEIGHT = 8

#: Block classification labels.
IDENTICAL = "identical"
INPUT_DIVERGENT = "input-divergent"
CONTROL_DIVERGENT = "control-divergent"
UNREACHABLE = "unreachable"

# ------------------------------------------------------------------- taints
# Flat lattice, encoded as tuples so states hash/compare structurally:
#   ("B",)                bottom (no path reaches this point yet)
#   ("C", value)          known constant, identical across threads
#   ("U", site)           unknown value, identical across threads
#   ("D", site, a, b)     value == a*tid + b per thread (a != 0)
#   ("D", site, None, None)  unknown injective function of tid
#   ("M",)                may differ across threads
Taint = tuple[object, ...]
BOT: Taint = ("B",)
MAYBE: Taint = ("M",)

#: One register-file abstract state: a taint per architected register.
RegState = tuple[Taint, ...]


def _clean(value: int | float) -> Taint:
    return ("C", value)


def _uniform(site: int) -> Taint:
    return ("U", site)


def _diff(site: int, a: int | None, b: int | None) -> Taint:
    return ("D", site, a, b)


def _is_diff(t: Taint) -> bool:
    return t[0] == "D"


def _is_clean(t: Taint) -> bool:
    return t[0] == "C"


def _is_varying(t: Taint) -> bool:
    """May the value differ across threads?"""
    return t[0] in ("D", "M")


def _const_of(t: Taint) -> int | None:
    """The known integer constant, if the taint is an integer CLEAN."""
    if t[0] == "C":
        value = t[1]
        if isinstance(value, int):
            return value
    return None


def _affine_of(t: Taint) -> tuple[int, int] | None:
    """The known (a, b) of an affine DIFF taint."""
    if t[0] == "D":
        a, b = t[2], t[3]
        if isinstance(a, int) and isinstance(b, int):
            return a, b
    return None


def _as_affine(t: Taint) -> tuple[int, int] | None:
    """View a taint as ``a*tid + b``: affine DIFFs and integer constants."""
    affine = _affine_of(t)
    if affine is not None:
        return affine
    const = _const_of(t)
    if const is not None:
        return 0, const
    return None


def _join_taint(a: Taint, b: Taint) -> Taint:
    if a == b:
        return a
    if a == BOT:
        return b
    if b == BOT:
        return a
    return MAYBE


# 64-bit two's-complement wrap, matching repro.func.executor.
_MASK64 = (1 << 64) - 1


def _to_s64(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= 1 << 63 else value


def _sll(x: int, y: int) -> int:
    return _to_s64(x << (y & 63))


def _srl(x: int, y: int) -> int:
    return (x & _MASK64) >> (y & 63)


def _sra(x: int, y: int) -> int:
    return x >> (y & 63)


#: Constant folders for integer ALU ops (DIV/REM excluded: div-by-zero).
_INT_FOLD: dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADD: lambda x, y: _to_s64(x + y),
    Opcode.SUB: lambda x, y: _to_s64(x - y),
    Opcode.MUL: lambda x, y: _to_s64(x * y),
    Opcode.AND: lambda x, y: x & y,
    Opcode.OR: lambda x, y: x | y,
    Opcode.XOR: lambda x, y: x ^ y,
    Opcode.SLL: _sll,
    Opcode.SRL: _srl,
    Opcode.SRA: _sra,
    Opcode.SLT: lambda x, y: int(x < y),
    Opcode.SEQ: lambda x, y: int(x == y),
    Opcode.ADDI: lambda x, y: _to_s64(x + y),
    Opcode.ANDI: lambda x, y: x & y,
    Opcode.ORI: lambda x, y: x | y,
    Opcode.XORI: lambda x, y: x ^ y,
    Opcode.SLLI: _sll,
    Opcode.SRLI: _srl,
    Opcode.SLTI: lambda x, y: int(x < y),
}

_IMM_OPS = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SLTI,
})


def _alu_result(pc: int, op: Opcode, x: Taint, y: Taint) -> Taint:
    """Taint of an integer ALU result given both operand taints."""
    if x == BOT or y == BOT:
        return BOT
    cx, cy = _const_of(x), _const_of(y)
    fold = _INT_FOLD.get(op)
    if cx is not None and cy is not None:
        if fold is not None:
            return _clean(fold(cx, cy))
        return _uniform(pc)  # DIV/REM on constants: fold-free, still uniform
    ax, ay = _affine_of(x), _affine_of(y)

    # Affine combinations: (a1*t + b1) op (a2*t + b2) with one side possibly
    # constant (a == 0).  Only ADD/SUB stay affine; MUL by a constant scales.
    if op in (Opcode.ADD, Opcode.ADDI, Opcode.SUB):
        pa, pb = _as_affine(x), _as_affine(y)
        if pa is not None and pb is not None:
            sign = -1 if op is Opcode.SUB else 1
            a = pa[0] + sign * pb[0]
            b = pa[1] + sign * pb[1]
            if a == 0:
                return _clean(b)
            return _diff(pc, a, b)
    if op is Opcode.MUL:
        pair = ax if ax is not None else ay
        const = cy if ax is not None else cx
        if pair is not None and const is not None:
            if const == 0:
                return _clean(0)
            return _diff(pc, pair[0] * const, pair[1] * const)

    # Injectivity-preserving ops: adding/xoring a thread-uniform value to an
    # injective-in-tid value keeps it injective (form unknown).
    if _is_diff(x) != _is_diff(y):
        d, other = (x, y) if _is_diff(x) else (y, x)
        if other[0] in ("C", "U") and op in (
            Opcode.ADD, Opcode.ADDI, Opcode.SUB, Opcode.XOR, Opcode.XORI
        ):
            return _diff(pc, None, None)

    if x == MAYBE or y == MAYBE or _is_diff(x) or _is_diff(y):
        return MAYBE
    return _uniform(pc)  # uniform/constant inputs, un-modelled op


def _transfer_inst(
    pc: int, inst: Instruction, state: list[Taint], nctx: int
) -> None:
    """Apply one instruction's effect to a mutable register-taint list."""
    dst = inst.dst
    if dst is None:
        return
    op = inst.op

    def src(reg: int | None) -> Taint:
        return _clean(0) if reg is None else state[reg]

    if op is Opcode.LI or op is Opcode.FLI:
        result: Taint = _clean(inst.imm if inst.imm is not None else 0)
    elif op is Opcode.TID:
        result = _diff(pc, 1, 0) if nctx > 1 else _clean(0)
    elif op is Opcode.NCTX:
        result = _clean(nctx)
    elif op is Opcode.JAL:
        result = _clean(pc + 1)  # link register: a code address, uniform
    elif op in (Opcode.LW, Opcode.FLW, Opcode.TRECV):
        result = MAYBE  # memory / message contents are not modelled
    elif op in _INT_FOLD or op in (Opcode.DIV, Opcode.REM):
        if op in _IMM_OPS:
            result = _alu_result(
                pc, op, src(inst.rs1), _clean(inst.imm if inst.imm is not None else 0)
            )
        else:
            result = _alu_result(pc, op, src(inst.rs1), src(inst.rs2))
    elif op in (Opcode.FCVT, Opcode.FNEG):
        x = src(inst.rs1)
        if x == BOT:
            result = BOT
        elif _is_diff(x):
            result = _diff(pc, None, None)  # injective: exact for small ints
        elif x == MAYBE:
            result = MAYBE
        else:
            result = _uniform(pc)
    else:
        # Remaining fp ops, compares, etc.: uniform in, uniform out.
        operands = [src(inst.rs1), src(inst.rs2)]
        if any(t == BOT for t in operands):
            result = BOT
        elif any(_is_varying(t) for t in operands):
            result = MAYBE
        else:
            result = _uniform(pc)
    state[dst] = result


# -------------------------------------------------------- branch divergence
def _branch_class(inst: Instruction, state: Sequence[Taint], nctx: int) -> str:
    """Classify a conditional branch: 'uniform', 'may', or 'must' diverge."""
    t1 = state[inst.rs1] if inst.rs1 is not None else _clean(0)
    t2 = state[inst.rs2] if inst.rs2 is not None else _clean(0)
    if t1 == BOT or t2 == BOT:
        return "uniform"
    if nctx < 2:
        return "uniform"
    if not _is_varying(t1) and not _is_varying(t2):
        return "uniform"

    # Reduce to d(t) = a*t + b vs 0: outcome as a function of the thread id.
    p1 = _as_affine(t1)
    p2 = _as_affine(t2)
    if p1 is None or p2 is None:
        return "may"
    a = p1[0] - p2[0]
    b = p1[1] - p2[1]
    if a == 0:
        return "uniform"  # same affine dependence cancels: all threads agree
    op = inst.op
    if op in (Opcode.BEQ, Opcode.BNE):
        # d(t) == 0 at exactly one real t; divergent iff that t is a live
        # thread id (the others then disagree with it).
        if b % a == 0 and 0 <= -b // a < nctx:
            return "must"
        return "uniform"  # no thread satisfies equality: all agree
    # BLT/BGE on lhs < rhs: d(t) < 0 is monotone in t; endpoints decide.
    first = a * 0 + b < 0
    last = a * (nctx - 1) + b < 0
    return "must" if first != last else "uniform"


def _divergent_side(
    cfg: CFG, start: int, stop: int | None, branch_bid: int
) -> set[int]:
    """Blocks reachable from *start* before *stop* (the ipdom), excluding it."""
    if start == stop:
        return set()
    seen = {start}
    stack = [start]
    while stack:
        for succ in cfg.blocks[stack.pop()].succs:
            if succ == stop or succ == branch_bid or succ in seen:
                continue
            seen.add(succ)
            stack.append(succ)
    return seen


# ----------------------------------------------------------------- reports
@dataclass
class OracleReport:
    """Static redundancy classification of one program under *nctx* threads."""

    name: str
    nctx: int
    #: Per-block label: identical / input-divergent / control-divergent /
    #: unreachable.
    block_classes: list[str]
    #: Loop-weighted instruction fraction per class (reachable blocks only).
    identical_fraction: float
    input_divergent_fraction: float
    control_divergent_fraction: float
    #: Sound upper bound on the dynamic fetch-merge fraction.
    merge_upper_bound: float
    #: Sound upper bound on the final RST sharing fraction.
    rst_upper_bound: float
    #: PCs of branches whose outcome provably differs between threads.
    must_diverge_branches: list[int] = field(default_factory=list)
    #: PCs of branches that may (data-dependently) diverge.
    may_diverge_branches: list[int] = field(default_factory=list)
    #: Registers whose exit value is provably injective in the thread id.
    diverging_exit_regs: frozenset[int] = frozenset()

    def validate_against(
        self, stats: SimStats, rst_sharing: float | None = None
    ) -> list[str]:
        """Cross-check the static bounds against one dynamic run.

        Returns human-readable disagreement messages (empty = consistent).
        A non-empty result means either the workload violates the analysis
        assumptions or the simulator (or the oracle) has a bug.
        """
        problems: list[str] = []
        measured_merge = stats.mode_breakdown().get("merge", 0.0)
        if measured_merge > self.merge_upper_bound + 1e-9:
            problems.append(
                f"{self.name}: dynamic merge fraction {measured_merge:.4f} "
                f"exceeds the static upper bound {self.merge_upper_bound:.4f}"
            )
        if rst_sharing is not None and rst_sharing > self.rst_upper_bound + 1e-9:
            regs = ", ".join(reg_name(r) for r in sorted(self.diverging_exit_regs))
            problems.append(
                f"{self.name}: dynamic RST sharing {rst_sharing:.4f} exceeds "
                f"the static upper bound {self.rst_upper_bound:.4f} "
                f"(must-diverge regs: {regs or 'none'})"
            )
        return problems

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: nctx={self.nctx} "
            f"identical={self.identical_fraction:.2f} "
            f"input-div={self.input_divergent_fraction:.2f} "
            f"control-div={self.control_divergent_fraction:.2f} "
            f"merge<={self.merge_upper_bound:.3f} "
            f"rst<={self.rst_upper_bound:.3f}"
        )


def analyze_program(
    program: Program,
    nctx: int,
    *,
    sp_divergent: bool = True,
    name: str | None = None,
) -> OracleReport:
    """Run the thread-divergence taint analysis over one program image.

    *sp_divergent* models the multi-threaded job convention of strided
    per-thread stack tops; multi-execution and message-passing jobs give
    every context the same stack top.
    """
    cfg = CFG.from_program(program)
    return analyze_cfg(
        cfg, nctx, sp_divergent=sp_divergent, name=name or program.name
    )


def analyze_cfg(
    cfg: CFG,
    nctx: int,
    *,
    sp_divergent: bool = True,
    name: str = "program",
) -> OracleReport:
    """:func:`analyze_program` over an already-built CFG."""
    num_regs = NUM_ARCH_REGS
    boundary_list: list[Taint] = [_clean(0)] * num_regs
    if sp_divergent and nctx > 1:
        boundary_list[SP] = _diff(ENTRY_DEF, -STACK_STRIDE, DEFAULT_STACK_TOP)
    else:
        boundary_list[SP] = _clean(DEFAULT_STACK_TOP)
    boundary: RegState = tuple(boundary_list)
    bottom: RegState = tuple([BOT] * num_regs)

    def transfer(bid: int, state: RegState) -> RegState:
        regs = list(state)
        for pc in cfg.blocks[bid].pcs():
            _transfer_inst(pc, cfg.instructions[pc], regs, nctx)
        return tuple(regs)

    def join(a: RegState, b: RegState) -> RegState:
        if a == b:
            return a
        return tuple(_join_taint(x, y) for x, y in zip(a, b))

    block_in, block_out = solve(
        cfg,
        direction="forward",
        boundary=boundary,
        init=bottom,
        transfer=transfer,
        join=join,
    )

    def state_at(pc: int) -> RegState:
        bid = cfg.block_of[pc]
        regs = list(block_in[bid])
        for earlier in range(cfg.blocks[bid].start, pc):
            _transfer_inst(earlier, cfg.instructions[earlier], regs, nctx)
        return tuple(regs)

    reachable = cfg.reachable()
    depths = loop_depths(cfg)
    ipdom = postdominators(cfg)

    def weight(bid: int) -> int:
        return len(cfg.blocks[bid]) * LOOP_WEIGHT ** depths[bid]

    total_weight = sum(weight(b) for b in reachable) or 1

    # ------------------------------------------------ branch classification
    must_diverge: list[int] = []
    may_diverge: list[int] = []
    control_divergent: set[int] = set()
    unmergeable: set[int] = set()
    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        inst = cfg.instructions[block.last]
        if not inst.is_branch:
            continue
        klass = _branch_class(inst, state_at(block.last), nctx)
        if klass == "uniform":
            continue
        (must_diverge if klass == "must" else may_diverge).append(block.last)
        stop = ipdom[block.bid]
        stop_bid = stop if stop is not None and stop != VIRTUAL_EXIT else None
        sides = [
            _divergent_side(cfg, succ, stop_bid, block.bid)
            for succ in block.succs
        ]
        for side in sides:
            control_divergent |= side
        if klass == "must" and len(sides) == 2:
            # The lighter side can never merge while threads are split.
            lighter = min(sides, key=lambda s: sum(weight(b) for b in s))
            unmergeable |= lighter

    # --------------------------------------------------- block classification
    classes: list[str] = []
    weights = {IDENTICAL: 0, INPUT_DIVERGENT: 0, CONTROL_DIVERGENT: 0}
    for block in cfg.blocks:
        if block.bid not in reachable:
            classes.append(UNREACHABLE)
            continue
        if block.bid in control_divergent:
            label = CONTROL_DIVERGENT
        else:
            regs = list(block_in[block.bid])
            label = IDENTICAL
            for pc in block.pcs():
                inst = cfg.instructions[pc]
                if any(_is_varying(regs[r]) for r in inst.srcs):
                    label = INPUT_DIVERGENT
                    break
                _transfer_inst(pc, inst, regs, nctx)
                if inst.dst is not None and _is_varying(regs[inst.dst]):
                    label = INPUT_DIVERGENT
                    break
        classes.append(label)
        weights[label] += weight(block.bid)

    merge_upper = 1.0
    if unmergeable:
        blocked = sum(weight(b) for b in unmergeable & reachable)
        merge_upper = max(0.0, 1.0 - blocked / total_weight)

    # ------------------------------------------------------ exit register set
    exits = [b.bid for b in cfg.blocks if not b.succs and b.bid in reachable]
    must_differ: set[int] = set()
    if exits and nctx > 1:
        for reg in range(num_regs):
            taints = [block_out[e][reg] for e in exits]
            if all(_is_diff(t) for t in taints):
                must_differ.add(reg)
    rst_upper = 1.0 - len(must_differ) / num_regs

    return OracleReport(
        name=name,
        nctx=nctx,
        block_classes=classes,
        identical_fraction=weights[IDENTICAL] / total_weight,
        input_divergent_fraction=weights[INPUT_DIVERGENT] / total_weight,
        control_divergent_fraction=weights[CONTROL_DIVERGENT] / total_weight,
        merge_upper_bound=merge_upper,
        rst_upper_bound=rst_upper,
        must_diverge_branches=sorted(must_diverge),
        may_diverge_branches=sorted(may_diverge),
        diverging_exit_regs=frozenset(must_differ),
    )


def analyze_build(build: WorkloadBuild) -> OracleReport:
    """Oracle report for a generated single/multi-context workload build."""
    sp_divergent = build.profile.wtype is WorkloadType.MULTI_THREADED
    return analyze_program(
        build.program, build.nctx, sp_divergent=sp_divergent
    )


def analyze_mp_build(build: MPWorkloadBuild) -> OracleReport:
    """Oracle report for a generated message-passing workload build."""
    return analyze_program(build.program, build.nctx, sp_divergent=False)
