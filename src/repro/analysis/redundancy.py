"""Static redundancy oracle: predict mergeable fractions before simulating.

MMT's fetch merge (PAPER.md §3) exploits that SPMD threads run the *same
program image*: instructions merge whenever the threads sit at the same PC,
and registers stay RST-shared while threads write identical values.  Both
phenomena are statically predictable.  This module drives the value-level
analysis of :mod:`repro.analysis.values` over a program's CFG and produces
*sound upper bounds*:

* ``merge_upper_bound`` — an upper bound on the dynamic fetch-merge
  fraction (``SimStats.mode_breakdown()["merge"]``).  Only *provable*
  control divergence is subtracted: a conditional branch whose outcome is
  guaranteed to differ between at least two thread ids forces the threads
  onto different paths until the branch's immediate postdominator, and the
  lighter of the two sides can never fetch-merge.  Everything the analysis
  cannot prove divergent stays inside the bound, so the bound can only be
  loose, never unsound.
* ``rst_upper_bound`` — an upper bound on the final RST
  ``sharing_fraction()``: registers whose exit value is a provably
  injective function of the thread id (e.g. ``tid`` itself, or the strided
  stack pointer) must end pairwise-different, so at most the remaining
  registers can still be shared.  Loop-widened values (whose precision
  assumes lockstep iteration counts) are excluded from this set.
* ``lvip_hit_rate_upper_bound`` plus the per-PC sets
  ``lvip_eligible_pcs`` / ``lvip_must_identical_pcs`` — the value-level
  LVIP contract.  The LVIP (``repro.core.lvip``) is a sticky-optimistic
  predictor: the first check of any PC predicts *identical*, and only a
  PC that has actually mispredicted stops hitting.  Any static ratio
  bound below 1.0 would therefore be unsound for a workload whose first
  checks all hit, so the ratio bound is the trivial 1.0 whenever the job
  type consults the LVIP at all, and 0.0 when it never does
  (multi-threaded jobs bypass the predictor entirely).  The *teeth* are
  per-PC: every dynamically checked PC must be a reachable load
  (``lvip_eligible_pcs``), and no load the memory model proves
  must-identical (address interval entirely inside the never-stored,
  overlay-identical image region) may ever mispredict
  (``lvip_must_identical_pcs``).

Loop bodies are weighted by ``LOOP_WEIGHT ** depth`` when converting block
sets into fractions — a static stand-in for execution frequency.  The
*bounds* above do not depend on that heuristic being accurate; it only
sharpens the descriptive fractions and reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG
from repro.analysis.dom import VIRTUAL_EXIT, loop_depths, postdominators
from repro.analysis.values import (
    MemoryModel,
    analyze_values_cfg,
    exact_affine_of,
    is_varying,
    regions_from_symbols,
)
from repro.core.config import WorkloadType
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, reg_name
from repro.pipeline.stats import SimStats
from repro.workloads.generator import WorkloadBuild
from repro.workloads.message_passing import MPWorkloadBuild

#: Static execution-frequency multiplier per loop-nesting level.
LOOP_WEIGHT = 8

#: Block classification labels.
IDENTICAL = "identical"
INPUT_DIVERGENT = "input-divergent"
CONTROL_DIVERGENT = "control-divergent"
UNREACHABLE = "unreachable"


def _divergent_side(
    cfg: CFG, start: int, stop: int | None, branch_bid: int
) -> set[int]:
    """Blocks reachable from *start* before *stop* (the ipdom), excluding it."""
    if start == stop:
        return set()
    seen = {start}
    stack = [start]
    while stack:
        for succ in cfg.blocks[stack.pop()].succs:
            if succ == stop or succ == branch_bid or succ in seen:
                continue
            seen.add(succ)
            stack.append(succ)
    return seen


# ----------------------------------------------------------------- reports
@dataclass
class OracleReport:
    """Static redundancy classification of one program under *nctx* threads."""

    name: str
    nctx: int
    #: Per-block label: identical / input-divergent / control-divergent /
    #: unreachable.
    block_classes: list[str]
    #: Loop-weighted instruction fraction per class (reachable blocks only).
    identical_fraction: float
    input_divergent_fraction: float
    control_divergent_fraction: float
    #: Sound upper bound on the dynamic fetch-merge fraction.
    merge_upper_bound: float
    #: Sound upper bound on the final RST sharing fraction.
    rst_upper_bound: float
    #: PCs of branches whose outcome provably differs between threads.
    must_diverge_branches: list[int] = field(default_factory=list)
    #: PCs of branches that may (data-dependently) diverge.
    may_diverge_branches: list[int] = field(default_factory=list)
    #: Registers whose exit value is provably injective in the thread id.
    diverging_exit_regs: frozenset[int] = frozenset()
    #: Does this job type consult the LVIP at all?  Multi-threaded jobs
    #: never do; multi-execution, message-passing and Limit-study jobs do.
    lvip_eligible: bool = False
    #: Sound upper bound on the dynamic LVIP hit rate
    #: ((checks - mispredicts) / checks).  1.0 when eligible (the sticky
    #: predictor's first check per PC always hits), 0.0 when the job
    #: never consults the predictor.
    lvip_hit_rate_upper_bound: float = 0.0
    #: Every load PC an LVIP check could legally target.
    lvip_eligible_pcs: frozenset[int] = frozenset()
    #: Load PCs that can never mispredict: their address interval lies
    #: entirely inside the overlay-identical, never-stored image region.
    lvip_must_identical_pcs: frozenset[int] = frozenset()
    #: Loop-weighted fraction of load sites proven must-identical.
    lvip_must_identical_fraction: float = 0.0
    #: Natural-loop headers where loop-uniformity widening fired.
    widened_loop_headers: int = 0

    def validate_against(
        self, stats: SimStats, rst_sharing: float | None = None
    ) -> list[str]:
        """Cross-check the static bounds against one dynamic run.

        Returns human-readable disagreement messages (empty = consistent).
        A non-empty result means either the workload violates the analysis
        assumptions or the simulator (or the oracle) has a bug.
        """
        problems: list[str] = []
        measured_merge = stats.mode_breakdown().get("merge", 0.0)
        if measured_merge > self.merge_upper_bound + 1e-9:
            problems.append(
                f"{self.name}: dynamic merge fraction {measured_merge:.4f} "
                f"exceeds the static upper bound {self.merge_upper_bound:.4f}"
            )
        if rst_sharing is None:
            rst_sharing = stats.final_rst_sharing
        if rst_sharing is not None and rst_sharing > self.rst_upper_bound + 1e-9:
            regs = ", ".join(reg_name(r) for r in sorted(self.diverging_exit_regs))
            problems.append(
                f"{self.name}: dynamic RST sharing {rst_sharing:.4f} exceeds "
                f"the static upper bound {self.rst_upper_bound:.4f} "
                f"(must-diverge regs: {regs or 'none'})"
            )
        problems.extend(self._validate_lvip(stats))
        return problems

    def _validate_lvip(self, stats: SimStats) -> list[str]:
        problems: list[str] = []
        measured_rate = stats.lvip_hit_rate()
        if measured_rate > self.lvip_hit_rate_upper_bound + 1e-9:
            problems.append(
                f"{self.name}: dynamic LVIP hit rate {measured_rate:.4f} "
                f"exceeds the static upper bound "
                f"{self.lvip_hit_rate_upper_bound:.4f}"
            )
        checked = frozenset(stats.lvip_site_checks)
        stray = checked - self.lvip_eligible_pcs
        if stray:
            pcs = ", ".join(str(pc) for pc in sorted(stray))
            problems.append(
                f"{self.name}: LVIP checked PCs outside the static eligible "
                f"load set: {pcs}"
            )
        mispredicted = frozenset(stats.lvip_site_mispredicts)
        broken = mispredicted & self.lvip_must_identical_pcs
        if broken:
            pcs = ", ".join(str(pc) for pc in sorted(broken))
            problems.append(
                f"{self.name}: LVIP mispredicted loads the oracle proved "
                f"must-identical: {pcs}"
            )
        return problems

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: nctx={self.nctx} "
            f"identical={self.identical_fraction:.2f} "
            f"input-div={self.input_divergent_fraction:.2f} "
            f"control-div={self.control_divergent_fraction:.2f} "
            f"merge<={self.merge_upper_bound:.3f} "
            f"rst<={self.rst_upper_bound:.3f} "
            f"lvip<={self.lvip_hit_rate_upper_bound:.1f}"
        )

    def values_summary(self) -> str:
        """One-line summary of the value-level (LVIP) columns."""
        return (
            f"{self.name}: lvip-eligible={len(self.lvip_eligible_pcs)} "
            f"must-identical={len(self.lvip_must_identical_pcs)} "
            f"({self.lvip_must_identical_fraction:.2f} weighted) "
            f"widened-headers={self.widened_loop_headers} "
            f"lvip<={self.lvip_hit_rate_upper_bound:.1f}"
        )


def analyze_program(
    program: Program,
    nctx: int,
    *,
    sp_divergent: bool = True,
    name: str | None = None,
    memory: MemoryModel | None = None,
    lvip_eligible: bool | None = None,
    tid_value: int | None = None,
) -> OracleReport:
    """Run the value-level divergence analysis over one program image.

    *sp_divergent* models the multi-threaded job convention of strided
    per-thread stack tops; multi-execution and message-passing jobs give
    every context the same stack top.  *memory* supplies the data-image
    model used to prove loads must-identical; *lvip_eligible* marks
    whether the job type consults the LVIP (default: every non-MT
    convention, i.e. exactly when *sp_divergent* is off); *tid_value*
    pins the TID opcode (Limit-study clones all run as tid 0).
    """
    cfg = CFG.from_program(program)
    return analyze_cfg(
        cfg,
        nctx,
        sp_divergent=sp_divergent,
        name=name or program.name,
        memory=memory,
        lvip_eligible=lvip_eligible,
        tid_value=tid_value,
    )


def analyze_cfg(
    cfg: CFG,
    nctx: int,
    *,
    sp_divergent: bool = True,
    name: str = "program",
    memory: MemoryModel | None = None,
    lvip_eligible: bool | None = None,
    tid_value: int | None = None,
) -> OracleReport:
    """:func:`analyze_program` over an already-built CFG."""
    if lvip_eligible is None:
        lvip_eligible = not sp_divergent
    va = analyze_values_cfg(
        cfg,
        nctx,
        sp_divergent=sp_divergent,
        memory=memory,
        tid_value=tid_value,
    )
    reachable = va.reachable
    depths = loop_depths(cfg)
    ipdom = postdominators(cfg)

    def weight(bid: int) -> int:
        return len(cfg.blocks[bid]) * LOOP_WEIGHT ** depths[bid]

    total_weight = sum(weight(b) for b in reachable) or 1

    # ------------------------------------------------ branch classification
    must_diverge: list[int] = []
    may_diverge: list[int] = []
    control_divergent: set[int] = set()
    unmergeable: set[int] = set()
    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        klass = va.branch_classes.get(block.last)
        if klass is None or klass == "uniform":
            continue
        (must_diverge if klass == "must" else may_diverge).append(block.last)
        stop = ipdom[block.bid]
        stop_bid = stop if stop is not None and stop != VIRTUAL_EXIT else None
        sides = [
            _divergent_side(cfg, succ, stop_bid, block.bid)
            for succ in block.succs
        ]
        for side in sides:
            control_divergent |= side
        if klass == "must" and len(sides) == 2:
            # The lighter side can never merge while threads are split.
            lighter = min(sides, key=lambda s: sum(weight(b) for b in s))
            unmergeable |= lighter

    # ------------------------------------------------- block classification
    classes: list[str] = []
    weights = {IDENTICAL: 0, INPUT_DIVERGENT: 0, CONTROL_DIVERGENT: 0}
    for block in cfg.blocks:
        if block.bid not in reachable:
            classes.append(UNREACHABLE)
            continue
        if block.bid in control_divergent:
            label = CONTROL_DIVERGENT
        else:
            regs = list(va.block_in[block.bid])
            label = IDENTICAL
            for pc in block.pcs():
                inst = cfg.instructions[pc]
                if any(is_varying(regs[r]) for r in inst.srcs):
                    label = INPUT_DIVERGENT
                    break
                va.apply(pc, regs)
                if inst.dst is not None and is_varying(regs[inst.dst]):
                    label = INPUT_DIVERGENT
                    break
        classes.append(label)
        weights[label] += weight(block.bid)

    merge_upper = 1.0
    if unmergeable:
        blocked = sum(weight(b) for b in unmergeable & reachable)
        merge_upper = max(0.0, 1.0 - blocked / total_weight)

    # ----------------------------------------------------- exit register set
    exits = [b.bid for b in cfg.blocks if not b.succs and b.bid in reachable]
    must_differ: set[int] = set()
    if exits and nctx > 1:
        for reg in range(NUM_ARCH_REGS):
            vals = [va.block_out[e][reg] for e in exits]
            if all(_must_differ_exit(v) for v in vals):
                must_differ.add(reg)
    rst_upper = 1.0 - len(must_differ) / NUM_ARCH_REGS

    # -------------------------------------------------------- LVIP contract
    eligible_pcs = va.eligible_load_pcs() if lvip_eligible else frozenset()
    identical_pcs = (
        va.must_identical_load_pcs() & eligible_pcs
        if lvip_eligible
        else frozenset()
    )
    load_weight = {
        pc: weight(cfg.block_of[pc]) for pc in va.loads
    }
    total_load_weight = sum(load_weight.values())
    identical_fraction_lvip = (
        sum(load_weight[pc] for pc in identical_pcs) / total_load_weight
        if total_load_weight and lvip_eligible
        else 0.0
    )
    # The LVIP defaults to "identical" and only unlearns a PC after an
    # actual misprediction, so the first check of every PC hits: no ratio
    # bound below 1.0 is sound while the predictor is consulted at all.
    lvip_bound = 1.0 if (lvip_eligible and eligible_pcs) else 0.0

    return OracleReport(
        name=name,
        nctx=nctx,
        block_classes=classes,
        identical_fraction=weights[IDENTICAL] / total_weight,
        input_divergent_fraction=weights[INPUT_DIVERGENT] / total_weight,
        control_divergent_fraction=weights[CONTROL_DIVERGENT] / total_weight,
        merge_upper_bound=merge_upper,
        rst_upper_bound=rst_upper,
        must_diverge_branches=sorted(must_diverge),
        may_diverge_branches=sorted(may_diverge),
        diverging_exit_regs=frozenset(must_differ),
        lvip_eligible=lvip_eligible,
        lvip_hit_rate_upper_bound=lvip_bound,
        lvip_eligible_pcs=eligible_pcs,
        lvip_must_identical_pcs=identical_pcs,
        lvip_must_identical_fraction=identical_fraction_lvip,
        widened_loop_headers=len(va.widened_headers),
    )


def _must_differ_exit(v: tuple[object, ...]) -> bool:
    """May this exit value be claimed pairwise-distinct across threads?

    Exact affine forms (``a*tid + b`` with integer coefficients) and
    widening-free unknown-injective values qualify; widened values
    (symbolic uniform bases) do not — their uniformity claim assumes all
    threads iterate loops in lockstep, which the dynamic machine does not
    guarantee at exit.
    """
    if v[0] != "D":
        return False
    if exact_affine_of(v) is not None:
        return True
    return v[2] is None and v[3] is None  # unknown injective, not widened


def analyze_build(build: WorkloadBuild) -> OracleReport:
    """Oracle report for a generated single/multi-context workload build."""
    shared = build.profile.wtype is WorkloadType.MULTI_THREADED
    return analyze_program(
        build.program,
        build.nctx,
        sp_divergent=shared,
        memory=MemoryModel.for_build(build, shared=shared),
        lvip_eligible=not shared,
    )


def analyze_limit_build(build: WorkloadBuild) -> OracleReport:
    """Oracle report for a build run under the Limit-study configuration.

    ``Job.limit_clone`` runs *nctx* identical clones of the program: every
    context sees the base data image (no overlays) and soft tid 0, and
    the clones execute as a multi-execution job, so they do consult the
    LVIP.  With no overlays and a pinned tid, far more loads are provably
    identical — which is the point of the limit study.
    """
    return analyze_program(
        build.program,
        build.nctx,
        sp_divergent=False,
        name=build.program.name + "-limit",
        memory=MemoryModel(
            dict(build.program.data),
            regions=regions_from_symbols(
                getattr(build.program, "symbols", None) or {},
                build.program.data,
            ),
        ),
        lvip_eligible=True,
        tid_value=0,
    )


def analyze_mp_build(build: MPWorkloadBuild) -> OracleReport:
    """Oracle report for a generated message-passing workload build."""
    return analyze_program(
        build.program,
        build.nctx,
        sp_divergent=False,
        # Every rank boots from the same image in its own address space
        # (rank-specific inputs arrive by message, not by overlay).
        memory=MemoryModel(
            dict(build.program.data),
            regions=regions_from_symbols(
                getattr(build.program, "symbols", None) or {},
                build.program.data,
            ),
        ),
        lvip_eligible=True,
    )
