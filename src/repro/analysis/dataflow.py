"""Generic iterative dataflow solving, plus the two classic instances.

:func:`solve` runs a worklist fixpoint over a
:class:`~repro.analysis.cfg.CFG` for an arbitrary lattice: the caller
supplies the join, the per-block transfer function, and the boundary
value.  The solver is direction-agnostic (``forward`` / ``backward``) and
enforces a convergence-iteration cap so a buggy (non-monotone) transfer
function raises :class:`DataflowDivergence` instead of spinning forever.

Three standard instances are provided:

* :func:`reaching_definitions` — forward, may; definitions are
  ``(pc, reg)`` pairs, with ``pc == ENTRY_DEF`` marking registers defined
  by the hardware before the first instruction.
* :func:`must_defined` — forward, must; registers written on *every*
  path from the entry (intersection join over an optimistic start).
* :func:`liveness` — backward, may; live architected registers per block
  boundary.

The taint analysis of :mod:`repro.analysis.redundancy` instantiates the
same solver with a register-file lattice.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import TypeVar

from repro.analysis.cfg import CFG
from repro.isa.registers import NUM_ARCH_REGS, SP, ZERO

S = TypeVar("S")

#: Pseudo-PC of definitions that exist before the program starts.
ENTRY_DEF = -1

#: A definition site: (pc, architected register).
Def = tuple[int, int]

#: Per-state-update factor of the default convergence cap.
DEFAULT_CAP_FACTOR = 64


class DataflowDivergence(RuntimeError):
    """The fixpoint failed to converge within the iteration cap."""


def solve(
    cfg: CFG,
    *,
    direction: str,
    boundary: S,
    init: S,
    transfer: Callable[[int, S], S],
    join: Callable[[S, S], S],
    max_iterations: int | None = None,
) -> tuple[list[S], list[S]]:
    """Run a worklist fixpoint; returns ``(IN, OUT)`` states per block.

    For ``direction="forward"``, IN is the join over predecessor OUTs and
    OUT = transfer(block, IN); the boundary value feeds the entry block.
    For ``direction="backward"`` the roles are mirrored (IN is computed
    from successor OUTs... i.e. the returned first list is the state at
    block *entry*, the second at block *exit*, in program order, for both
    directions).  *max_iterations* caps the number of block evaluations
    (default ``DEFAULT_CAP_FACTOR * (blocks + 1)``).
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {direction!r}")
    num = len(cfg.blocks)
    state_in: list[S] = [init for _ in range(num)]
    state_out: list[S] = [init for _ in range(num)]
    if num == 0:
        return state_in, state_out
    forward = direction == "forward"
    cap = (
        max_iterations
        if max_iterations is not None
        else DEFAULT_CAP_FACTOR * (num + 1)
    )
    if forward:
        boundary_blocks = {cfg.entry_block}
        worklist = list(range(num))
    else:
        boundary_blocks = {b.bid for b in cfg.blocks if not b.succs}
        worklist = list(range(num - 1, -1, -1))
    queued = set(worklist)
    evaluations = 0
    while worklist:
        bid = worklist.pop(0)
        queued.discard(bid)
        evaluations += 1
        if evaluations > cap:
            raise DataflowDivergence(
                f"{cfg.name}: dataflow fixpoint exceeded {cap} block "
                f"evaluations ({num} blocks) — non-monotone transfer?"
            )
        block = cfg.blocks[bid]
        sources = block.preds if forward else block.succs
        acc = boundary if bid in boundary_blocks else init
        for src in sources:
            acc = join(acc, state_out[src] if forward else state_in[src])
        new = transfer(bid, acc)
        if forward:
            changed = new != state_out[bid] or acc != state_in[bid]
            state_in[bid] = acc
            state_out[bid] = new
        else:
            changed = new != state_in[bid] or acc != state_out[bid]
            state_out[bid] = acc
            state_in[bid] = new
        if changed:
            dests = block.succs if forward else block.preds
            for dest in dests:
                if dest not in queued:
                    queued.add(dest)
                    worklist.append(dest)
    return state_in, state_out


# ----------------------------------------------------- reaching definitions
class ReachingDefs:
    """Reaching-definition sets per block boundary and per instruction."""

    def __init__(
        self,
        cfg: CFG,
        block_in: list[frozenset[Def]],
        block_out: list[frozenset[Def]],
    ) -> None:
        self.cfg = cfg
        self.block_in = block_in
        self.block_out = block_out

    def at(self, pc: int) -> frozenset[Def]:
        """Definitions reaching the instruction at *pc* (before it runs)."""
        bid = self.cfg.block_of[pc]
        state = set(self.block_in[bid])
        for earlier in range(self.cfg.blocks[bid].start, pc):
            dst = self.cfg.instructions[earlier].dst
            if dst is not None:
                state = {d for d in state if d[1] != dst}
                state.add((earlier, dst))
        return frozenset(state)

    def defs_of(self, pc: int, reg: int) -> frozenset[Def]:
        """Definitions of *reg* reaching *pc*."""
        return frozenset(d for d in self.at(pc) if d[1] == reg)


def reaching_definitions(
    cfg: CFG,
    entry_regs: Iterable[int] = (ZERO, SP),
    max_iterations: int | None = None,
) -> ReachingDefs:
    """Forward may-analysis over ``(pc, reg)`` definition sites.

    *entry_regs* are registers carrying a hardware-provided value at
    program start (the zero register and the stack pointer by default);
    they appear as ``(ENTRY_DEF, reg)`` pseudo-definitions.
    """
    gen: list[dict[int, int]] = []  # reg -> defining pc (last in block)
    for block in cfg.blocks:
        last: dict[int, int] = {}
        for pc in block.pcs():
            dst = cfg.instructions[pc].dst
            if dst is not None:
                last[dst] = pc
        gen.append(last)

    def transfer(bid: int, state: frozenset[Def]) -> frozenset[Def]:
        killed_regs = gen[bid].keys()
        survivors = {d for d in state if d[1] not in killed_regs}
        survivors.update((pc, reg) for reg, pc in gen[bid].items())
        return frozenset(survivors)

    boundary = frozenset((ENTRY_DEF, reg) for reg in entry_regs)
    block_in, block_out = solve(
        cfg,
        direction="forward",
        boundary=boundary,
        init=frozenset(),
        transfer=transfer,
        join=lambda a, b: a | b,
        max_iterations=max_iterations,
    )
    return ReachingDefs(cfg, block_in, block_out)


# ------------------------------------------------------------- must-defined
class MustDefined:
    """Registers written on *every* path from the entry, per point."""

    def __init__(
        self,
        cfg: CFG,
        block_in: list[frozenset[int]],
        block_out: list[frozenset[int]],
    ) -> None:
        self.cfg = cfg
        self.block_in = block_in
        self.block_out = block_out

    def at(self, pc: int) -> frozenset[int]:
        """Registers defined on every path reaching *pc* (before it runs)."""
        bid = self.cfg.block_of[pc]
        state = set(self.block_in[bid])
        for earlier in range(self.cfg.blocks[bid].start, pc):
            dst = self.cfg.instructions[earlier].dst
            if dst is not None:
                state.add(dst)
        return frozenset(state)


def must_defined(
    cfg: CFG,
    entry_regs: Iterable[int] = (ZERO, SP),
    max_iterations: int | None = None,
) -> MustDefined:
    """Forward must-analysis: registers written on every entry-to-point path.

    The dual of :func:`reaching_definitions`: intersection join over an
    optimistic (all-registers) start, so the greatest fixpoint keeps
    exactly the registers no path can reach the point without defining.
    A register that reaching-definitions says *may* be defined but this
    analysis says is not *must*-defined is conditionally undefined —
    the ``undef-read-must`` lint rule's subject.
    """
    universe = frozenset(range(NUM_ARCH_REGS))
    gen: list[frozenset[int]] = [
        frozenset(
            cfg.instructions[pc].dst
            for pc in block.pcs()
            if cfg.instructions[pc].dst is not None
        )
        for block in cfg.blocks
    ]

    def transfer(bid: int, state: frozenset[int]) -> frozenset[int]:
        return state | gen[bid]

    block_in, block_out = solve(
        cfg,
        direction="forward",
        boundary=frozenset(entry_regs),
        init=universe,
        transfer=transfer,
        join=lambda a, b: a & b,
        max_iterations=max_iterations,
    )
    return MustDefined(cfg, block_in, block_out)


# ------------------------------------------------------------------ liveness
class Liveness:
    """Live architected registers per block boundary."""

    def __init__(
        self,
        cfg: CFG,
        live_in: list[frozenset[int]],
        live_out: list[frozenset[int]],
    ) -> None:
        self.cfg = cfg
        self.live_in = live_in
        self.live_out = live_out

    def live_after(self, pc: int) -> frozenset[int]:
        """Registers live immediately after the instruction at *pc*."""
        bid = self.cfg.block_of[pc]
        live = set(self.live_out[bid])
        for later in range(self.cfg.blocks[bid].end - 1, pc, -1):
            inst = self.cfg.instructions[later]
            if inst.dst is not None:
                live.discard(inst.dst)
            live.update(inst.srcs)
        return frozenset(live)


def liveness(cfg: CFG, max_iterations: int | None = None) -> Liveness:
    """Backward may-analysis: which registers may be read before rewrite."""

    def transfer(bid: int, state: frozenset[int]) -> frozenset[int]:
        live = set(state)
        block = cfg.blocks[bid]
        for pc in range(block.end - 1, block.start - 1, -1):
            inst = cfg.instructions[pc]
            if inst.dst is not None:
                live.discard(inst.dst)
            live.update(inst.srcs)
        return frozenset(live)

    live_in, live_out = solve(
        cfg,
        direction="backward",
        boundary=frozenset(),
        init=frozenset(),
        transfer=transfer,
        join=lambda a, b: a | b,
        max_iterations=max_iterations,
    )
    return Liveness(cfg, live_in, live_out)
