"""Host-level static analysis: the simulator analyzing its own source.

The guest-facing packages (`repro.analysis.cfg`/`values`/...) reason about
the programs the simulator *runs*; this subpackage reasons about the
simulator *itself*.  It parses the Python source of the pipeline and core
packages into a normalized effect IR (:mod:`repro.analysis.host.ir`),
computes interprocedural per-stage effect summaries
(:mod:`repro.analysis.host.effects`), and checks the fast engine's inlined
loop against the reference stages under the declared delegation boundary
(:mod:`repro.analysis.host.driftcheck`).  The AST determinism rules that
used to live only in ``tools/simlint.py`` are part of the same framework
(:mod:`repro.analysis.host.rules`); everything is orchestrated by
:mod:`repro.analysis.host.selfcheck` behind the ``repro selfcheck`` CLI
target.
"""

from repro.analysis.host.diagnostics import HostDiagnostic
from repro.analysis.host.driftcheck import run_driftcheck
from repro.analysis.host.effects import EffectModel, SourceTree
from repro.analysis.host.selfcheck import SelfCheckReport, run_selfcheck

__all__ = [
    "EffectModel",
    "HostDiagnostic",
    "SelfCheckReport",
    "SourceTree",
    "run_driftcheck",
    "run_selfcheck",
]
