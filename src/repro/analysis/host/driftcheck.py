"""Clone-consistency check: fast loop vs reference stages.

Every state path a reference stage of ``SMTCore.step`` writes must be
either **replicated** by the fast loop's own writes or **reachable
through a declared delegation point** of
:mod:`repro.pipeline.fast_boundary`; conversely every fast-loop write
must have a reference counterpart (or be declared fast-only), every fast
call into reference code must be declared, the inlined stage sections
must appear in reference order, and the stage docstrings' ``Effects:``
annotations must match the computed summaries.  Each violation becomes a
:class:`~repro.analysis.host.diagnostics.HostDiagnostic` with file:line
provenance.
"""

from __future__ import annotations

import re

from repro.analysis.host.diagnostics import HostDiagnostic
from repro.analysis.host.effects import (
    ANNOTATED_STAGES,
    EffectModel,
    SourceTree,
    StageSummary,
    Summary,
)
from repro.analysis.host.ir import Effect, FunctionIR
from repro.pipeline import fast_boundary as spec

_FAST_MODULE = "repro.pipeline.fast"
_BANNER = re.compile(r"^\s*#\s*-{3,}\s*(?P<name>.+?)\s*$")


def _provenance(model: EffectModel, effect: Effect) -> tuple[str, int]:
    """Map an effect's ``via`` qualname to its defining file."""
    qual = effect.via
    while qual:
        fn = _find_function(model, qual)
        if fn is not None:
            return model.modules[fn.module].file, effect.lineno
        qual = qual.rsplit(".", 1)[0] if "." in qual else ""
    return "<unknown>", effect.lineno


def _find_function(model: EffectModel, qual: str) -> FunctionIR | None:
    if "." in qual:
        cls_name, method = qual.split(".", 1)
        cls = model.classes.get(cls_name)
        if cls is not None:
            return cls.methods.get(method)
        return None
    return model.functions.get(qual)


def _delegated_coverage(
    model: EffectModel, diags: list[HostDiagnostic]
) -> Summary:
    """Union summary of every declared delegation target (resolving each
    against the reference family; unresolvable targets are stale)."""
    fast_file = model.modules[_FAST_MODULE].file
    covered = Summary()
    for point in spec.DELEGATIONS:
        target = point.target
        if target.startswith("self."):
            fn = model.core_methods.get(target[5:])
        elif "." in target:
            cls_name, method = target.split(".", 1)
            fn = (
                model.family_methods(cls_name).get(method)
                if cls_name in model.classes
                else None
            )
        else:
            fn = None
        if fn is None:
            diags.append(
                HostDiagnostic(
                    "DRIFT005",
                    fast_file,
                    1,
                    f"declared delegation {target!r} does not resolve to a "
                    "reference method",
                    subject=f"delegation:{target}",
                )
            )
            continue
        if point.covers:
            model.expand(fn, cls_name="SMTCore", out=covered)
    return covered


def _check_write_coverage(
    model: EffectModel,
    ref: Summary,
    fast: Summary,
    covered: Summary,
    diags: list[HostDiagnostic],
) -> None:
    fast_file = model.modules[_FAST_MODULE].file
    for path, effect in sorted(ref.writes.items()):
        if path in fast.writes or path in covered.writes:
            continue
        file, line = _provenance(model, effect)
        diags.append(
            HostDiagnostic(
                "DRIFT001",
                file,
                line,
                f"reference writes {path!r} (via {effect.via}) but the "
                "fast loop neither replicates it nor reaches it through "
                "a declared delegation",
                subject=f"path:{path}",
            )
        )
    for path, effect in sorted(fast.writes.items()):
        if path in ref.writes or path in spec.FAST_ONLY_PATHS:
            continue
        file, line = _provenance(model, effect)
        diags.append(
            HostDiagnostic(
                "DRIFT002",
                file,
                line,
                f"fast loop writes {path!r} (via {effect.via}) but no "
                "reference stage writes it and it is not declared "
                "fast-only in fast_boundary.FAST_ONLY_PATHS",
                subject=f"path:{path}",
            )
        )
    # Replication obligations: hot-path writes the fast loop must make
    # itself; delegation coverage deliberately does not satisfy these.
    for path in sorted(spec.REPLICATED_PATHS):
        if path not in ref.writes:
            diags.append(
                HostDiagnostic(
                    "DRIFT005",
                    fast_file,
                    1,
                    f"declared replicated path {path!r} is not written by "
                    "any reference stage (stale boundary spec)",
                    subject=f"stale-replicated:{path}",
                )
            )
        elif path not in fast.writes:
            effect = ref.writes[path]
            file, line = _provenance(model, effect)
            diags.append(
                HostDiagnostic(
                    "DRIFT001",
                    file,
                    line,
                    f"fast loop must replicate the hot-path write to "
                    f"{path!r} (see fast_boundary.REPLICATED_PATHS) but "
                    "no longer does",
                    subject=f"path:{path}",
                )
            )
    # Opaque component calls, matched call-for-call under the
    # replication map.
    roots = set(spec.COMPONENT_CALL_ROOTS)
    ref_calls = {
        c: s for c, s in ref.opaque_calls.items() if c.split(".")[0] in roots
    }
    fast_calls = {
        c
        for c in (*fast.opaque_calls, *covered.opaque_calls)
        if c.split(".")[0] in roots
    }
    replicated_fast = {
        callee for targets in spec.CALL_REPLICATIONS.values() for callee in targets
    }
    for callee, site in sorted(ref_calls.items()):
        if callee in fast_calls:
            continue
        replacements = spec.CALL_REPLICATIONS.get(callee, ())
        if any(r in fast_calls for r in replacements):
            continue
        diags.append(
            HostDiagnostic(
                "DRIFT001",
                model.modules[_FAST_MODULE].file,
                site.lineno,
                f"reference calls component {callee!r} (via {site.via}) "
                "with no fast-loop counterpart or declared replication",
                subject=f"call:{callee}",
            )
        )
    for callee in sorted(
        {c for c in fast.opaque_calls if c.split(".")[0] in roots}
        - set(ref_calls)
        - replicated_fast
    ):
        site = fast.opaque_calls[callee]
        diags.append(
            HostDiagnostic(
                "DRIFT002",
                fast_file,
                site.lineno,
                f"fast loop calls component {callee!r} with no reference "
                "counterpart or declared replication",
                subject=f"call:{callee}",
            )
        )


def _check_delegations(
    model: EffectModel, fast: Summary, diags: list[HostDiagnostic]
) -> None:
    fast_file = model.modules[_FAST_MODULE].file
    declared = {point.target for point in spec.DELEGATIONS}
    for target, site in sorted(fast.delegations.items()):
        if target in declared:
            continue
        diags.append(
            HostDiagnostic(
                "DRIFT003",
                fast_file,
                site.lineno,
                f"fast code calls reference method {target!r} (via "
                f"{site.via}) outside the declared delegation boundary",
                subject=f"delegation:{target}",
            )
        )
    for target in sorted(declared - set(fast.delegations)):
        diags.append(
            HostDiagnostic(
                "DRIFT005",
                fast_file,
                1,
                f"declared delegation {target!r} is never called from "
                "fast code (stale boundary spec)",
                subject=f"stale-delegation:{target}",
            )
        )


def _check_fast_only(
    model: EffectModel, fast: Summary, diags: list[HostDiagnostic]
) -> None:
    fast_file = model.modules[_FAST_MODULE].file
    for path in sorted(set(spec.FAST_ONLY_PATHS) - set(fast.writes)):
        diags.append(
            HostDiagnostic(
                "DRIFT005",
                fast_file,
                1,
                f"declared fast-only path {path!r} is never written by "
                "the fast engine (stale boundary spec)",
                subject=f"stale-fast-only:{path}",
            )
        )


def _distinctive_paths(stages: list[StageSummary]) -> dict[str, str]:
    """path -> stage name, for paths written by exactly one of the
    marker-annotated stages."""
    counts: dict[str, list[str]] = {}
    for stage in stages:
        if stage.name not in spec.STAGE_SECTION_MARKERS:
            continue
        for path in stage.summary.writes:
            counts.setdefault(path, []).append(stage.name)
    return {
        path: owners[0] for path, owners in counts.items() if len(owners) == 1
    }


def _check_stage_order(
    model: EffectModel,
    stages: list[StageSummary],
    diags: list[HostDiagnostic],
) -> None:
    """The inlined sections must appear in reference stage order, and
    each stage's distinctive writes must land inside its own section."""
    fast_file, source = model.tree.load(_FAST_MODULE)
    loop_fn = model.fast_loop_function()
    lines = source.splitlines()
    banner_at: dict[str, int] = {}
    for number, line in enumerate(
        lines[loop_fn.lineno - 1 : loop_fn.end_lineno], loop_fn.lineno
    ):
        match = _BANNER.match(line)
        if match:
            banner_at.setdefault(match.group("name"), number)

    marked = [
        (name, marker)
        for name, marker in spec.STAGE_SECTION_MARKERS.items()
    ]
    positions: list[tuple[str, int]] = []
    for name, marker in marked:
        lineno = banner_at.get(marker)
        if lineno is None:
            diags.append(
                HostDiagnostic(
                    "DRIFT005",
                    fast_file,
                    loop_fn.lineno,
                    f"stage section banner {marker!r} (for {name}) not "
                    "found in the fast loop",
                    subject=f"marker:{name}",
                )
            )
        else:
            positions.append((name, lineno))
    ordered = sorted(
        positions,
        key=lambda item: list(spec.STAGE_SECTION_MARKERS).index(item[0]),
    )
    by_line = sorted(positions, key=lambda item: item[1])
    if ordered != by_line:
        diags.append(
            HostDiagnostic(
                "DRIFT004",
                fast_file,
                by_line[0][1] if by_line else loop_fn.lineno,
                "fast-loop stage sections are not in reference stage "
                f"order: found {[n for n, _ in by_line]}, expected "
                f"{[n for n, _ in ordered]}",
                subject="stage-order",
            )
        )
        return

    # Span check: distinctive writes inside any marked span must sit in
    # the right stage's span.  Writes outside the spans (prologue,
    # ``finally`` flush, epilogue) are unconstrained.
    if not positions:
        return
    spans: list[tuple[str, int, int]] = []
    for index, (name, start) in enumerate(by_line):
        end = (
            by_line[index + 1][1]
            if index + 1 < len(by_line)
            else _loop_body_end(lines, loop_fn.lineno, loop_fn.end_lineno)
        )
        spans.append((name, start, end))
    distinctive = _distinctive_paths(stages)
    loop_qual = loop_fn.qualname
    for effect in loop_fn.writes:
        if effect.via != loop_qual:
            continue  # closures run outside the marked straight-line body
        if effect.path.startswith("stats."):
            # Localized stat counters flush at observer boundaries and in
            # the ``finally`` block, deliberately outside stage order;
            # their coverage is checked by DRIFT001/DRIFT002 instead.
            continue
        owner = distinctive.get(effect.path)
        if owner is None or effect.path in spec.FAST_ONLY_PATHS:
            continue
        for name, start, end in spans:
            if start <= effect.lineno < end:
                if name != owner:
                    diags.append(
                        HostDiagnostic(
                            "DRIFT004",
                            fast_file,
                            effect.lineno,
                            f"fast loop writes {effect.path!r} in the "
                            f"{name!r} section, but that path belongs to "
                            f"the {owner!r} stage",
                            subject=f"order:{effect.path}",
                        )
                    )
                break


def _loop_body_end(lines: list[str], start: int, end: int) -> int:
    """Line of the fast loop's ``finally:`` flush (the marked sections
    end there); falls back to the function end."""
    for number in range(start, min(end, len(lines)) + 1):
        if lines[number - 1].strip().startswith("finally:"):
            return number
    return end


_EFFECTS_SECTION = re.compile(
    r"Effects:\s*\n\s*writes:\s*(?P<roots>[^\n]*(?:\n\s+[^\n:]+)*)",
)


def parse_effects_annotation(docstring: str | None) -> set[str] | None:
    """Extract the declared write-root set from a stage docstring's
    ``Effects:`` section, or None when the section is absent."""
    if not docstring:
        return None
    match = _EFFECTS_SECTION.search(docstring)
    if not match:
        return None
    text = " ".join(match.group("roots").split())
    return {part.strip() for part in text.split(",") if part.strip()}


def _check_docstrings(
    model: EffectModel,
    stages: list[StageSummary],
    diags: list[HostDiagnostic],
) -> None:
    by_name = {stage.name: stage for stage in stages}
    for name in ANNOTATED_STAGES:
        stage = by_name.get(name)
        if stage is None:
            continue
        file = model.modules[stage.function.module].file
        declared = parse_effects_annotation(stage.function.docstring)
        computed = {path.split(".")[0] for path in stage.summary.writes}
        if declared is None:
            diags.append(
                HostDiagnostic(
                    "DRIFT006",
                    file,
                    stage.function.lineno,
                    f"stage {name} has no 'Effects:' docstring annotation "
                    f"(computed write roots: {', '.join(sorted(computed))})",
                    subject=f"annotation:{name}",
                )
            )
            continue
        if declared != computed:
            missing = sorted(computed - declared)
            extra = sorted(declared - computed)
            parts = []
            if missing:
                parts.append(f"missing {missing}")
            if extra:
                parts.append(f"stale {extra}")
            diags.append(
                HostDiagnostic(
                    "DRIFT006",
                    file,
                    stage.function.lineno,
                    f"stage {name} 'Effects:' annotation out of date: "
                    + "; ".join(parts),
                    subject=f"annotation:{name}",
                )
            )


def run_driftcheck(tree: SourceTree) -> list[HostDiagnostic]:
    """Run every drift rule over a source tree; returns the findings."""
    model = EffectModel(tree)
    diags: list[HostDiagnostic] = []
    ref = model.reference_summary()
    fast = model.fast_summary()
    covered = _delegated_coverage(model, diags)
    _check_write_coverage(model, ref, fast, covered, diags)
    _check_delegations(model, fast, diags)
    _check_fast_only(model, fast, diags)
    stages = model.reference_stages()
    _check_stage_order(model, stages, diags)
    _check_docstrings(model, stages, diags)
    return diags
