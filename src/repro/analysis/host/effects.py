"""Interprocedural per-stage effect summaries over the simulator source.

:class:`EffectModel` parses the pipeline + core modules (through a
:class:`SourceTree`, so tests can substitute perturbed copies of any
module without touching the working tree) and answers two questions:

* what state paths does each **reference stage** of ``SMTCore.step``
  write, reading through the ``core/`` helpers it calls
  (``rst.update_dest`` -> ``rst._bits``/``rst._taint``, the squash
  machinery, the regmerge/sync FSMs, ...)?
* what state paths does the **fast loop** (``FastSMTCore._run_fast``)
  write directly — through its hoisted aliases, its closures, and its
  ``finally`` flush — and which reference methods does it *call* instead
  of replicating?

Calls into components whose source is not part of the analyzed set (the
memory hierarchy, branch predictors, functional oracles) stay **opaque
calls**; the drift checker matches those call-for-call between the two
engines under the boundary spec's replication map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.analysis.host.ir import (
    CallSite,
    Effect,
    FunctionIR,
    ModuleIR,
    parse_module,
)

#: The module set the host analysis reasons about.  Everything else the
#: simulator imports (memory hierarchy, branch predictors, functional
#: oracles, observability) is treated as an opaque component boundary.
HOST_MODULES: tuple[str, ...] = (
    "repro.pipeline.smt",
    "repro.pipeline.fast",
    "repro.pipeline.fetch_stage",
    "repro.pipeline.rename_stage",
    "repro.pipeline.issue_stage",
    "repro.pipeline.commit_stage",
    "repro.pipeline.lsq",
    "repro.pipeline.rat",
    "repro.pipeline.regfile",
    "repro.pipeline.squash",
    "repro.core.rst",
    "repro.core.lvip",
    "repro.core.sync",
    "repro.core.regmerge",
    "repro.core.fhb",
    "repro.core.splitter",
)

#: The reference engine's cycle, as stage names in ``SMTCore.step`` order.
STAGE_ORDER: tuple[str, ...] = (
    "hierarchy.tick",
    "regmerge.new_cycle",
    "commit_stage",
    "writeback_stage",
    "lsq.process_loads",
    "issue_stage",
    "rename_stage",
    "fetch_stage",
)

#: The six stage bodies that carry docstring-level effect annotations.
ANNOTATED_STAGES: tuple[str, ...] = (
    "commit_stage",
    "writeback_stage",
    "lsq.process_loads",
    "issue_stage",
    "rename_stage",
    "fetch_stage",
)

_MAX_DEPTH = 10


class SourceTree:
    """Loads module sources from a ``src/`` root, with per-module string
    overrides so checks can run against perturbed copies (the mutation
    test suite) or unsaved editor buffers."""

    def __init__(
        self, root: str | Path, overrides: Mapping[str, str] | None = None
    ) -> None:
        self.root = Path(root)
        self.overrides = dict(overrides or {})

    def file_of(self, module: str) -> Path:
        return self.root / (module.replace(".", "/") + ".py")

    def load(self, module: str) -> tuple[str, str]:
        """Return ``(file, source)`` for a module."""
        file = self.file_of(module)
        if module in self.overrides:
            return str(file), self.overrides[module]
        return str(file), file.read_text()


@dataclass
class Summary:
    """Union effect summary: path -> first Effect, callee -> first site."""

    writes: dict[str, Effect] = field(default_factory=dict)
    reads: dict[str, Effect] = field(default_factory=dict)
    #: Calls left unexpanded: components outside the analyzed module set.
    opaque_calls: dict[str, CallSite] = field(default_factory=dict)
    #: Calls from fast code into reference-family methods (candidate
    #: delegation points); empty for reference-side summaries.
    delegations: dict[str, CallSite] = field(default_factory=dict)

    def add_write(self, path: str, effect: Effect) -> None:
        self.writes.setdefault(path, effect)

    def add_read(self, path: str, effect: Effect) -> None:
        self.reads.setdefault(path, effect)


@dataclass
class StageSummary:
    """One reference stage: its position in the cycle and its effects."""

    name: str
    index: int
    summary: Summary
    function: FunctionIR


def _apply_prefix(path: str, prefix: str) -> str:
    if path.startswith("^"):
        return path[1:]
    return prefix + path if prefix else path


class EffectModel:
    """Parsed IR for the analyzed module set + interprocedural expansion."""

    def __init__(self, tree: SourceTree) -> None:
        self.tree = tree
        self.modules: dict[str, ModuleIR] = {}
        for module in HOST_MODULES:
            file, source = tree.load(module)
            self.modules[module] = parse_module(module, file, source)
        #: Global class index (class name -> ClassIR); names are unique
        #: across the analyzed set.
        self.classes = {
            name: cls
            for mod in self.modules.values()
            for name, cls in mod.classes.items()
        }
        #: Module-level free functions by bare name (the squash machinery).
        self.functions = {
            name: fn
            for mod in self.modules.values()
            for name, fn in mod.functions.items()
        }
        self.core_methods = self.family_methods("SMTCore")
        self.fast_own_methods = self.classes["FastSMTCore"].methods
        self.fast_own_qualnames = {
            fn.qualname for fn in self.fast_own_methods.values()
        }
        self.core_family = set(self._family_order("FastSMTCore"))
        #: Component attribute -> class, merged across the core family's
        #: ``__init__`` methods (``rst`` -> ``RegisterSharingTable``, ...).
        self.core_attr_types: dict[str, str] = {}
        for cls_name in self._family_order("FastSMTCore"):
            self.core_attr_types.update(self.classes[cls_name].attr_types)

    # ------------------------------------------------------------ indexing

    def _family_order(self, cls_name: str) -> list[str]:
        """The class and its analyzable bases, most-derived first."""
        order: list[str] = []
        stack = [cls_name]
        while stack:
            name = stack.pop(0)
            if name in self.classes and name not in order:
                order.append(name)
                stack.extend(self.classes[name].bases)
        return order

    def family_methods(self, cls_name: str) -> dict[str, FunctionIR]:
        """Method table with derived classes overriding their bases."""
        methods: dict[str, FunctionIR] = {}
        for name in self._family_order(cls_name):
            for mname, fn in self.classes[name].methods.items():
                methods.setdefault(mname, fn)
        return methods

    def file_of_function(self, fn: FunctionIR) -> str:
        return self.modules[fn.module].file

    def _resolve_component(self, receiver: str, attrs: dict[str, str]) -> str | None:
        """Walk a dotted receiver path through component attr types to its
        class name, or None when any hop leaves the analyzed set."""
        current = attrs
        cls_name: str | None = None
        for part in receiver.split("."):
            cls_name = current.get(part)
            if cls_name is None or cls_name not in self.classes:
                return None
            current = self.classes[cls_name].attr_types
        return cls_name

    # ----------------------------------------------------------- expansion

    def expand(
        self,
        fn: FunctionIR,
        *,
        cls_name: str | None,
        prefix: str = "",
        fast_side: bool = False,
        out: Summary | None = None,
        _stack: frozenset[str] = frozenset(),
        _depth: int = 0,
    ) -> Summary:
        """Interprocedural effect summary of *fn*.

        Reference side (``fast_side=False``): every resolvable call is
        inlined.  Fast side: calls resolving to ``FastSMTCore``'s own
        methods are inlined, but calls landing in the reference family are
        recorded as *delegations* — the drift checker decides whether each
        is declared in the boundary spec.
        """
        summary = out if out is not None else Summary()
        if _depth > _MAX_DEPTH or fn.qualname in _stack:
            return summary
        stack = _stack | {fn.qualname}
        for effect in fn.writes:
            summary.add_write(_apply_prefix(effect.path, prefix), effect)
        for effect in fn.reads:
            summary.add_read(_apply_prefix(effect.path, prefix), effect)
        for call in fn.calls:
            self._expand_call(
                call, cls_name, prefix, fast_side, summary, stack, _depth
            )
        return summary

    def _expand_call(
        self,
        call: CallSite,
        cls_name: str | None,
        prefix: str,
        fast_side: bool,
        summary: Summary,
        stack: frozenset[str],
        depth: int,
    ) -> None:
        callee = call.callee
        if callee.startswith("super."):
            summary.delegations.setdefault(f"self.{callee[6:]}", call)
            return
        if callee.startswith("self."):
            method = callee[5:]
            if fast_side:
                fn = self.fast_own_methods.get(method)
                if fn is not None and fn.qualname not in stack:
                    self.expand(
                        fn,
                        cls_name=cls_name,
                        prefix=prefix,
                        fast_side=fast_side,
                        out=summary,
                        _stack=stack,
                        _depth=depth + 1,
                    )
                elif method in self.core_methods:
                    summary.delegations.setdefault(callee, call)
                else:
                    summary.opaque_calls.setdefault(
                        _apply_prefix(callee, prefix), call
                    )
                return
            table = (
                self.family_methods(cls_name)
                if cls_name is not None and cls_name in self.classes
                else self.core_methods
            )
            fn = table.get(method)
            if fn is not None and fn.qualname not in stack:
                self.expand(
                    fn,
                    cls_name=cls_name,
                    prefix=prefix,
                    fast_side=fast_side,
                    out=summary,
                    _stack=stack,
                    _depth=depth + 1,
                )
            else:
                summary.opaque_calls.setdefault(
                    _apply_prefix(callee, prefix), call
                )
            return
        if "." in callee:
            receiver, method = callee.rsplit(".", 1)
            if receiver in self.classes:
                # Class-qualified call (``SMTCore.run(self)``): on the
                # fast side a reference-family target is a delegation.
                fn = self.family_methods(receiver).get(method)
                if (
                    fast_side
                    and receiver in self.core_family
                    and (
                        fn is None
                        or fn.qualname not in self.fast_own_qualnames
                    )
                ):
                    summary.delegations.setdefault(callee, call)
                elif fn is not None and fn.qualname not in stack:
                    self.expand(
                        fn,
                        cls_name=receiver,
                        prefix="",
                        fast_side=fast_side,
                        out=summary,
                        _stack=stack,
                        _depth=depth + 1,
                    )
                return
            receiver_abs = _apply_prefix(receiver, prefix)
            attrs = (
                self.classes[cls_name].attr_types
                if cls_name is not None
                and cls_name in self.classes
                and not receiver.startswith("^")
                else self.core_attr_types
            )
            if cls_name in ("SMTCore", "FastSMTCore") or receiver.startswith("^"):
                attrs = self.core_attr_types
            comp_cls = self._resolve_component(receiver_abs, attrs)
            if comp_cls is not None:
                fn = self.classes[comp_cls].methods.get(method)
                if fn is not None and fn.qualname not in stack:
                    self.expand(
                        fn,
                        cls_name=comp_cls,
                        prefix=receiver_abs + ".",
                        fast_side=False,
                        out=summary,
                        _stack=stack,
                        _depth=depth + 1,
                    )
                    return
            summary.opaque_calls.setdefault(
                f"{receiver_abs}.{method}", call
            )
            return
        # Bare name: a hoisted bound method resolves through the alias
        # environment before reaching here, so this is a module-level
        # function (the squash machinery) or a builtin.
        fn = self.functions.get(callee)
        if fn is not None and fn.qualname not in stack:
            self.expand(
                fn,
                cls_name=None,
                prefix="",
                fast_side=False,
                out=summary,
                _stack=stack,
                _depth=depth + 1,
            )

    # ------------------------------------------------------------- queries

    def stage_function(self, stage: str) -> FunctionIR:
        """The FunctionIR behind a stage name from :data:`STAGE_ORDER`."""
        if "." in stage:
            receiver, method = stage.rsplit(".", 1)
            comp_cls = self._resolve_component(receiver, self.core_attr_types)
            if comp_cls is None:
                raise KeyError(stage)
            return self.classes[comp_cls].methods[method]
        return self.core_methods[stage]

    def reference_stages(self) -> list[StageSummary]:
        """Per-stage summaries, in ``SMTCore.step`` order; stages whose
        source lives outside the analyzed set are skipped."""
        stages: list[StageSummary] = []
        for index, name in enumerate(STAGE_ORDER):
            try:
                fn = self.stage_function(name)
            except KeyError:
                continue
            prefix = name.rsplit(".", 1)[0] + "." if "." in name else ""
            cls_ctx = (
                self._resolve_component(
                    name.rsplit(".", 1)[0], self.core_attr_types
                )
                if "." in name
                else "SMTCore"
            )
            summary = self.expand(fn, cls_name=cls_ctx, prefix=prefix)
            stages.append(StageSummary(name, index, summary, fn))
        return stages

    def reference_summary(self) -> Summary:
        """Everything the reference engine's ``run`` loop may write."""
        out = Summary()
        self.expand(self.core_methods["run"], cls_name="SMTCore", out=out)
        return out

    def fast_loop_function(self) -> FunctionIR:
        return self.fast_own_methods["_run_fast"]

    def fast_summary(self) -> Summary:
        """The fast engine's effects: ``run`` + ``_run_fast`` + fast-own
        helpers, with reference-family calls kept as delegations."""
        out = Summary()
        self.expand(
            self.fast_own_methods["run"],
            cls_name="FastSMTCore",
            fast_side=True,
            out=out,
        )
        return out
