"""The simulator determinism lint (SIM00x), as host-analysis rules.

Historically this lived in ``tools/simlint.py``; the standalone tool is
now a thin shim over this module so the same rules run under ``repro
selfcheck``, share the :class:`HostDiagnostic` shape (and therefore the
baseline/JSON machinery), and are covered by the strict type gate.

The cycle-level model must be bit-reproducible across runs and Python
versions.  That contract is easy to break silently, so the rules flag:

* **SIM001** — wall-clock reads: ``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()``, ``datetime.now()``/``utcnow()``/``today()``.
* **SIM002** — unseeded module-level ``random`` use.  Explicitly seeded
  ``random.Random(seed)`` instances are fine.
* **SIM003** — iteration over syntactically unordered sets unless
  wrapped in ``sorted(...)``.
* **SIM004** — observer emission not guarded by the precomputed
  ``tracing`` flag (idiom: ``if self.obs.tracing: self.obs.emit(...)``).
* **SIM005** — order-dependent removal: ``dict.popitem()`` and
  no-argument ``.pop()``.  Deterministic stack pops carry
  ``# simlint: ignore`` at the call site.
* **SIM006** — mutable class-level defaults (``class X: cache = {}``)
  in simulation code.  Campaign workers import these modules in every
  worker process; shared mutable class state either silently diverges
  between workers or — under fork start methods — leaks warm state from
  the parent, making results depend on worker scheduling.

Suppression:

* ``# simlint: ignore`` on the offending line suppresses that line.
* ``# simlint: disable=SIM001,SIM005`` anywhere in a file disables the
  listed rules for the whole file (unknown ids raise ``ValueError``, so
  a typo cannot silently disable nothing).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.host.diagnostics import HOST_RULES, HostDiagnostic

#: Path fragments the determinism contract covers (POSIX-style).
SCOPED_DIRS = ("repro/pipeline", "repro/core", "repro/mem")

_WALLCLOCK_TIME = {"time", "monotonic", "perf_counter", "process_time"}
_WALLCLOCK_DT = {"now", "utcnow", "today"}
_RANDOM_MODULE_OK = {"Random", "SystemRandom"}

IGNORE_MARK = "# simlint: ignore"
_DISABLE_PRAGMA = re.compile(r"#\s*simlint:\s*disable=([A-Z0-9, ]+)")

#: Immutable-literal types allowed as class-level defaults.
_MUTABLE_CALLS = {"dict", "list", "set", "defaultdict", "deque", "Counter"}


def file_disabled_rules(source_lines: list[str]) -> set[str]:
    """Rules disabled file-wide by ``# simlint: disable=...`` pragmas.

    Raises ``ValueError`` for unknown rule ids so a typo in a pragma is
    an error rather than a silent no-op.
    """
    disabled: set[str] = set()
    for line in source_lines:
        match = _DISABLE_PRAGMA.search(line)
        if not match:
            continue
        for rule in match.group(1).split(","):
            rule = rule.strip()
            if not rule:
                continue
            if rule not in HOST_RULES or not rule.startswith("SIM"):
                raise ValueError(f"unknown simlint rule in pragma: {rule!r}")
            disabled.add(rule)
    return disabled


def _attr_chain(node: ast.AST) -> list[str]:
    """['self', 'obs', 'emit'] for ``self.obs.emit`` (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _mentions_tracing(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "tracing":
            return True
        if isinstance(sub, ast.Name) and sub.id == "tracing":
            return True
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.disabled = file_disabled_rules(source_lines)
        self.findings: list[HostDiagnostic] = []
        # Depth of enclosing `if ...tracing...` guards.
        self._tracing_guard = 0
        self._class_depth = 0

    def _emit(
        self, node: ast.AST, rule: str, message: str, subject: str
    ) -> None:
        if rule in self.disabled:
            return
        line = getattr(node, "lineno", 0)
        if 0 < line <= len(self.lines) and IGNORE_MARK in self.lines[line - 1]:
            return
        self.findings.append(
            HostDiagnostic(rule, self.path, line, message, subject=subject)
        )

    # ------------------------------------------------------------- SIM006
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1
        for stmt in node.body:
            value: ast.expr | None = None
            target_name: str | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    target_name = target.id
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    target_name = stmt.target.id
                    value = stmt.value
            if (
                value is not None
                and target_name is not None
                and not target_name.isupper()  # frozen module constants
                and _is_mutable_default(value)
            ):
                self._emit(
                    stmt,
                    "SIM006",
                    f"mutable class-level default {node.name}.{target_name} "
                    "is shared module state in every worker process; build "
                    "it in __init__ or make it immutable",
                    subject=f"{node.name}.{target_name}",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------- SIM004
    def visit_If(self, node: ast.If) -> None:
        guarded = _mentions_tracing(node.test)
        if guarded:
            self._tracing_guard += 1
        for child in node.body:
            self.visit(child)
        if guarded:
            self._tracing_guard -= 1
        for child in node.orelse:
            self.visit(child)

    # ------------------------------------------------------------- SIM003
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._emit(
                node.iter,
                "SIM003",
                "iteration over an unordered set; wrap in sorted(...)",
                subject="for-set",
            )
        self.generic_visit(node)

    def _check_comprehensions(self, node: ast.AST) -> None:
        generators = getattr(node, "generators", [])
        for comp in generators:
            if _is_set_expr(comp.iter):
                self._emit(
                    comp.iter,
                    "SIM003",
                    "comprehension over an unordered set; wrap in "
                    "sorted(...)",
                    subject="comp-set",
                )
        self.generic_visit(node)

    visit_ListComp = _check_comprehensions
    visit_SetComp = _check_comprehensions
    visit_DictComp = _check_comprehensions
    visit_GeneratorExp = _check_comprehensions

    # ------------------------------------------------ SIM001/002/004 calls
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) >= 2:
            head, tail = chain[0], chain[-1]
            if head == "time" and tail in _WALLCLOCK_TIME:
                self._emit(
                    node,
                    "SIM001",
                    f"wall-clock read time.{tail}() breaks determinism",
                    subject=f"time.{tail}",
                )
            elif head == "datetime" and tail in _WALLCLOCK_DT:
                self._emit(
                    node,
                    "SIM001",
                    f"wall-clock read datetime...{tail}() breaks "
                    "determinism",
                    subject=f"datetime.{tail}",
                )
            elif head == "random" and tail not in _RANDOM_MODULE_OK:
                self._emit(
                    node,
                    "SIM002",
                    f"module-level random.{tail}() is unseeded; use a "
                    "random.Random(seed) instance",
                    subject=f"random.{tail}",
                )
            if tail == "emit" and self._tracing_guard == 0:
                self._emit(
                    node,
                    "SIM004",
                    f"{'.'.join(chain)}(...) is not guarded by the "
                    "precomputed tracing flag (idiom: "
                    "`if self.obs.tracing:`)",
                    subject=".".join(chain),
                )
        # SIM005: order-dependent removals.  popitem() is always suspect;
        # a no-argument .pop() is set.pop() unless the receiver is
        # provably a sequence — which the call site asserts with an
        # ignore mark, keeping the burden of proof on the code.
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method == "popitem":
                self._emit(
                    node,
                    "SIM005",
                    "dict.popitem() removal order depends on insertion "
                    "history; pop an explicit key instead",
                    subject="popitem",
                )
            elif method == "pop" and not node.args and not node.keywords:
                self._emit(
                    node,
                    "SIM005",
                    "no-argument .pop() removes an arbitrary element if "
                    "the receiver is a set; pop an explicit index/key, or "
                    "mark a deterministic stack pop with the ignore "
                    "comment",
                    subject="bare-pop",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------ imports
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = [
                alias.name
                for alias in node.names
                if alias.name not in _RANDOM_MODULE_OK
            ]
            if bad:
                self._emit(
                    node,
                    "SIM002",
                    "importing unseeded random function(s) "
                    f"{', '.join(bad)}; use a random.Random(seed) "
                    "instance",
                    subject=f"import:{','.join(bad)}",
                )
        self.generic_visit(node)


def in_scope(path: Path) -> bool:
    """Is *path* inside the directories the contract covers?"""
    posix = path.resolve().as_posix()
    return any(fragment in posix for fragment in SCOPED_DIRS)


def lint_source(path: str, source: str) -> list[HostDiagnostic]:
    """Run the SIM rules over one source string."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    linter.findings.sort(key=lambda d: d.line)
    return linter.findings


def lint_file(path: Path) -> list[HostDiagnostic]:
    """Lint one Python source file; returns its findings."""
    return lint_source(str(path), path.read_text(encoding="utf-8"))


def lint_paths(
    paths: list[Path], all_rules: bool = False
) -> list[HostDiagnostic]:
    """Lint files/trees; without *all_rules*, only scoped files are
    checked."""
    findings: list[HostDiagnostic] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            if not all_rules and not in_scope(file):
                continue
            findings.extend(lint_file(file))
    return findings
