"""Structured findings shared by every host-level checker.

The guest linter (`repro.analysis.lint`) anchors its diagnostics to guest
PCs; host diagnostics anchor to ``file:line`` in the simulator's own
source.  Every finding carries a *fingerprint* — a stable identity built
from the rule id and the finding's subject (a state path, a callee, a
source construct) but **not** its line number, so a pinned baseline
survives unrelated edits that merely move code around.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

#: Rule catalogue: id -> (severity, short description).  DRIFT rules come
#: from the clone-consistency checker; SIM rules are the simulator
#: determinism lint (historically ``tools/simlint.py``).
HOST_RULES: dict[str, tuple[str, str]] = {
    "DRIFT001": (
        "error",
        "reference stage writes a state path the fast loop neither "
        "replicates nor delegates",
    ),
    "DRIFT002": (
        "error",
        "fast loop writes a state path no reference stage writes",
    ),
    "DRIFT003": (
        "error",
        "fast loop calls a reference method outside the declared "
        "delegation boundary",
    ),
    "DRIFT004": (
        "error",
        "fast loop replicates stage effects out of reference stage order",
    ),
    "DRIFT005": (
        "warning",
        "boundary spec is stale: a declared entry no longer matches the "
        "source",
    ),
    "DRIFT006": (
        "warning",
        "stage docstring effect annotation disagrees with the computed "
        "effect summary",
    ),
    "SIM001": ("error", "wall-clock time source in simulation code"),
    "SIM002": ("error", "unseeded global random in simulation code"),
    "SIM003": ("error", "iteration over a set (nondeterministic order)"),
    "SIM004": ("error", "observer emit not guarded by a tracing check"),
    "SIM005": ("warning", "popitem/pop on an unordered container"),
    "SIM006": (
        "error",
        "mutable class-level default shared across worker processes",
    ),
}


@dataclass(frozen=True)
class HostDiagnostic:
    """One finding of a host-level checker, with file:line provenance."""

    rule: str
    file: str
    line: int
    message: str
    #: Stable identity of the finding's subject (state path, callee name,
    #: source construct) independent of its current line number.
    subject: str
    suppressed: bool = field(default=False)

    @property
    def severity(self) -> str:
        return HOST_RULES.get(self.rule, ("error", ""))[0]

    @property
    def fingerprint(self) -> str:
        """Baseline identity: rule + file + subject, line-independent."""
        raw = f"{self.rule}|{self.file}|{self.subject}"
        return hashlib.sha1(raw.encode()).hexdigest()[:16]

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.file}:{self.line}: {self.rule} {self.message}{tag}"

    def to_json(self) -> dict[str, Any]:
        """The machine-readable shape shared by ``selfcheck --json`` and
        ``analyze --json``."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "subject": self.subject,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
        }
