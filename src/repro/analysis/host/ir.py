"""AST -> normalized effect IR for the simulator's own source.

Every function/method is summarized as the set of **state paths** it reads
and writes plus the calls it makes.  A state path is a dotted attribute
chain rooted at the simulated core object: ``self.stats.cycles`` inside a
method normalizes to ``stats.cycles``; a free function whose first
parameter is ``core`` (the squash machinery) normalizes ``core.rst._bits``
to ``rst._bits``.

The extractor understands the fast loop's *hoisting idiom*: a local
assignment ``rst_bits = rst._bits`` (where ``rst`` itself aliases
``self.rst``) makes ``rst_bits`` an alias for the path ``rst._bits``, so a
later ``rst_bits[r] = m`` or ``free_pregs.append(p)`` is attributed to the
underlying state path, and ``lvip_predict(...)`` (a hoisted bound method)
is attributed as a call to ``lvip.predict_identical``.  Writes through a
subscript are attributed to the container path; calls to known mutating
methods (``append``/``popleft``/``update``/...) count as writes.  Writes
whose receiver cannot be resolved to a state path (per-instruction
``DynInst`` fields, local scratch objects) are intentionally ignored — the
same unresolved receivers appear on both engines.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: Parameter names treated as the core root (path prefix dropped).
ROOT_PARAMS = ("self", "core")

#: Method names that mutate their receiver in place.
MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "add",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "rotate",
        "fill",
    }
)


@dataclass(frozen=True)
class Effect:
    """One read or write of a state path, with source provenance."""

    path: str
    lineno: int
    via: str  # qualname of the (possibly nested) function it occurs in

    @property
    def root(self) -> str:
        return self.path.lstrip("^").split(".", 1)[0]


@dataclass(frozen=True)
class CallSite:
    """A call whose target resolves to a state path method, a method on
    the core root (``self.m``), or a module-level function name."""

    callee: str
    lineno: int
    via: str


@dataclass
class FunctionIR:
    """Effect summary of one function or method (closures folded in)."""

    module: str
    qualname: str
    name: str
    lineno: int
    end_lineno: int
    docstring: str | None
    writes: tuple[Effect, ...]
    reads: tuple[Effect, ...]
    calls: tuple[CallSite, ...]


@dataclass
class ClassIR:
    """One class: its methods plus the component types its ``__init__``
    installs (``self.rst = RegisterSharingTable(...)`` -> ``rst`` is a
    ``RegisterSharingTable``)."""

    name: str
    module: str
    bases: tuple[str, ...]
    methods: dict[str, FunctionIR]
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleIR:
    """Parsed effect IR of one module."""

    module: str
    file: str
    functions: dict[str, FunctionIR]
    classes: dict[str, ClassIR]


class _EffectExtractor:
    """Walks one function body, tracking local path aliases in source
    order and accumulating effects (recursing into nested defs with a
    snapshot of the alias environment)."""

    def __init__(self, qualname: str, root_param: str | None) -> None:
        self.qualname = qualname
        self.root_param = root_param
        self.env: dict[str, str] = {}
        self.writes: list[Effect] = []
        self.reads: list[Effect] = []
        self.calls: list[CallSite] = []

    # ---------------------------------------------------------- resolution

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve an expression to a state path, or None."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name) and value.id not in self.env:
                if value.id == self.root_param:
                    return node.attr
                if value.id in ROOT_PARAMS:
                    # A non-first ``core`` parameter (helpers like
                    # ``LoadStoreQueue.process_loads(self, core)``): its
                    # paths are absolute core paths, never re-prefixed by
                    # the caller.  Marked with a leading "^".
                    return f"^{node.attr}"
            base = self.resolve(value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        if isinstance(node, ast.Subscript):
            # A write through (or alias of) a subscript is attributed to
            # the container: ``rat_map[u][dst] = x`` mutates ``rat._map``.
            return self.resolve(node.value)
        return None

    # ----------------------------------------------------------- recording

    def _write(self, path: str, lineno: int) -> None:
        self.writes.append(Effect(path, lineno, self.qualname))

    def _read(self, path: str, lineno: int) -> None:
        self.reads.append(Effect(path, lineno, self.qualname))

    def _record_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt)
            return
        if isinstance(target, ast.Starred):
            self._record_target(target.value)
            return
        if isinstance(target, ast.Name):
            # Rebinding a local; if it aliased a path, the alias dies.
            self.env.pop(target.id, None)
            return
        path = self.resolve(target)
        if path is not None:
            self._write(path, target.lineno)

    def _kill_bound_names(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env.pop(node.id, None)

    # ------------------------------------------------------------- walking

    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            alias = self._try_alias(stmt)
            if not alias:
                for target in stmt.targets:
                    self._record_target(target)
                    self._visit_expr_children(target)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                # ``x += 1`` rebinds the local: if x aliased a path this is
                # a *new* local value, not a state write (hoisted widths
                # like ``num_alu`` are consumed this way).
                self.env.pop(stmt.target.id, None)
                return
            path = self.resolve(stmt.target)
            if path is not None:
                self._write(path, stmt.lineno)
                self._read(path, stmt.lineno)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
            self._record_target(stmt.target)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                path = self.resolve(target)
                if path is not None:
                    self._write(path, stmt.lineno)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = _EffectExtractor(
                f"{self.qualname}.{stmt.name}", self.root_param
            )
            nested.env = dict(self.env)
            nested.run(list(stmt.body))
            self.writes.extend(nested.writes)
            self.reads.extend(nested.reads)
            self.calls.extend(nested.calls)
            return
        if isinstance(stmt, ast.For):
            self._visit_expr(stmt.iter)
            self._kill_bound_names(stmt.target)
            self.run(list(stmt.body))
            self.run(list(stmt.orelse))
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self._visit_expr(stmt.test)
            self.run(list(stmt.body))
            self.run(list(stmt.orelse))
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._visit_expr(item.context_expr)
                if item.optional_vars is not None:
                    self._kill_bound_names(item.optional_vars)
            self.run(list(stmt.body))
            return
        if isinstance(stmt, ast.Try):
            self.run(list(stmt.body))
            for handler in stmt.handlers:
                if handler.name:
                    self.env.pop(handler.name, None)
                self.run(list(handler.body))
            self.run(list(stmt.orelse))
            self.run(list(stmt.finalbody))
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._visit_expr(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value)
            return
        # Raise/Assert/Pass/Break/Continue/Import/Global/...: visit any
        # embedded expressions generically.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._visit_expr(child)

    def _try_alias(self, stmt: ast.Assign) -> bool:
        """``local = <path>`` introduces an alias (and a read), without a
        state write.  Only plain single-name targets qualify."""
        if len(stmt.targets) != 1:
            return False
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return False
        # Only pure attribute chains alias their path: ``di = rob[0]``
        # binds an *element*, and writes through ``di`` are per-entry
        # state, not writes to the container.
        node: ast.expr = stmt.value
        while isinstance(node, ast.Attribute):
            node = node.value
        if not isinstance(node, ast.Name):
            container = self.resolve(stmt.value)
            if container is not None:
                self._read(container, stmt.lineno)
            self.env.pop(target.id, None)
            return container is not None
        path = self.resolve(stmt.value)
        if path is None:
            self.env.pop(target.id, None)
            return False
        self.env[target.id] = path
        self._read(path, stmt.lineno)
        return True

    # ---------------------------------------------------------- expression

    def _visit_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return
        path = self.resolve(node) if isinstance(node, ast.Attribute) else None
        if path is not None:
            self._read(path, node.lineno)
        self._visit_expr_children(node)

    def _visit_expr_children(self, node: ast.expr) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child)
            elif isinstance(child, ast.comprehension):
                self._kill_bound_names(child.target)
                self._visit_expr(child.iter)
                for cond in child.ifs:
                    self._visit_expr(cond)

    def _visit_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Call)
                and isinstance(func.value.func, ast.Name)
                and func.value.func.id == "super"
            ):
                self.calls.append(
                    CallSite(f"super.{func.attr}", node.lineno, self.qualname)
                )
                for arg in node.args:
                    self._visit_expr(arg)
                for kw in node.keywords:
                    self._visit_expr(kw.value)
                return
            recv_path = self.resolve(func.value)
            if recv_path is not None:
                callee = f"{recv_path}.{func.attr}"
                self.calls.append(CallSite(callee, node.lineno, self.qualname))
                self._read(recv_path, node.lineno)
                if func.attr in MUTATORS:
                    self._write(recv_path, node.lineno)
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id == self.root_param
            ):
                self.calls.append(
                    CallSite(f"self.{func.attr}", node.lineno, self.qualname)
                )
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id[:1].isupper()
                and func.value.id not in self.env
            ):
                # Class-qualified call: ``SMTCore.run(self)`` (the
                # observer-fallback idiom) or a classmethod constructor.
                self.calls.append(
                    CallSite(
                        f"{func.value.id}.{func.attr}",
                        node.lineno,
                        self.qualname,
                    )
                )
            else:
                self._visit_expr(func.value)
        elif isinstance(func, ast.Name):
            # A hoisted bound method (``lvip_predict = self.lvip.
            # predict_identical``) calls through a plain name.
            target = self.env.get(func.id, func.id)
            self.calls.append(CallSite(target, node.lineno, self.qualname))
        else:
            self._visit_expr(func)
        for arg in node.args:
            self._visit_expr(arg)
        for kw in node.keywords:
            self._visit_expr(kw.value)


def _root_param_of(fn: ast.FunctionDef) -> str | None:
    args = fn.args.posonlyargs + fn.args.args
    if args and args[0].arg in ROOT_PARAMS:
        return args[0].arg
    return None


def extract_function(fn: ast.FunctionDef, module: str, qualname: str) -> FunctionIR:
    """Summarize one function/method (nested defs folded in)."""
    extractor = _EffectExtractor(qualname, _root_param_of(fn))
    extractor.run(list(fn.body))
    return FunctionIR(
        module=module,
        qualname=qualname,
        name=fn.name,
        lineno=fn.lineno,
        end_lineno=fn.end_lineno or fn.lineno,
        docstring=ast.get_docstring(fn),
        writes=tuple(extractor.writes),
        reads=tuple(extractor.reads),
        calls=tuple(extractor.calls),
    )


def _class_attr_types(cls: ast.ClassDef) -> dict[str, str]:
    """``self.rst = RegisterSharingTable(...)`` (or a classmethod
    constructor ``RegisterSharingTable.for_multi_threaded(...)``) in any
    method maps the attribute to its component class."""
    types: dict[str, str] = {}
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        root = _root_param_of(method)
        if root is None:
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == root
            ):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            cls_name: str | None = None
            if isinstance(func, ast.Name) and func.id[:1].isupper():
                cls_name = func.id
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id[:1].isupper()
            ):
                cls_name = func.value.id  # classmethod constructor
            if cls_name is not None and target.attr not in types:
                types[target.attr] = cls_name
    return types


def parse_module(module: str, file: str, source: str) -> ModuleIR:
    """Parse one module's source into its effect IR."""
    tree = ast.parse(source, filename=file)
    functions: dict[str, FunctionIR] = {}
    classes: dict[str, ClassIR] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions[node.name] = extract_function(node, module, node.name)
        elif isinstance(node, ast.ClassDef):
            methods: dict[str, FunctionIR] = {}
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    methods[item.name] = extract_function(
                        item, module, f"{node.name}.{item.name}"
                    )
            bases = tuple(
                base.id for base in node.bases if isinstance(base, ast.Name)
            )
            classes[node.name] = ClassIR(
                name=node.name,
                module=module,
                bases=bases,
                methods=methods,
                attr_types=_class_attr_types(node),
            )
    return ModuleIR(module=module, file=file, functions=functions, classes=classes)
