"""`repro selfcheck`: the unified host self-analysis gate.

Runs the clone-consistency drift check and the determinism lint over the
simulator's own source and reduces them to one exit-code decision.  A
**baseline** file (JSON list of finding fingerprints) pins findings that
have been reviewed and accepted; only *new* findings fail the gate, so
the check can be adopted incrementally and a regression can never hide
behind an old accepted finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.host.diagnostics import HostDiagnostic
from repro.analysis.host.driftcheck import run_driftcheck
from repro.analysis.host.effects import SourceTree
from repro.analysis.host.rules import lint_paths

#: Schema version shared by ``selfcheck --json`` and ``analyze --json``.
JSON_SCHEMA_VERSION = 1


@dataclass
class SelfCheckReport:
    """All findings of one selfcheck run plus the baseline decision."""

    findings: list[HostDiagnostic]
    baseline: frozenset[str] = field(default_factory=frozenset)

    @property
    def new_findings(self) -> list[HostDiagnostic]:
        return [
            f
            for f in self.findings
            if not f.suppressed and f.fingerprint not in self.baseline
        ]

    @property
    def baselined_findings(self) -> list[HostDiagnostic]:
        return [
            f
            for f in self.findings
            if not f.suppressed and f.fingerprint in self.baseline
        ]

    @property
    def ok(self) -> bool:
        return not self.new_findings

    def to_json(self) -> dict[str, Any]:
        return {
            "tool": "repro-selfcheck",
            "schema_version": JSON_SCHEMA_VERSION,
            "ok": self.ok,
            "findings": [f.to_json() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "new": len(self.new_findings),
                "baselined": len(self.baselined_findings),
                "suppressed": sum(1 for f in self.findings if f.suppressed),
            },
        }

    def format_table(self) -> str:
        lines: list[str] = []
        for finding in self.findings:
            status = (
                "baselined"
                if finding.fingerprint in self.baseline
                else "NEW"
            )
            lines.append(f"[{status}] {finding.format()}")
        summary = self.to_json()["summary"]
        lines.append(
            f"selfcheck: {summary['total']} finding(s), "
            f"{summary['new']} new, {summary['baselined']} baselined"
        )
        return "\n".join(lines)


def load_baseline(path: Path) -> frozenset[str]:
    """Read a pinned-findings baseline (missing file = empty baseline)."""
    if not path.exists():
        return frozenset()
    data = json.loads(path.read_text())
    entries = data["findings"] if isinstance(data, dict) else data
    fingerprints: set[str] = set()
    for entry in entries:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and "fingerprint" in entry:
            fingerprints.add(str(entry["fingerprint"]))
    return frozenset(fingerprints)


def write_baseline(report: SelfCheckReport, path: Path) -> None:
    """Pin the current findings: each entry keeps the human-readable
    context next to the fingerprint that actually matters."""
    payload = {
        "tool": "repro-selfcheck",
        "schema_version": JSON_SCHEMA_VERSION,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "file": f.file,
                "subject": f.subject,
                "message": f.message,
            }
            for f in report.findings
            if not f.suppressed
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_selfcheck(
    root: str | Path = "src",
    *,
    overrides: Mapping[str, str] | None = None,
    baseline: Path | None = None,
) -> SelfCheckReport:
    """Run every host checker over the tree rooted at *root* (the
    ``src/`` directory).  *overrides* substitutes module sources (the
    mutation-test hook); *baseline* pins accepted findings."""
    tree = SourceTree(root, overrides)
    findings = run_driftcheck(tree)
    findings.extend(lint_paths([Path(root) / "repro"]))
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    pinned = load_baseline(baseline) if baseline is not None else frozenset()
    return SelfCheckReport(findings=findings, baseline=pinned)
