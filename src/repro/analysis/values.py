"""Value-level redundancy analysis: intervals, value numbers, widening.

The flat taint lattice in :mod:`repro.analysis.redundancy` answers *"may
this register differ across threads?"* but folds every loop-carried value
to MAYBE, so loop counters — which all threads advance in lockstep —
look thread-divergent and almost every block of a real workload
classifies as control-divergent.  This module supplies the value-level
machinery the oracle needs to do better:

* an **interval domain** carried on every lattice element, so even values
  that may differ across threads keep sound per-thread bounds (an ``ANDI
  mask`` yields ``[0, mask]`` no matter how unknown its input was);
* **value numbers** on uniform elements, so joins can tell "the same
  uniform value arrived on both paths" from "two different ones did";
* **loop-uniformity widening**: at every natural-loop header (loop
  structure from :mod:`repro.analysis.dom`), a register that holds
  uniform-kind values on the entry and back edges is widened to a single
  ``UNIFORM-per-iteration`` cell instead of joining to MAYBE, and a
  register that holds ``a*tid + b`` values with a stable coefficient
  ``a`` is widened to ``a*tid + u`` with ``u`` a symbolic uniform base —
  so a tid-strided induction variable stays affine-in-tid across
  iterations.  Interval bounds are widened to +/-inf where unstable and
  then recovered by a bounded narrowing pass that exploits branch-edge
  refinement (the loop guard ``blt r_i, r_trips`` caps the counter);
* a **memory image model**: the words of a build's data image that are
  identical across execution contexts (base image minus per-instance
  overlays minus statically clobbered store ranges).  A load whose
  address interval falls entirely inside the identical region is
  *must-identical*: whenever the dynamic pipeline merges it (equal
  addresses by the RST merge invariant), every context receives the same
  value, so the LVIP can never mispredict it.

Uniformity semantics: ``UNIFORM`` means *identical across thread
contexts executing in lockstep* — the execution model whose merge
potential the oracle estimates.  Widened cells (value numbers tagged
``"w"``) additionally depend on all threads performing the same number
of loop iterations, so they feed only descriptive outputs (block
classes, branch classes, fractions).  Every *enforced* claim — the
merge/RST upper bounds and the per-PC LVIP sets checked against dynamic
runs — rests solely on exact affine forms, widening-free injectivity,
and interval reasoning, which hold with or without lockstep.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import ENTRY_DEF
from repro.analysis.dom import natural_loops
from repro.func.state import DEFAULT_STACK_TOP, STACK_STRIDE
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import NUM_ARCH_REGS, SP

# ------------------------------------------------------------------ values
# Flat-kind lattice with interval payloads, encoded as tuples so states
# hash and compare structurally:
#
#   ("B",)                       bottom (no path reaches this point yet)
#   ("C", v)                     known constant, identical across threads
#   ("U", vn, lo, hi)            uniform across (lockstep) threads; vn is a
#                                hashable value number
#   ("D", site, a, b, lo, hi)    injective in tid: a*tid + b with int a != 0
#                                and b an int or a symbolic uniform base
#                                (a "w"-tagged value number); or with
#                                a is b is None an unknown injective
#                                function of tid.  [lo, hi] bounds every
#                                thread's value.
#   ("M", lo, hi)                may differ across threads; [lo, hi]
#                                bounds any thread's value
#
# Interval endpoints are Python ints or None (unbounded).  Floats carry
# (None, None).  Value numbers are tuples: ("s", pc) for an unmodelled
# op at one site, ("ld", pc) for an identical-memory load, ("w", ...)
# for anything produced by loop widening (lockstep-only precision).
Value = tuple[object, ...]
Interval = tuple[int | None, int | None]

BOT: Value = ("B",)
TOP: Value = ("M", None, None)
UNBOUNDED: Interval = (None, None)

#: One abstract register file: a value per architected register.
RegVals = tuple[Value, ...]

_S64_MIN = -(1 << 63)
_S64_MAX = (1 << 63) - 1
_MASK64 = (1 << 64) - 1

#: Per-block visit count after which widening applies unconditionally
#: (backstop for irreducible cycles the header set does not cover).
_SOFT_VISIT_CAP = 24
#: Absolute per-run visit backstop; hitting it raises.
_HARD_VISIT_FACTOR = 512
#: Narrowing sweeps after the ascending fixpoint stabilises.
_NARROWING_SWEEPS = 2
#: Maximum number of word addresses a load classification will enumerate.
_MAX_ADDR_SPAN = 1 << 16

WORD = 8


class ValueAnalysisDivergence(RuntimeError):
    """The widening fixpoint failed to stabilise (analysis bug)."""


def const(v: int | float) -> Value:
    return ("C", v)


def uniform(vn: object, lo: int | None, hi: int | None) -> Value:
    if lo is not None and lo == hi:
        return ("C", lo)
    return ("U", vn, lo, hi)


def maybe(lo: int | None, hi: int | None) -> Value:
    if lo is not None and lo == hi:
        # Every thread's value sits in [v, v]: it is the constant v.
        return ("C", lo)
    return ("M", lo, hi)


def injective(site: object, lo: int | None, hi: int | None) -> Value:
    """An unknown-form injective function of the thread id."""
    return ("D", site, None, None, lo, hi)


def affine(
    site: object, a: int, b: object, nctx: int, iv: Interval = UNBOUNDED
) -> Value:
    """``a*tid + b`` for tids ``0..nctx-1`` (``a != 0``).

    With an int *b* the interval is derived exactly from the affine
    endpoints; a symbolic *b* keeps the supplied fallback interval.
    """
    if isinstance(b, int):
        first, last = b, a * (nctx - 1) + b
        lo, hi = (first, last) if first <= last else (last, first)
        if not _S64_MIN <= lo <= hi <= _S64_MAX:
            return ("D", site, a, b, None, None)
        return ("D", site, a, b, lo, hi)
    return ("D", site, a, b, iv[0], iv[1])


def is_varying(v: Value) -> bool:
    """May the value differ across threads?"""
    return v[0] in ("D", "M")


def is_uniform_kind(v: Value) -> bool:
    return v[0] in ("C", "U")


def is_widened(v: Value) -> bool:
    """Does the value's precision rest on loop widening (lockstep-only)?"""
    if v[0] == "U":
        vn = v[1]
        return isinstance(vn, tuple) and bool(vn) and vn[0] == "w"
    if v[0] == "D":
        return isinstance(v[3], tuple)
    return False


def const_of(v: Value) -> int | None:
    """The known integer constant, if the value is an integer constant."""
    if v[0] == "C" and isinstance(v[1], int):
        return v[1]
    return None


def exact_affine_of(v: Value) -> tuple[int, int] | None:
    """The known integer (a, b) of an exact-affine DIFF value."""
    if v[0] == "D" and isinstance(v[2], int) and isinstance(v[3], int):
        return v[2], v[3]
    return None


def as_affine(v: Value) -> tuple[int, object] | None:
    """View a value as ``a*tid + b`` with int ``a``; ``b`` may be symbolic."""
    if v[0] == "D" and isinstance(v[2], int):
        return v[2], v[3]
    c = const_of(v)
    if c is not None:
        return 0, c
    return None


def interval_of(v: Value) -> Interval:
    """Sound bounds on any single thread's value ((None, None) = unknown)."""
    tag = v[0]
    if tag == "C":
        payload = v[1]
        if isinstance(payload, int):
            return payload, payload
        return UNBOUNDED
    if tag == "U":
        return v[2], v[3]  # type: ignore[return-value]
    if tag == "D":
        return v[4], v[5]  # type: ignore[return-value]
    if tag == "M":
        return v[1], v[2]  # type: ignore[return-value]
    return UNBOUNDED  # BOT: never queried on live paths


def with_interval(v: Value, lo: int | None, hi: int | None) -> Value:
    """The same abstract value, restricted to the interval [lo, hi]."""
    tag = v[0]
    if tag == "U":
        return uniform(v[1], lo, hi)
    if tag == "D":
        return ("D", v[1], v[2], v[3], lo, hi)
    if tag == "M":
        return maybe(lo, hi)
    return v


# --------------------------------------------------------------- intervals
def _iv_join(a: Interval, b: Interval) -> Interval:
    alo, ahi = a
    blo, bhi = b
    lo = None if alo is None or blo is None else min(alo, blo)
    hi = None if ahi is None or bhi is None else max(ahi, bhi)
    return lo, hi


def _iv_widen(old: Interval, new: Interval) -> Interval:
    """Keep each bound of *old* only where *new* stays inside it."""
    olo, ohi = old
    nlo, nhi = new
    lo = olo if olo is not None and nlo is not None and nlo >= olo else None
    hi = ohi if ohi is not None and nhi is not None and nhi <= ohi else None
    return lo, hi


def _fits_s64(lo: int, hi: int) -> bool:
    return _S64_MIN <= lo and hi <= _S64_MAX


def _clamp_lo(lo: int | None) -> int | None:
    """A computed lower bound below the s64 range carries no information."""
    return None if lo is None or lo < _S64_MIN else lo


def _clamp_hi(hi: int | None) -> int | None:
    return None if hi is None or hi > _S64_MAX else hi


def _iv_addsub(a: Interval, b: Interval, sign: int) -> Interval:
    """[a] + sign*[b], per-bound (None = unbounded on that side).

    One-sided bounds are kept: ``[0, ?] + [1, 1] = [1, ?]``, the pattern
    every un-guarded loop counter produces.  Bounds assume the guest does
    not wrap 64-bit arithmetic (the NSW-style contract stated in the
    module docstring); a violation would surface in the dynamic
    validation gate, not silently.
    """
    alo, ahi = a
    blo, bhi = b
    if sign < 0:
        blo, bhi = (None if bhi is None else -bhi), (None if blo is None else -blo)
    lo = None if alo is None or blo is None else alo + blo
    hi = None if ahi is None or bhi is None else ahi + bhi
    return _clamp_lo(lo), _clamp_hi(hi)


def _iv_mul(a: Interval, b: Interval) -> Interval:
    alo, ahi = a
    blo, bhi = b
    if alo is not None and ahi is not None and blo is not None and bhi is not None:
        products = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
        return _clamp_lo(min(products)), _clamp_hi(max(products))
    # Partially bounded: only the all-non-negative case keeps bounds
    # (product of lower bounds below, of upper bounds above).
    if alo is not None and alo >= 0 and blo is not None and blo >= 0:
        hi = None if ahi is None or bhi is None else ahi * bhi
        return _clamp_lo(alo * blo), _clamp_hi(hi)
    return UNBOUNDED


def _nonneg(iv: Interval) -> bool:
    return iv[0] is not None and iv[0] >= 0


def _iv_and(
    a: Interval, b: Interval, ca: int | None, cb: int | None
) -> Interval:
    # A non-negative constant mask bounds the result regardless of the
    # other operand — the transfer generated address chains rely on.
    masks = [m for m in (ca, cb) if m is not None and m >= 0]
    if masks:
        return 0, min(masks)
    if _nonneg(a) and _nonneg(b):
        his = [h for h in (a[1], b[1]) if h is not None]
        if his:
            return 0, min(his)
        return 0, None
    return UNBOUNDED


def _iv_orxor(a: Interval, b: Interval) -> Interval:
    if _nonneg(a) and _nonneg(b) and a[1] is not None and b[1] is not None:
        bound = max(a[1], b[1], 1)
        return 0, (1 << bound.bit_length()) - 1
    return UNBOUNDED


def _iv_shift(op: Opcode, a: Interval, shift: int | None) -> Interval:
    if shift is None or not 0 <= shift <= 63:
        if op in (Opcode.SRL, Opcode.SRLI):
            return 0, _S64_MAX  # a logical shift result is non-negative
        return UNBOUNDED
    lo, hi = a
    if op in (Opcode.SLL, Opcode.SLLI):
        return (
            _clamp_lo(None if lo is None else lo << shift),
            _clamp_hi(None if hi is None else hi << shift),
        )
    if op in (Opcode.SRL, Opcode.SRLI):
        if shift == 0:
            return a
        if lo is not None and lo >= 0:
            return lo >> shift, (_S64_MAX if hi is None else hi) >> shift
        return 0, _MASK64 >> shift
    # SRA: monotone per-bound, never overflows.
    return (
        None if lo is None else lo >> shift,
        None if hi is None else hi >> shift,
    )


def _op_interval(op: Opcode, x: Value, y: Value) -> Interval:
    """Sound result interval of an integer ALU op, independent of kinds."""
    ix, iy = interval_of(x), interval_of(y)
    cx, cy = const_of(x), const_of(y)
    if op in (Opcode.ADD, Opcode.ADDI):
        return _iv_addsub(ix, iy, 1)
    if op is Opcode.SUB:
        return _iv_addsub(ix, iy, -1)
    if op is Opcode.MUL:
        return _iv_mul(ix, iy)
    if op in (Opcode.AND, Opcode.ANDI):
        return _iv_and(ix, iy, cx, cy)
    if op in (Opcode.OR, Opcode.ORI, Opcode.XOR, Opcode.XORI):
        return _iv_orxor(ix, iy)
    if op in (Opcode.SLL, Opcode.SLLI, Opcode.SRL, Opcode.SRLI, Opcode.SRA):
        return _iv_shift(op, ix, cy)
    if op in (Opcode.SLT, Opcode.SLTI, Opcode.SEQ):
        return 0, 1
    return UNBOUNDED


# ----------------------------------------------------------- 64-bit folding
def _to_s64(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= 1 << 63 else value


def _fold(op: Opcode, x: int, y: int) -> int | None:
    """Constant-fold one integer op (DIV/REM excluded: div-by-zero)."""
    if op in (Opcode.ADD, Opcode.ADDI):
        return _to_s64(x + y)
    if op is Opcode.SUB:
        return _to_s64(x - y)
    if op is Opcode.MUL:
        return _to_s64(x * y)
    if op in (Opcode.AND, Opcode.ANDI):
        return x & y
    if op in (Opcode.OR, Opcode.ORI):
        return x | y
    if op in (Opcode.XOR, Opcode.XORI):
        return x ^ y
    if op in (Opcode.SLL, Opcode.SLLI):
        return _to_s64(x << (y & 63))
    if op in (Opcode.SRL, Opcode.SRLI):
        return (x & _MASK64) >> (y & 63)
    if op is Opcode.SRA:
        return x >> (y & 63)
    if op in (Opcode.SLT, Opcode.SLTI):
        return int(x < y)
    if op is Opcode.SEQ:
        return int(x == y)
    return None


_INT_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SRA,
    Opcode.SLT, Opcode.SEQ,
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SLTI,
})

_IMM_OPS = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SLTI,
})


# ------------------------------------------------------------------- joins
def join_value(a: Value, b: Value) -> Value:
    if a == b:
        return a
    if a == BOT:
        return b
    if b == BOT:
        return a
    lo, hi = _iv_join(interval_of(a), interval_of(b))
    ka, kb = a[0], b[0]
    if ka == "U" and kb == "U" and a[1] == b[1]:
        return uniform(a[1], lo, hi)
    if ka == "D" and kb == "D" and a[1:4] == b[1:4]:
        return ("D", a[1], a[2], a[3], lo, hi)
    return maybe(lo, hi)


def _header_merge(
    cands: list[Value], header: int, reg: int, kind_widen: bool
) -> Value:
    """Join at a natural-loop header, widening loop-carried kinds.

    Where a plain join of the entry and back-edge values would collapse
    to MAYBE, two loop-uniformity widenings apply:

    * every incoming value uniform-kind (the lockstep loop-counter
      pattern ``C(0)`` meets ``C(1)`` meets ...): merge to one stable
      UNIFORM-per-iteration cell named after the header;
    * every incoming value affine-in-tid with the same nonzero
      coefficient ``a`` (the tid-strided counter ``a*tid + 0`` meets
      ``a*tid + 1`` ...): merge to ``a*tid + u`` with a stable symbolic
      uniform base.

    Interval bounds are joined; the enclosing fixpoint widens them
    separately.  Both widened forms are "w"-tagged: their extra
    precision assumes lockstep iteration and is kept out of every
    enforced bound (see module docstring).
    """
    live = [c for c in cands if c != BOT]
    if not live:
        return BOT
    merged = live[0]
    for c in live[1:]:
        merged = join_value(merged, c)
    if merged[0] != "M" or not kind_widen:
        return merged
    iv: Interval = interval_of(live[0])
    for c in live[1:]:
        iv = _iv_join(iv, interval_of(c))
    if all(is_uniform_kind(c) for c in live):
        return uniform(("w", header, reg), iv[0], iv[1])
    coeffs: set[int] = set()
    for c in live:
        pair = as_affine(c)
        if pair is None or pair[0] == 0:
            return merged
        coeffs.add(pair[0])
    if len(coeffs) == 1:
        return affine(
            ("w", header, reg), coeffs.pop(), ("w", header, reg), 0, iv
        )
    return merged


def _widen_value(old: Value, new: Value) -> Value:
    """Interval widening: keep *old*'s stable bounds, drop unstable ones.

    The kind is taken from *new* (the already-merged value — at headers
    the output of :func:`_header_merge`, whose widened cells must not be
    re-joined against the previous iterate, or ``C(0) vs U(w)`` would
    collapse to MAYBE and undo the loop-uniformity widening).  Only the
    interval is widened, which is what unbounded ascending chains are
    made of.
    """
    if old == BOT or old == new:
        return new
    if new == BOT:
        return old
    lo, hi = _iv_widen(interval_of(old), interval_of(new))
    return with_interval(new, lo, hi)


# ------------------------------------------------------------ memory model
@dataclass(frozen=True)
class Region:
    """One named array of the data image: ``[start, end)`` in bytes."""

    name: str
    start: int
    end: int

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


def regions_from_symbols(
    symbols: Mapping[str, int], data: Mapping[int, int | float]
) -> tuple[Region, ...]:
    """Per-array region table from a program's symbol table.

    Each symbol opens a region that runs to the next symbol's address;
    the last region runs to the end of the mapped image (at least one
    word, so a trailing empty array still gets a region).
    """
    if not symbols:
        return ()
    starts = sorted(symbols.items(), key=lambda item: (item[1], item[0]))
    image_end = max(data, default=0) + WORD
    regions: list[Region] = []
    for index, (name, start) in enumerate(starts):
        end = (
            starts[index + 1][1]
            if index + 1 < len(starts)
            else max(image_end, start + WORD)
        )
        if end > start:
            regions.append(Region(name, start, end))
    return tuple(regions)


class MemoryModel:
    """Which data-image words are identical across execution contexts.

    Built from a base data image plus per-context overlays (the
    multi-execution instance inputs).  A word is *identical* when every
    context observes the base value — i.e. no overlay rebinds it to a
    different value — and no store can reach it (clobbered ranges are
    registered from the store sweep of a prior analysis phase, making
    the classification sound without a combined memory fixpoint).

    With a *regions* table (per-array points-to refinement) the model
    additionally enforces the **region-confinement contract**: an access
    whose statically-known lower bound lands inside a named array is
    assumed never to run past that array's end.  The workload generator
    upholds this by construction — indices are masked to the array size
    and cursors advance at most a fixed count per trip of a loop whose
    trip count is sized to the array — and the claim is validated
    dynamically: the campaign oracle gate fails any run with an LVIP
    mispredict at a must-identical PC, so an unsound confinement
    surfaces as a hard failure rather than silent optimism.
    """

    def __init__(
        self,
        data: dict[int, int | float],
        overlays: Sequence[dict[int, int | float]] = (),
        shared: bool = False,
        regions: Sequence[Region] = (),
    ) -> None:
        self._values: dict[int, list[int | float]] = {
            addr: [value] for addr, value in data.items()
        }
        self._identical: set[int] = set(data)
        for overlay in overlays:
            for addr, value in overlay.items():
                base = data.get(addr)
                if base is None or base != value:
                    self._identical.discard(addr)
                self._values.setdefault(addr, []).append(value)
        # One shared address space (multi-threaded jobs): every word is
        # trivially "the same word" for all threads, so image identity
        # always holds; only stores (handled by the transfer's reaching-
        # store check) can make two threads observe different values.
        self.shared = shared
        self.regions: tuple[Region, ...] = tuple(
            sorted(regions, key=lambda region: region.start)
        )
        self._clobbered: list[Interval] = []
        self._memo: dict[Interval, tuple[bool, Interval]] = {}

    @classmethod
    def for_build(cls, build: object, shared: bool = False) -> MemoryModel:
        """Model for a generated workload build (per-instance overlays)."""
        program = build.program  # type: ignore[attr-defined]
        overlays = build.per_instance_data  # type: ignore[attr-defined]
        symbols = getattr(program, "symbols", None) or {}
        return cls(
            dict(program.data),
            list(overlays),
            shared=shared,
            regions=regions_from_symbols(symbols, program.data),
        )

    def region_at(self, addr: int) -> Region | None:
        """The named array containing *addr*, if any."""
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def confine(self, lo: int | None, hi: int | None) -> Interval:
        """Apply the region-confinement contract to an access interval.

        An interval with a known lower bound inside a named array but no
        upper bound (a widened cursor) is confined to that array; a
        bounded interval is the analysis' own proof and is left alone.
        """
        if lo is None or hi is not None or lo < 0:
            return (lo, hi)
        region = self.region_at(lo)
        if region is None:
            return (lo, hi)
        return (lo, region.end - 1)

    def clobber(self, lo: int | None, hi: int | None) -> None:
        """Register a store address range: those words are never identical."""
        self._clobbered.append((lo, hi))
        self._memo.clear()

    def _is_clobbered(self, addr: int) -> bool:
        for lo, hi in self._clobbered:
            if (lo is None or addr >= lo) and (hi is None or addr <= hi):
                return True
        return False

    def classify_load(
        self, lo: int | None, hi: int | None
    ) -> tuple[bool, Interval]:
        """(must_identical, value interval) for a load of [lo, hi].

        *must_identical* means every word-aligned address in the range is
        an identical, never-stored word of the image: whatever common
        address merged threads present, they all receive the same value.
        """
        key: Interval = (lo, hi)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        result = self._classify(lo, hi)
        self._memo[key] = result
        return result

    def _classify(
        self, lo: int | None, hi: int | None
    ) -> tuple[bool, Interval]:
        # Negative addresses fault, so executions that continue past the
        # load accessed an address >= 0; same argument as alignment below.
        lo = 0 if lo is None else max(lo, 0)
        start = (lo + WORD - 1) // WORD * WORD  # loads fault unless aligned
        if hi is not None and start > hi:
            # No aligned address exists: the load always faults, so no
            # execution continues past it.  Claim nothing.
            return False, UNBOUNDED
        if hi is not None and hi - start <= _MAX_ADDR_SPAN * WORD:
            return self._classify_dense(start, hi)
        return self._classify_sparse(start, hi)

    def _classify_dense(self, start: int, hi: int) -> tuple[bool, Interval]:
        """Word-by-word walk of a small bounded range."""
        identical = True
        vlo: int | None = None
        vhi: int | None = None
        bounded = True
        for addr in range(start, hi + 1, WORD):
            if self._is_clobbered(addr):
                return False, UNBOUNDED
            # An unmapped word reads as 0 in every context: identical.
            values = self._values.get(addr, [0])
            if (
                identical
                and not self.shared
                and addr in self._values
                and addr not in self._identical
            ):
                identical = False
            for value in values:
                if not isinstance(value, int):
                    bounded = False
                    continue
                vlo = value if vlo is None else min(vlo, value)
                vhi = value if vhi is None else max(vhi, value)
        if not bounded:
            vlo, vhi = None, None
        return identical, (vlo, vhi)

    def _classify_sparse(
        self, start: int, hi: int | None
    ) -> tuple[bool, Interval]:
        """Huge or half-open range: check the finite differing sets.

        Every word is identical unless it is mapped-and-differing or
        inside a clobbered store range, both of which are finite
        collections we can scan without enumerating addresses.
        """
        for clo, chi in self._clobbered:
            clo_eff = 0 if clo is None else clo
            if (hi is None or clo_eff <= hi) and (chi is None or chi >= start):
                return False, UNBOUNDED
        vlo, vhi = 0, 0  # a large range always contains unmapped words
        bounded = True
        for addr, values in self._values.items():
            if addr < start or (hi is not None and addr > hi):
                continue
            if not self.shared and addr not in self._identical:
                return False, UNBOUNDED
            for value in values:
                if not isinstance(value, int):
                    bounded = False
                    continue
                vlo, vhi = min(vlo, value), max(vhi, value)
        return True, ((vlo, vhi) if bounded else UNBOUNDED)


# ---------------------------------------------------------------- transfer
class _Transfer:
    """Per-instruction abstract transfer over mutable register lists."""

    def __init__(
        self,
        nctx: int,
        memory: MemoryModel | None,
        tid_value: int | None,
        reaching_stores: dict[int, tuple[Interval, ...]] | None = None,
    ) -> None:
        self.nctx = nctx
        self.memory = memory
        self.tid_value = tid_value
        # Load pc -> address intervals of stores with a path to that load
        # (flow-sensitive clobbering: a store that can never execute
        # before a load cannot change what the load observes).
        self.reaching_stores = reaching_stores or {}

    def _store_blocked(self, pc: int, lo: int | None, hi: int | None) -> bool:
        """May any store reaching *pc* overlap the address range?"""
        for slo, shi in self.reaching_stores.get(pc, ()):
            if (hi is None or slo is None or slo <= hi) and (
                lo is None or shi is None or shi >= lo
            ):
                return True
        return False

    def classify(
        self, pc: int, lo: int | None, hi: int | None
    ) -> tuple[bool, Interval]:
        """Strict cross-context identity of the load at *pc* over [lo, hi]."""
        if self.memory is None:
            return False, UNBOUNDED
        lo, hi = self.memory.confine(lo, hi)
        if self._store_blocked(pc, lo, hi):
            return False, UNBOUNDED
        return self.memory.classify_load(lo, hi)

    def access_address(
        self, inst: Instruction, regs: Sequence[Value]
    ) -> Interval:
        """Address interval of a memory access: base register + disp."""
        base = regs[inst.rs1] if inst.rs1 is not None else const(0)
        disp = inst.imm if isinstance(inst.imm, int) else 0
        lo, hi = interval_of(base)
        return (
            _clamp_lo(None if lo is None else lo + disp),
            _clamp_hi(None if hi is None else hi + disp),
        )

    def alu(self, pc: int, op: Opcode, x: Value, y: Value) -> Value:
        if x == BOT or y == BOT:
            return BOT
        cx, cy = const_of(x), const_of(y)
        if cx is not None and cy is not None:
            folded = _fold(op, cx, cy)
            if folded is not None:
                return const(folded)
            iv0 = _op_interval(op, x, y)
            return uniform(("s", pc), iv0[0], iv0[1])

        # Affine combinations: (a1*t + b1) op (a2*t + b2), either side
        # possibly constant (a == 0).  ADD/SUB stay affine even with a
        # symbolic uniform base; MUL by a constant scales.
        if op in (Opcode.ADD, Opcode.ADDI, Opcode.SUB):
            pa, pb = as_affine(x), as_affine(y)
            if pa is not None and pb is not None:
                sign = -1 if op is Opcode.SUB else 1
                a = pa[0] + sign * pb[0]
                iv = _op_interval(op, x, y)
                if isinstance(pa[1], int) and isinstance(pb[1], int):
                    b: object = pa[1] + sign * pb[1]
                else:
                    b = ("w", pc)  # symbolic uniform base, widening-tainted
                if a == 0:
                    if isinstance(b, int):
                        return const(b)
                    return uniform(b, iv[0], iv[1])
                return affine(pc, a, b, self.nctx, iv)
        if op is Opcode.MUL:
            pair = as_affine(x) if x[0] == "D" else None
            c = cy
            if pair is None and y[0] == "D":
                pair = as_affine(y)
                c = cx
            if pair is not None and c is not None:
                if c == 0:
                    return const(0)
                iv = _op_interval(op, x, y)
                if isinstance(pair[1], int):
                    return affine(pc, pair[0] * c, pair[1] * c, self.nctx, iv)
                return affine(pc, pair[0] * c, ("w", pc), self.nctx, iv)

        iv = _op_interval(op, x, y)
        dx, dy = x[0] == "D", y[0] == "D"
        # Injectivity-preserving ops: combining an injective-in-tid value
        # with a thread-uniform one keeps it injective (form unknown).
        # Widened uniforms are excluded: their "identical across threads"
        # claim assumes lockstep, too weak to promise pairwise-distinct.
        if dx != dy:
            other = y if dx else x
            if (
                is_uniform_kind(other)
                and not is_widened(other)
                and op in (
                    Opcode.ADD, Opcode.ADDI, Opcode.SUB,
                    Opcode.XOR, Opcode.XORI,
                )
            ):
                return injective(pc, iv[0], iv[1])
        if x[0] == "M" or y[0] == "M" or dx or dy:
            return maybe(iv[0], iv[1])
        return uniform(("s", pc), iv[0], iv[1])

    def apply(self, pc: int, inst: Instruction, regs: list[Value]) -> None:
        dst = inst.dst
        if dst is None:
            return
        op = inst.op

        def src(reg: int | None) -> Value:
            return const(0) if reg is None else regs[reg]

        result: Value
        if op is Opcode.LI or op is Opcode.FLI:
            result = const(inst.imm if inst.imm is not None else 0)
        elif op is Opcode.TID:
            if self.tid_value is not None:
                result = const(self.tid_value)
            elif self.nctx > 1:
                result = affine(pc, 1, 0, self.nctx)
            else:
                result = const(0)
        elif op is Opcode.NCTX:
            result = const(self.nctx)
        elif op is Opcode.JAL:
            result = const(pc + 1)  # link register: a code address, uniform
        elif op in (Opcode.LW, Opcode.FLW):
            result = self._load(pc, inst, regs)
        elif op is Opcode.TRECV:
            result = TOP  # message contents are not modelled
        elif op in _INT_OPS:
            if op in _IMM_OPS:
                imm = const(inst.imm if inst.imm is not None else 0)
                result = self.alu(pc, op, src(inst.rs1), imm)
            else:
                result = self.alu(pc, op, src(inst.rs1), src(inst.rs2))
        elif op in (Opcode.FCVT, Opcode.FNEG):
            x = src(inst.rs1)
            if x == BOT:
                result = BOT
            elif x[0] == "D":
                result = injective(pc, None, None)  # strictly monotone
            elif x[0] == "M":
                result = TOP
            else:
                result = uniform(("s", pc), None, None)
        else:
            # Remaining fp ops and compares: uniform in, uniform out.
            operands = [src(inst.rs1), src(inst.rs2)]
            iv = (0, 1) if op in (Opcode.FSLT, Opcode.FSEQ) else UNBOUNDED
            if any(v == BOT for v in operands):
                result = BOT
            elif any(is_varying(v) for v in operands):
                result = maybe(iv[0], iv[1])
            else:
                result = uniform(("s", pc), iv[0], iv[1])
        regs[dst] = result

    def _load(self, pc: int, inst: Instruction, regs: list[Value]) -> Value:
        if self.memory is None:
            return TOP
        lo, hi = self.access_address(inst, regs)
        identical, (vlo, vhi) = self.classify(pc, lo, hi)
        if inst.op is Opcode.FLW:
            vlo, vhi = None, None  # fp registers carry no interval
        if identical:
            return uniform(("ld", pc), vlo, vhi)
        if self.memory.shared:
            # One shared image: lockstep threads read the same word at
            # the same instant, whatever stores preceded it — uniform
            # per iteration, but only under lockstep, hence "w"-tagged
            # (descriptive tier only, never an enforced claim).
            return uniform(("w", pc), vlo, vhi)
        return maybe(vlo, vhi)


# ----------------------------------------------------- branch-edge refining
def _refine_value(v: Value, lo: int | None, hi: int | None) -> Value | None:
    """Intersect *v* with [lo, hi]; None signals an infeasible edge."""
    vlo, vhi = interval_of(v)
    nlo = vlo if lo is None else (lo if vlo is None else max(vlo, lo))
    nhi = vhi if hi is None else (hi if vhi is None else min(vhi, hi))
    if nlo is not None and nhi is not None and nlo > nhi:
        return None
    if const_of(v) is not None:
        return v  # exact already; feasibility was checked above
    if (nlo, nhi) == (vlo, vhi):
        return v
    return with_interval(v, nlo, nhi)


def _refine_edge(inst: Instruction, taken: bool, regs: list[Value]) -> bool:
    """Narrow branch-operand intervals along one CFG edge.

    Returns False when the constraint is unsatisfiable (dead edge).
    """
    if inst.rs1 is None or inst.rs2 is None:
        return True
    x, y = regs[inst.rs1], regs[inst.rs2]
    if x == BOT or y == BOT:
        return True
    (xlo, xhi), (ylo, yhi) = interval_of(x), interval_of(y)
    op = inst.op
    lt = (op is Opcode.BLT and taken) or (op is Opcode.BGE and not taken)
    ge = (op is Opcode.BLT and not taken) or (op is Opcode.BGE and taken)
    eq = (op is Opcode.BEQ and taken) or (op is Opcode.BNE and not taken)
    nx: Value | None = x
    ny: Value | None = y
    if lt:  # x < y
        nx = _refine_value(x, None, None if yhi is None else yhi - 1)
        ny = _refine_value(y, None if xlo is None else xlo + 1, None)
    elif ge:  # x >= y
        nx = _refine_value(x, ylo, None)
        ny = _refine_value(y, None, xhi)
    elif eq:  # x == y
        nx = _refine_value(x, ylo, yhi)
        ny = _refine_value(y, xlo, xhi)
    if nx is None or ny is None:
        return False
    if inst.rs1 != 0:
        regs[inst.rs1] = nx
    if inst.rs2 != 0:
        regs[inst.rs2] = ny
    return True


# --------------------------------------------------- branch classification
def classify_branch(inst: Instruction, state: Sequence[Value], nctx: int) -> str:
    """Classify a conditional branch: 'uniform', 'may', or 'must' diverge."""
    x = state[inst.rs1] if inst.rs1 is not None else const(0)
    y = state[inst.rs2] if inst.rs2 is not None else const(0)
    if x == BOT or y == BOT or nctx < 2:
        return "uniform"
    if is_uniform_kind(x) and is_uniform_kind(y):
        return "uniform"

    # Reduce to d(t) = a*t + b vs 0: the outcome as a function of the
    # thread id.  Symbolic uniform bases cancel when the coefficients
    # match — the widened tid-strided loop-counter guard.
    pa, pb = as_affine(x), as_affine(y)
    if pa is not None and pb is not None:
        a = pa[0] - pb[0]
        if a == 0:
            return "uniform"  # same tid dependence cancels: threads agree
        if isinstance(pa[1], int) and isinstance(pb[1], int):
            b = pa[1] - pb[1]
            if inst.op in (Opcode.BEQ, Opcode.BNE):
                # d(t) == 0 at exactly one real t; divergent iff that t is
                # a live thread id (the others then disagree with it).
                if b % a == 0 and 0 <= -b // a < nctx:
                    return "must"
                return "uniform"  # no thread satisfies equality: all agree
            # BLT/BGE on lhs < rhs: d(t) < 0 is monotone in t.
            first = b < 0
            last = a * (nctx - 1) + b < 0
            return "must" if first != last else "uniform"

    # Interval separation: a comparison whose outcome is the same for
    # every thread is uniform even when the operands may differ.
    (xlo, xhi), (ylo, yhi) = interval_of(x), interval_of(y)
    if inst.op in (Opcode.BEQ, Opcode.BNE):
        if (xhi is not None and ylo is not None and xhi < ylo) or (
            yhi is not None and xlo is not None and yhi < xlo
        ):
            return "uniform"  # disjoint intervals: never equal, all agree
    else:  # BLT / BGE compare lhs < rhs
        if xhi is not None and ylo is not None and xhi < ylo:
            return "uniform"  # always <
        if xlo is not None and yhi is not None and xlo >= yhi:
            return "uniform"  # never <
    return "may"


# ------------------------------------------------------------------ engine
@dataclass
class LoadClass:
    """Static classification of one load site."""

    pc: int
    addr_lo: int | None
    addr_hi: int | None
    must_identical: bool
    #: Named array (per-array region) containing the confined lower
    #: bound, when the program's symbol table resolves one.
    region: str | None = None


@dataclass
class ValueAnalysis:
    """Fixpoint result of the value-level analysis over one CFG."""

    cfg: CFG
    nctx: int
    block_in: list[RegVals]
    block_out: list[RegVals]
    reachable: set[int]
    #: pc -> 'uniform' | 'may' | 'must' for every reachable cond branch.
    branch_classes: dict[int, str] = field(default_factory=dict)
    #: pc -> classification for every reachable load.
    loads: dict[int, LoadClass] = field(default_factory=dict)
    #: pc -> store address interval for every reachable store.
    store_intervals: dict[int, Interval] = field(default_factory=dict)
    #: Loop headers where at least one register was kind-widened.
    widened_headers: frozenset[int] = frozenset()
    transfer: _Transfer | None = None

    def apply(self, pc: int, regs: list[Value]) -> None:
        """Advance a mutable register list across the instruction at *pc*."""
        assert self.transfer is not None
        self.transfer.apply(pc, self.cfg.instructions[pc], regs)

    def state_at(self, pc: int) -> RegVals:
        """Abstract register state immediately before *pc*."""
        bid = self.cfg.block_of[pc]
        regs = list(self.block_in[bid])
        for earlier in range(self.cfg.blocks[bid].start, pc):
            self.apply(earlier, regs)
        return tuple(regs)

    def eligible_load_pcs(self) -> frozenset[int]:
        """Load PCs an LVIP check could ever target (reachable loads)."""
        return frozenset(self.loads)

    def must_identical_load_pcs(self) -> frozenset[int]:
        """Loads that provably return identical values when merged."""
        return frozenset(
            pc for pc, lc in self.loads.items() if lc.must_identical
        )


def _rpo(cfg: CFG) -> list[int]:
    """Reverse postorder over the successor graph, from the entry block."""
    seen = {cfg.entry_block}
    order: list[int] = []
    stack: list[tuple[int, int]] = [(cfg.entry_block, 0)]
    while stack:
        bid, idx = stack[-1]
        succs = cfg.blocks[bid].succs
        if idx < len(succs):
            stack[-1] = (bid, idx + 1)
            succ = succs[idx]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, 0))
        else:
            stack.pop()
            order.append(bid)
    order.reverse()
    return order


class _Engine:
    """Worklist fixpoint with loop-header widening and narrowing."""

    def __init__(
        self,
        cfg: CFG,
        nctx: int,
        boundary: RegVals,
        transfer: _Transfer,
    ) -> None:
        self.cfg = cfg
        self.nctx = nctx
        self.boundary = boundary
        self.transfer = transfer
        nblocks = len(cfg.blocks)
        bot_state: RegVals = tuple([BOT] * NUM_ARCH_REGS)
        self.block_in: list[RegVals] = [bot_state] * nblocks
        self.block_out: list[RegVals] = [bot_state] * nblocks
        self.visits = [0] * nblocks
        self.widened: set[int] = set()
        # Per-header: registers written somewhere in the loop body, and
        # the back-edge predecessors (preds inside the body).  Registers
        # *not* written in the body are loop-invariant: their header
        # in-value is the join of the entry edges alone — the back-edge
        # carries a (possibly stale) copy of that same value, and
        # joining it in could only rename or degrade an invariant
        # (e.g. two sibling inner loops renaming the outer counter to
        # two different widened cells that later collapse to MAYBE).
        self.headers: set[int] = set()
        self.loop_defs: dict[int, set[int]] = {}
        self.loop_back_preds: dict[int, set[int]] = {}
        for header, body in natural_loops(cfg):
            self.headers.add(header)
            defs = self.loop_defs.setdefault(header, set())
            for member in body:
                for pc in cfg.blocks[member].pcs():
                    dst = cfg.instructions[pc].dst
                    if dst is not None:
                        defs.add(dst)
            self.loop_back_preds.setdefault(header, set()).update(
                p for p in cfg.blocks[header].preds if p in body
            )
        self.rpo = _rpo(cfg)
        self.rpo_index = {bid: i for i, bid in enumerate(self.rpo)}

    # ------------------------------------------------------------ plumbing
    def _edge_state(self, pred: int, succ: int) -> RegVals | None:
        """Predecessor out-state refined along the (pred, succ) edge."""
        state = self.block_out[pred]
        block = self.cfg.blocks[pred]
        inst = self.cfg.instructions[block.last]
        if not inst.is_branch or inst.target is None:
            return state
        if not 0 <= inst.target < len(self.cfg.instructions):
            return state
        target_bid = self.cfg.block_of[inst.target]
        fall_pc = block.last + 1
        if fall_pc >= len(self.cfg.instructions):
            return state
        fall_bid = self.cfg.block_of[fall_pc]
        if target_bid == fall_bid:
            return state  # both edges land together: no constraint
        if succ == target_bid:
            taken = True
        elif succ == fall_bid:
            taken = False
        else:
            return state
        regs = list(state)
        if not _refine_edge(inst, taken, regs):
            return None  # infeasible edge contributes nothing
        return tuple(regs)

    def _merge_in(self, bid: int, widen: bool) -> RegVals:
        is_header = bid in self.headers
        back_preds = self.loop_back_preds.get(bid, set())
        loop_defs = self.loop_defs.get(bid, set())
        entry_cands: list[list[Value]] = [[] for _ in range(NUM_ARCH_REGS)]
        back_cands: list[list[Value]] = [[] for _ in range(NUM_ARCH_REGS)]
        if bid == self.cfg.entry_block:
            for reg in range(NUM_ARCH_REGS):
                entry_cands[reg].append(self.boundary[reg])
        for pred in self.cfg.blocks[bid].preds:
            state = self._edge_state(pred, bid)
            if state is None:
                continue
            bucket = back_cands if pred in back_preds else entry_cands
            for reg in range(NUM_ARCH_REGS):
                bucket[reg].append(state[reg])
        old = self.block_in[bid]
        merged: list[Value] = []
        for reg in range(NUM_ARCH_REGS):
            if is_header and reg in loop_defs:
                value = _header_merge(
                    entry_cands[reg] + back_cands[reg], bid, reg, True
                )
                if value[0] == "U" and value[1] == ("w", bid, reg):
                    self.widened.add(bid)
                elif value[0] == "D" and value[3] == ("w", bid, reg):
                    self.widened.add(bid)
            else:
                # Non-header, or loop-invariant at a header: for the
                # latter the back-edge value is a copy of this very
                # in-value, so the entry edges alone are the sources.
                cands = entry_cands[reg] if is_header else (
                    entry_cands[reg] + back_cands[reg]
                )
                value = BOT
                for cand in cands:
                    value = join_value(value, cand)
            if widen and (is_header or self.visits[bid] > _SOFT_VISIT_CAP):
                value = _widen_value(old[reg], value)
            merged.append(value)
        return tuple(merged)

    def _transfer_block(self, bid: int, state: RegVals) -> RegVals:
        regs = list(state)
        for pc in self.cfg.blocks[bid].pcs():
            self.transfer.apply(pc, self.cfg.instructions[pc], regs)
        return tuple(regs)

    # ------------------------------------------------------------- solving
    def solve(self) -> None:
        cap = _HARD_VISIT_FACTOR * (len(self.cfg.blocks) + 1)
        total = 0
        pending = set(self.rpo)
        work = list(self.rpo)
        while work:
            work.sort(key=lambda b: self.rpo_index.get(b, 0), reverse=True)
            bid = work.pop()
            pending.discard(bid)
            total += 1
            if total > cap:
                raise ValueAnalysisDivergence(
                    f"value fixpoint did not stabilise after {total} visits"
                )
            self.visits[bid] += 1
            new_in = self._merge_in(bid, widen=True)
            new_out = self._transfer_block(bid, new_in)
            if new_in == self.block_in[bid] and new_out == self.block_out[bid]:
                continue
            self.block_in[bid] = new_in
            self.block_out[bid] = new_out
            for succ in self.cfg.blocks[bid].succs:
                if succ not in pending:
                    pending.add(succ)
                    work.append(succ)
        # Bounded narrowing: recompute without interval widening to pull
        # branch-refined bounds (e.g. the loop guard) back in.  Starting
        # from a post-fixpoint, every sweep stays above the least
        # fixpoint, so the result remains sound.
        for _ in range(_NARROWING_SWEEPS):
            for bid in self.rpo:
                new_in = self._merge_in(bid, widen=False)
                self.block_in[bid] = new_in
                self.block_out[bid] = self._transfer_block(bid, new_in)


def _sweep(
    engine: _Engine, transfer: _Transfer, reachable: set[int]
) -> tuple[dict[int, str], dict[int, LoadClass], dict[int, Interval]]:
    """Final walk over reachable blocks: classify branches, loads, stores."""
    cfg = engine.cfg
    branch_classes: dict[int, str] = {}
    loads: dict[int, LoadClass] = {}
    stores: dict[int, Interval] = {}
    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        regs = list(engine.block_in[block.bid])
        for pc in block.pcs():
            inst = cfg.instructions[pc]
            if inst.is_load:
                lo, hi = transfer.access_address(inst, regs)
                if transfer.memory is not None:
                    lo, hi = transfer.memory.confine(lo, hi)
                identical, _iv = transfer.classify(pc, lo, hi)
                region = (
                    transfer.memory.region_at(lo)
                    if transfer.memory is not None and lo is not None
                    else None
                )
                loads[pc] = LoadClass(
                    pc, lo, hi, identical, region.name if region else None
                )
            elif inst.is_store:
                iv = transfer.access_address(inst, regs)
                if transfer.memory is not None:
                    iv = transfer.memory.confine(*iv)
                stores[pc] = iv
            elif inst.is_branch:
                branch_classes[pc] = classify_branch(inst, regs, engine.nctx)
            transfer.apply(pc, inst, regs)
    return branch_classes, loads, stores


def _reaching_stores(
    cfg: CFG, store_ivs: dict[int, Interval]
) -> dict[int, tuple[Interval, ...]]:
    """For each load pc, the store intervals with a CFG path to it.

    A store S reaches a load L when some execution runs S before L:
    S's block reaches L's block through successors, or they share a
    block and S precedes L (or the block sits on a cycle).
    """
    closure: dict[int, set[int]] = {}
    for block in cfg.blocks:
        seen: set[int] = set()
        stack = list(block.succs)
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(cfg.blocks[bid].succs)
        closure[block.bid] = seen  # blocks strictly after; self iff on a cycle
    result: dict[int, tuple[Interval, ...]] = {}
    for block in cfg.blocks:
        for pc in block.pcs():
            if not cfg.instructions[pc].is_load:
                continue
            ivs = []
            for spc, iv in store_ivs.items():
                sbid = cfg.block_of[spc]
                if sbid == block.bid:
                    reaches = spc < pc or sbid in closure[sbid]
                else:
                    reaches = block.bid in closure[sbid]
                if reaches:
                    ivs.append(iv)
            result[pc] = tuple(ivs)
    return result


def entry_state(nctx: int, sp_divergent: bool) -> RegVals:
    """Abstract register file at program entry."""
    regs: list[Value] = [const(0)] * NUM_ARCH_REGS
    if sp_divergent and nctx > 1:
        regs[SP] = affine(ENTRY_DEF, -STACK_STRIDE, DEFAULT_STACK_TOP, nctx)
    else:
        regs[SP] = const(DEFAULT_STACK_TOP)
    return tuple(regs)


def analyze_values_cfg(
    cfg: CFG,
    nctx: int,
    *,
    sp_divergent: bool = True,
    memory: MemoryModel | None = None,
    tid_value: int | None = None,
) -> ValueAnalysis:
    """Run the value-level fixpoint over *cfg*.

    With a :class:`MemoryModel` the analysis runs two phases: a first
    fixpoint with loads unmodelled collects every store's address
    interval (the widest possible, since that phase's loads return TOP),
    and a second fixpoint classifies each load against the identical
    words of the image, counting only stores *with a CFG path to the
    load* as clobbering — a store that can never execute before a load
    cannot change what it observes.

    *tid_value* pins the TID opcode to one constant (the Limit-study
    clones all run with soft tid 0).
    """
    boundary = entry_state(nctx, sp_divergent)
    reachable = cfg.reachable()

    first = _Transfer(nctx, None, tid_value)
    engine = _Engine(cfg, nctx, boundary, first)
    engine.solve()
    _branches, _loads, store_ivs = _sweep(engine, first, reachable)

    final_transfer = first
    if memory is not None:
        # Phase 1 ran without the memory model, so its store intervals
        # are unconfined; apply the region contract before they gate
        # load classification.
        store_ivs = {
            pc: memory.confine(*iv) for pc, iv in store_ivs.items()
        }
        reaching = _reaching_stores(cfg, store_ivs)
        final_transfer = _Transfer(nctx, memory, tid_value, reaching)
        engine = _Engine(cfg, nctx, boundary, final_transfer)
        engine.solve()
    branch_classes, loads, store_ivs = _sweep(engine, final_transfer, reachable)

    return ValueAnalysis(
        cfg=cfg,
        nctx=nctx,
        block_in=engine.block_in,
        block_out=engine.block_out,
        reachable=reachable,
        branch_classes=branch_classes,
        loads=loads,
        store_intervals=store_ivs,
        widened_headers=frozenset(engine.widened),
        transfer=final_transfer,
    )
