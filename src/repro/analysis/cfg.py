"""Basic-block control-flow graphs over guest ISA programs.

A :class:`CFG` partitions a program's instruction list into maximal basic
blocks and records the successor/predecessor edges between them.  It is the
substrate for everything in :mod:`repro.analysis`: dominators and loops
(:mod:`repro.analysis.dom`), the dataflow solvers
(:mod:`repro.analysis.dataflow`), the guest linter
(:mod:`repro.analysis.lint`), and the static redundancy oracle
(:mod:`repro.analysis.redundancy`).

Control-flow modelling:

* conditional branches have two successors (target, fall-through);
* ``J``/``JAL`` have one successor (the target) — ``JAL`` is treated as a
  call whose matching return arrives through ``JR``;
* ``JR`` is an indirect jump.  In this ISA it is only ever used as a
  function return, so its successors are conservatively the *return
  sites*: every instruction following a ``JAL``.  A program with a ``JR``
  but no ``JAL`` gets no successors (the linter flags the dead end);
* ``HALT`` terminates: no successors;
* an instruction whose fall-through would leave the image is recorded in
  :attr:`CFG.falls_off_end` rather than given a phantom successor.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


class BasicBlock:
    """A maximal straight-line run of instructions."""

    __slots__ = ("bid", "start", "end", "succs", "preds")

    def __init__(self, bid: int, start: int, end: int) -> None:
        self.bid = bid
        #: First instruction index (inclusive).
        self.start = start
        #: One past the last instruction index (exclusive).
        self.end = end
        self.succs: list[int] = []
        self.preds: list[int] = []

    def pcs(self) -> range:
        """Instruction indices of this block."""
        return range(self.start, self.end)

    @property
    def last(self) -> int:
        """PC of the block's terminator (its final instruction)."""
        return self.end - 1

    def __len__(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<B{self.bid} [{self.start}..{self.end}) "
            f"-> {','.join(str(s) for s in self.succs)}>"
        )


class CFG:
    """Control-flow graph of one instruction sequence."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        entry: int = 0,
        name: str = "program",
    ) -> None:
        self.instructions: list[Instruction] = list(instructions)
        self.name = name
        self.entry_pc = entry
        #: PCs whose fall-through would run past the end of the image.
        self.falls_off_end: set[int] = set()
        #: Return sites: pc+1 of every JAL (the successors of any JR).
        self.return_sites: list[int] = [
            pc + 1
            for pc, inst in enumerate(self.instructions)
            if inst.op is Opcode.JAL and pc + 1 < len(self.instructions)
        ]
        self.blocks: list[BasicBlock] = []
        #: Map pc -> block id.
        self.block_of: list[int] = []
        self._build()
        self.entry_block = self.block_of[entry] if self.instructions else 0

    @classmethod
    def from_program(cls, program: Program) -> "CFG":
        """Build the CFG of a linked :class:`~repro.isa.program.Program`."""
        return cls(program.instructions, entry=program.entry, name=program.name)

    # ------------------------------------------------------------------ build
    def _succ_pcs(self, pc: int) -> list[int]:
        """Successor PCs of the instruction at *pc* (image-bounded)."""
        inst = self.instructions[pc]
        n = len(self.instructions)
        if inst.op is Opcode.HALT:
            return []
        if inst.op is Opcode.JR:
            return list(self.return_sites)
        succs: list[int] = []
        if inst.is_control:
            if inst.target is not None and 0 <= inst.target < n:
                succs.append(inst.target)
            if not inst.is_branch:
                return succs  # J/JAL: no fall-through
        # Fall-through (also the not-taken path of a branch).
        if pc + 1 < n:
            succs.append(pc + 1)
        else:
            self.falls_off_end.add(pc)
        return succs

    def _build(self) -> None:
        n = len(self.instructions)
        if n == 0:
            return
        leaders = {0, self.entry_pc}
        for pc, inst in enumerate(self.instructions):
            if inst.is_control or inst.op is Opcode.HALT:
                if pc + 1 < n:
                    leaders.add(pc + 1)
            if inst.target is not None and 0 <= inst.target < n:
                leaders.add(inst.target)
        leaders.update(site for site in self.return_sites if site < n)

        starts = sorted(leaders)
        self.block_of = [0] * n
        for bid, start in enumerate(starts):
            end = starts[bid + 1] if bid + 1 < len(starts) else n
            block = BasicBlock(bid, start, end)
            self.blocks.append(block)
            for pc in range(start, end):
                self.block_of[pc] = bid

        for block in self.blocks:
            seen: set[int] = set()
            for succ_pc in self._succ_pcs(block.last):
                sid = self.block_of[succ_pc]
                if sid not in seen:
                    seen.add(sid)
                    block.succs.append(sid)
        for block in self.blocks:
            for sid in block.succs:
                self.blocks[sid].preds.append(block.bid)

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.blocks)

    def reachable(self) -> set[int]:
        """Block ids reachable from the entry block."""
        if not self.blocks:
            return set()
        seen = {self.entry_block}
        stack = [self.entry_block]
        while stack:
            for sid in self.blocks[stack.pop()].succs:
                if sid not in seen:
                    seen.add(sid)
                    stack.append(sid)
        return seen

    def sccs(self) -> list[list[int]]:
        """Strongly connected components (iterative Tarjan), in discovery
        order.  Singleton components without a self-edge are included; the
        caller distinguishes genuine cycles."""
        index: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        result: list[list[int]] = []
        counter = 0
        for root in range(len(self.blocks)):
            if root in index:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, child = work[-1]
                if child == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                succs = self.blocks[node].succs
                while child < len(succs):
                    succ = succs[child]
                    child += 1
                    if succ not in index:
                        work[-1] = (node, child)
                        work.append((succ, 0))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    component: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(component)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return result
