"""The observability hub threaded through :class:`~repro.pipeline.smt.SMTCore`.

An :class:`Observer` bundles up to three optional consumers — an event
sink, an interval-metrics collector, and a flight recorder — plus the
no-forward-progress watchdog.  The simulator holds exactly one observer
(the shared :data:`NULL_OBS` when none was requested) and guards every
emission site with the precomputed ``tracing`` flag, so a disabled
observer costs one attribute read and branch per site and never
constructs an event object.

Lifecycle hooks (called by the core only when ``active``):

* ``begin_cycle(cycle)`` — stamps ``now`` so components without a cycle
  argument (sync controller, I-side hierarchy path) can timestamp events;
* ``end_cycle(core)`` — interval sampling and the watchdog check;
* ``finalize(core)`` — closes the last partial interval at end of run.
"""

from __future__ import annotations

from repro.obs.events import EventKind, TraceEvent
from repro.obs.recorder import (
    DEFAULT_WATCHDOG_CYCLES,
    FlightRecorder,
    WatchdogError,
)


class Observer:
    """Routes simulator events to a sink, a recorder, and interval metrics."""

    #: Whether :class:`~repro.pipeline.fast.FastSMTCore` can honour this
    #: observer natively.  A plain observer may carry a full event sink,
    #: which needs the reference loop's per-stage emission sites — the
    #: fast engine falls back to the reference loop for it.  The
    #: :class:`~repro.obs.sampling.SampledObserver` subclass overrides
    #: this and is serviced from inside the fast loop.
    fast_capable = False

    __slots__ = (
        "sink",
        "interval",
        "recorder",
        "watchdog_cycles",
        "tracing",
        "active",
        "now",
        "_progress_cycle",
        "_progress_value",
    )

    def __init__(
        self,
        sink=None,
        interval=None,
        recorder: FlightRecorder | None = None,
        watchdog_cycles: int | None = None,
    ) -> None:
        self.sink = sink
        self.interval = interval
        self.recorder = recorder
        self.watchdog_cycles = watchdog_cycles
        #: True when emission sites must construct events.
        self.tracing = sink is not None or recorder is not None
        #: True when the core must run the per-cycle hooks.
        self.active = (
            self.tracing or interval is not None or watchdog_cycles is not None
        )
        self.now = 0
        self._progress_cycle = 0
        self._progress_value = -1

    # ------------------------------------------------------------- emission
    def emit(
        self,
        kind: EventKind,
        cycle: int,
        tid: int = -1,
        pc: int = -1,
        seq: int = -1,
        **data,
    ) -> None:
        """Record one event (callers must already have checked ``tracing``)."""
        event = TraceEvent(cycle, kind, tid, pc, seq, data or None)
        if self.sink is not None:
            self.sink.emit(event)
        if self.recorder is not None:
            self.recorder.push(event)

    # ------------------------------------------------------------ lifecycle
    def begin_cycle(self, cycle: int) -> None:
        self.now = cycle

    def end_cycle(self, core) -> None:
        interval = self.interval
        if interval is not None and core.cycle >= interval.next_cycle:
            interval.sample(core)
        watchdog = self.watchdog_cycles
        if watchdog is not None:
            progress = core.stats.committed_thread_insts
            if progress != self._progress_value:
                self._progress_value = progress
                self._progress_cycle = core.cycle
            elif core.cycle - self._progress_cycle >= watchdog:
                self._fire_watchdog(core, watchdog)

    def _fire_watchdog(self, core, watchdog: int) -> None:
        message = (
            f"no instruction committed in {watchdog} cycles "
            f"(cycle {core.cycle}, {self._progress_value} thread-insts "
            f"committed so far): deadlock or livelock"
        )
        if self.tracing:
            self.emit(EventKind.WATCHDOG, core.cycle, stalled_cycles=watchdog)
        dump = None
        if self.recorder is not None:
            dump = self.recorder.dump(core, error=message)
        raise WatchdogError(message, dump)

    def finalize(self, core) -> None:
        if self.interval is not None:
            self.interval.flush(core)


#: Shared inert observer: ``active`` and ``tracing`` are False, so cores
#: constructed without observability never call into it.
NULL_OBS = Observer()


def campaign_observer(
    capacity: int = 2048, watchdog_cycles: int = DEFAULT_WATCHDOG_CYCLES
) -> Observer:
    """The observer campaign workers attach when failure dumps are enabled:
    a flight recorder plus the livelock watchdog, no full event sink.

    Returns a fast-capable :class:`~repro.obs.sampling.SampledObserver`,
    so campaign jobs dispatched to the fast engine keep the fast loop
    (rare-path events still reach the ring; the watchdog still fires).
    """
    from repro.obs.sampling import SampledObserver

    return SampledObserver(
        recorder=FlightRecorder(capacity), watchdog_cycles=watchdog_cycles
    )
