"""Fast-engine-native telemetry: the :class:`SampledObserver` contract.

The full :class:`~repro.obs.observer.Observer` instruments the reference
core's per-stage hooks, which the fast engine's monolithic loop bypasses
— historically any active observer dropped :class:`FastSMTCore` back to
the reference loop, making the engine we run at scale the one we could
not see into.  A :class:`SampledObserver` is the lightweight contract the
fast loop *can* honour natively:

* **interval metrics** — the loop checks one precomputed boundary cycle
  per iteration (``cycle >= next_obs``, a single int compare) and, at a
  boundary, flushes its localized counters into ``SimStats`` and calls
  :meth:`fast_tick`, which records the :class:`IntervalSample` against
  live state.  Samples land at exactly the same cycles, in the same
  deltas, as the reference loop's — the ``IntervalMetrics.totals()``
  equality guarantee extends to the fast engine (the differential suite
  holds both engines to identical sample rows);
* **flight recorder** — the reference-delegated rare paths (split, LVIP
  verify, control, hints, store commit, squash) and the memory/sync
  layers still emit events, so the ring captures the *interesting*
  transitions.  Steady-state fetch/commit events are not emitted (that is
  the point of the fast loop); post-mortem dumps say so via the partial
  ring;
* **watchdog** — forward progress is checked at boundary cycles instead
  of every cycle, so a livelock fires between one and two watchdog
  periods after the last commit (the reference fires at exactly one).
  The error, message, and flight dump are identical.

A full event ``sink`` is refused: steady-state events are exactly what
the fast loop does not emit, and a silently half-empty trace is worse
than a loud error — use the reference engine (or a plain ``Observer``,
which still forces the reference loop) for full event fidelity.
"""

from __future__ import annotations

from repro.obs.observer import Observer
from repro.obs.recorder import FlightRecorder

__all__ = ["SampledObserver", "NEVER"]

#: Boundary cycle meaning "no sampling consumer is attached": far beyond
#: any reachable ``max_cycles``, so the loop's compare never fires.
NEVER = 1 << 62


class SampledObserver(Observer):
    """An observer the fast engine runs natively (``fast_capable``).

    Accepts the interval collector, flight recorder, and watchdog of a
    plain :class:`Observer` — but no event sink.  Under the reference
    loop it behaves exactly like its base class (the per-cycle hooks are
    inherited unchanged), so one observer object works on both engines
    with identical interval samples either way.
    """

    __slots__ = ()

    #: The fast loop honours this observer natively instead of falling
    #: back to the reference loop.
    fast_capable = True

    def __init__(
        self,
        interval=None,
        recorder: FlightRecorder | None = None,
        watchdog_cycles: int | None = None,
        sink=None,
    ) -> None:
        if sink is not None:
            raise ValueError(
                "SampledObserver cannot carry an event sink: the fast "
                "loop does not emit steady-state events; use the "
                "reference engine for full event traces"
            )
        super().__init__(
            sink=None,
            interval=interval,
            recorder=recorder,
            watchdog_cycles=watchdog_cycles,
        )

    # ------------------------------------------------------ fast-loop hooks
    def begin_fast_run(self, core) -> int:
        """Arm the observer at fast-loop entry; returns the first boundary.

        Seeds the watchdog's progress state from the core's current
        counters (a resumed or pre-warmed core must not inherit a stale
        progress cycle) and returns the first cycle at which the loop
        must call :meth:`fast_tick`.
        """
        if self.watchdog_cycles is not None:
            self._progress_value = core.stats.committed_thread_insts
            # The reference watchdog arms at its first end_cycle — the
            # first simulated cycle, core.cycle + 1 from here — so a run
            # that never commits trips at the same cycle on both engines.
            self._progress_cycle = core.cycle + 1
        return self._next_boundary()

    def fast_tick(self, core) -> int:
        """One boundary visit: sample/watchdog, then the next boundary.

        The fast loop calls this only at boundary cycles, *after*
        flushing its localized counters into ``core.stats`` and stamping
        ``stats.cycles`` — so the interval sample reads exactly the state
        the reference loop's ``end_cycle`` would have seen.
        """
        cycle = core.cycle
        interval = self.interval
        if interval is not None and cycle >= interval.next_cycle:
            interval.sample(core)
        watchdog = self.watchdog_cycles
        if watchdog is not None:
            progress = core.stats.committed_thread_insts
            if progress != self._progress_value:
                self._progress_value = progress
                self._progress_cycle = cycle
            elif cycle - self._progress_cycle >= watchdog:
                self._fire_watchdog(core, watchdog)
        return self._next_boundary()

    def _next_boundary(self) -> int:
        """The next cycle at which the fast loop must call in."""
        boundary = NEVER
        interval = self.interval
        if interval is not None:
            boundary = interval.next_cycle
        watchdog = self.watchdog_cycles
        if watchdog is not None:
            deadline = self._progress_cycle + watchdog
            if deadline < boundary:
                boundary = deadline
        return boundary
