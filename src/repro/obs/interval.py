"""Interval metrics: periodic snapshots of rates and occupancies.

Every ``interval`` cycles (and once more at the end of the run, for the
final partial interval) the collector records the *delta* of the
interesting :class:`~repro.pipeline.stats.SimStats` counters over the
interval plus instantaneous structure occupancies.  Because samples store
deltas, their sums reconcile exactly with the run's final counters —
``IntervalMetrics.totals()`` returns those sums and the test suite holds
the simulator to the exact equality.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IntervalSample:
    """One interval's deltas plus end-of-interval occupancies."""

    start_cycle: int
    end_cycle: int
    # Counter deltas over [start_cycle, end_cycle].
    committed_thread_insts: int
    committed_entries: int
    fetched_thread_insts: int
    fetched_entries: int
    fetch_sessions: int
    fetched_by_mode: dict[str, int]
    branches_fetched: int
    branch_mispredicts: int
    fhb_searches: int
    fhb_hits: int
    # Instantaneous occupancies at end_cycle.
    rob_occupancy: int
    iq_occupancy: int
    lsq_occupancy: int
    decode_occupancy: int
    mshr_outstanding: int
    # Structural rates at end_cycle.
    rst_sharing: float

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def ipc(self) -> float:
        """Committed thread-instructions per cycle over the interval."""
        if not self.cycles:
            return 0.0
        return self.committed_thread_insts / self.cycles

    def fhb_hit_rate(self) -> float:
        """FHB CAM-search hit rate over the interval."""
        if not self.fhb_searches:
            return 0.0
        return self.fhb_hits / self.fhb_searches

    def mode_share(self) -> dict[str, float]:
        """Per-mode share of thread-instructions fetched this interval."""
        total = sum(self.fetched_by_mode.values())
        if not total:
            return {mode: 0.0 for mode in self.fetched_by_mode}
        return {
            mode: count / total for mode, count in self.fetched_by_mode.items()
        }

    def as_dict(self) -> dict:
        """JSON-ready row for the results time series."""
        return {
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "ipc": self.ipc(),
            "committed_thread_insts": self.committed_thread_insts,
            "committed_entries": self.committed_entries,
            "fetched_thread_insts": self.fetched_thread_insts,
            "fetched_entries": self.fetched_entries,
            "fetch_sessions": self.fetch_sessions,
            "fetched_by_mode": dict(self.fetched_by_mode),
            "branches_fetched": self.branches_fetched,
            "branch_mispredicts": self.branch_mispredicts,
            "fhb_searches": self.fhb_searches,
            "fhb_hits": self.fhb_hits,
            "fhb_hit_rate": self.fhb_hit_rate(),
            "rob_occupancy": self.rob_occupancy,
            "iq_occupancy": self.iq_occupancy,
            "lsq_occupancy": self.lsq_occupancy,
            "decode_occupancy": self.decode_occupancy,
            "mshr_outstanding": self.mshr_outstanding,
            "rst_sharing": self.rst_sharing,
        }


#: SimStats counters sampled as plain interval deltas.
_DELTA_FIELDS = (
    "committed_thread_insts",
    "committed_entries",
    "fetched_thread_insts",
    "fetched_entries",
    "fetch_sessions",
    "branches_fetched",
    "branch_mispredicts",
)


class IntervalMetrics:
    """Collects :class:`IntervalSample` rows every *interval* cycles."""

    def __init__(self, interval: int = 1000) -> None:
        if interval < 1:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.samples: list[IntervalSample] = []
        self.next_cycle = interval
        self._last_cycle = 0
        self._last: dict[str, int] | None = None

    # ----------------------------------------------------------- sampling
    def _snapshot(self, core) -> dict[str, int]:
        stats = core.stats
        snap = {name: getattr(stats, name) for name in _DELTA_FIELDS}
        for mode, count in stats.fetched_by_mode.items():
            snap[f"mode:{mode.value}"] = count
        searches = hits = 0
        for fhb in core.sync.fhbs:
            searches += fhb.searches
            hits += fhb.search_hits
        snap["fhb_searches"] = searches
        snap["fhb_hits"] = hits
        return snap

    def sample(self, core) -> IntervalSample:
        """Record one interval ending at the core's current cycle."""
        snap = self._snapshot(core)
        last = self._last or dict.fromkeys(snap, 0)
        delta = {key: snap[key] - last[key] for key in snap}
        row = IntervalSample(
            start_cycle=self._last_cycle,
            end_cycle=core.cycle,
            committed_thread_insts=delta["committed_thread_insts"],
            committed_entries=delta["committed_entries"],
            fetched_thread_insts=delta["fetched_thread_insts"],
            fetched_entries=delta["fetched_entries"],
            fetch_sessions=delta["fetch_sessions"],
            fetched_by_mode={
                key[len("mode:"):]: value
                for key, value in delta.items()
                if key.startswith("mode:")
            },
            branches_fetched=delta["branches_fetched"],
            branch_mispredicts=delta["branch_mispredicts"],
            fhb_searches=delta["fhb_searches"],
            fhb_hits=delta["fhb_hits"],
            rob_occupancy=len(core.rob),
            iq_occupancy=len(core.iq),
            lsq_occupancy=len(core.lsq),
            decode_occupancy=len(core.decode_buffer),
            mshr_outstanding=core.hierarchy.mshr.outstanding(),
            rst_sharing=core.rst.sharing_fraction(core.num_threads),
        )
        self.samples.append(row)
        self._last = snap
        self._last_cycle = core.cycle
        self.next_cycle = (core.cycle // self.interval + 1) * self.interval
        return row

    def flush(self, core) -> None:
        """Close out the final partial interval (end of run)."""
        if core.cycle > self._last_cycle:
            self.sample(core)

    # ------------------------------------------------------ reconciliation
    def totals(self) -> dict:
        """Sum of every per-interval delta, for reconciliation.

        After :meth:`flush`, these sums equal the run's final SimStats
        counters exactly — any mismatch means a sample was skipped or a
        counter was rewound mid-run.
        """
        totals = {name: 0 for name in _DELTA_FIELDS}
        totals["fetched_by_mode"] = {}
        totals["fhb_searches"] = 0
        totals["fhb_hits"] = 0
        for row in self.samples:
            for name in _DELTA_FIELDS:
                totals[name] += getattr(row, name)
            for mode, count in row.fetched_by_mode.items():
                totals["fetched_by_mode"][mode] = (
                    totals["fetched_by_mode"].get(mode, 0) + count
                )
            totals["fhb_searches"] += row.fhb_searches
            totals["fhb_hits"] += row.fhb_hits
        return totals

    def reconcile(self, stats) -> list[str]:
        """Compare :meth:`totals` against final *stats*; returns mismatches."""
        totals = self.totals()
        problems = []
        for name in _DELTA_FIELDS:
            want = getattr(stats, name)
            got = totals[name]
            if got != want:
                problems.append(f"{name}: intervals sum {got} != final {want}")
        for mode, want in stats.fetched_by_mode.items():
            got = totals["fetched_by_mode"].get(mode.value, 0)
            if got != want:
                problems.append(
                    f"fetched_by_mode[{mode.value}]: intervals sum {got} != "
                    f"final {want}"
                )
        return problems

    def rows(self) -> list[dict]:
        """The time series as JSON-ready rows."""
        return [sample.as_dict() for sample in self.samples]
