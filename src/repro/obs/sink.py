"""Trace sinks: where emitted events go.

A sink is anything with an ``emit(event)`` method.  The repository ships
two: :class:`MemorySink` (an unbounded or capped in-memory list, the
default for interactive tracing and tests) and :class:`TeeSink` (fan-out
to several sinks).  The *absence* of a sink is the no-op case — the
observer skips event construction entirely — so there is no NullSink
object on the hot path.
"""

from __future__ import annotations

from repro.obs.events import EventKind, TraceEvent


class MemorySink:
    """Collect events in a list, optionally capped.

    With ``capacity`` set, the *oldest* events are dropped once the cap is
    reached (the list behaves like a cheap ring); ``dropped`` counts them
    so consumers can tell a truncated trace from a complete one.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("sink capacity must be positive")
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        events = self.events
        events.append(event)
        if self.capacity is not None and len(events) > self.capacity:
            # Trim in chunks so the amortised cost stays O(1) per event.
            excess = len(events) - self.capacity
            del events[:excess]
            self.dropped += excess

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All collected events of one kind, in emission order."""
        return [event for event in self.events if event.kind is kind]

    def counts(self) -> dict[str, int]:
        """Event tally per kind value."""
        tally: dict[str, int] = {}
        for event in self.events:
            key = event.kind.value
            tally[key] = tally.get(key, 0) + 1
        return tally


class TeeSink:
    """Forward every event to several downstream sinks."""

    def __init__(self, *sinks) -> None:
        self.sinks = list(sinks)

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)
