"""Typed cycle-level trace events.

Every observable action in the simulator maps to one :class:`EventKind`;
an emitted :class:`TraceEvent` carries the cycle it happened in, the most
useful scalar coordinates (thread, PC, fetch sequence number), and a small
free-form payload for kind-specific detail.  Events are deliberately tiny
— the flight recorder keeps thousands of them in a ring buffer and the
Chrome exporter serialises them one-to-one — and are only ever constructed
when a sink or recorder is attached, so the disabled simulator pays
nothing for them.
"""

from __future__ import annotations

import enum


class EventKind(enum.Enum):
    """Taxonomy of traced simulator events."""

    # Front end.
    FETCH = "fetch"  # one fetch session of one thread group
    MODE = "mode"  # sync FSM transition (catchup enter/exit)
    MERGE = "merge"  # two groups remerged at equal PCs
    SPLIT = "split"  # a group split on a control divergence
    MISPREDICT = "mispredict"  # control resolved against the prediction
    HINT = "hint"  # software remerge hint park/release

    # Mid pipeline.
    RENAME_STALL = "rename_stall"  # dispatch blocked, with the resource
    ISSUE = "issue"  # instruction sent to a functional unit
    COMMIT = "commit"  # instruction retired for all owners
    SQUASH = "squash"  # thread-selective rollback (LVIP)

    # Memory system.
    CACHE_MISS = "cache_miss"  # L1 miss (instruction or data side)
    MSHR_ALLOC = "mshr_alloc"  # new outstanding-miss entry allocated
    MSHR_FULL = "mshr_full"  # request bounced off a full MSHR file
    MEM_FILL = "mem_fill"  # outstanding miss completed (L2/DRAM return)
    STORE_FORWARD = "store_forward"  # load served by an older store

    # Meta.
    WATCHDOG = "watchdog"  # no-forward-progress watchdog fired


class TraceEvent:
    """One traced occurrence.

    ``tid`` is the acting hardware thread (a group's leader for group-level
    events) or -1; ``pc`` and ``seq`` are -1 when not meaningful for the
    kind.  ``data`` holds kind-specific extras (masks, reasons, latencies).
    """

    __slots__ = ("cycle", "kind", "tid", "pc", "seq", "data")

    def __init__(
        self,
        cycle: int,
        kind: EventKind,
        tid: int = -1,
        pc: int = -1,
        seq: int = -1,
        data: dict | None = None,
    ) -> None:
        self.cycle = cycle
        self.kind = kind
        self.tid = tid
        self.pc = pc
        self.seq = seq
        self.data = data

    def as_dict(self) -> dict:
        """JSON-ready representation (used by dumps and the exporter)."""
        record = {"cycle": self.cycle, "kind": self.kind.value}
        if self.tid >= 0:
            record["tid"] = self.tid
        if self.pc >= 0:
            record["pc"] = self.pc
        if self.seq >= 0:
            record["seq"] = self.seq
        if self.data:
            record.update(self.data)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" {self.data}" if self.data else ""
        return (
            f"<{self.kind.value}@{self.cycle} tid={self.tid} pc={self.pc} "
            f"seq={self.seq}{extra}>"
        )
