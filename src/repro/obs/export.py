"""Chrome ``trace_event`` export (loadable in Perfetto / chrome://tracing).

Events become instant events (phase ``"i"``) on one track per hardware
thread; interval samples become counter tracks (phase ``"C"``) for IPC and
structure occupancies.  One simulated cycle maps to one microsecond of
trace time, so Perfetto's time axis reads directly as cycles.

The JSON Object Format variant is produced (``{"traceEvents": [...]}``)
because it allows metadata alongside the event array.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import TraceEvent

#: Process id used for all simulator tracks.
_PID = 1
#: Track id for events not attributable to one hardware thread.
_MACHINE_TRACK = 99


def chrome_trace_events(events) -> list[dict]:
    """Convert :class:`TraceEvent` objects to ``traceEvents`` entries."""
    rows = []
    for event in events:
        args = {}
        if event.pc >= 0:
            args["pc"] = event.pc
        if event.seq >= 0:
            args["seq"] = event.seq
        if event.data:
            args.update(event.data)
        rows.append(
            {
                "name": event.kind.value,
                "cat": "sim",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": event.cycle,
                "pid": _PID,
                "tid": event.tid if event.tid >= 0 else _MACHINE_TRACK,
                "args": args,
            }
        )
    return rows


def chrome_counter_events(samples) -> list[dict]:
    """Convert interval samples to Chrome counter (``"C"``) entries."""
    rows = []
    for sample in samples:
        ts = sample.end_cycle
        rows.append(
            {
                "name": "ipc",
                "ph": "C",
                "ts": ts,
                "pid": _PID,
                "args": {"ipc": sample.ipc()},
            }
        )
        rows.append(
            {
                "name": "occupancy",
                "ph": "C",
                "ts": ts,
                "pid": _PID,
                "args": {
                    "rob": sample.rob_occupancy,
                    "iq": sample.iq_occupancy,
                    "lsq": sample.lsq_occupancy,
                    "mshr": sample.mshr_outstanding,
                },
            }
        )
        rows.append(
            {
                "name": "fetch_mode_share",
                "ph": "C",
                "ts": ts,
                "pid": _PID,
                "args": dict(sample.mode_share()),
            }
        )
    return rows


def chrome_trace(events, samples=(), metadata: dict | None = None) -> dict:
    """Build a complete Chrome trace document."""
    trace_events = chrome_trace_events(events)
    trace_events.extend(chrome_counter_events(samples))
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro (Minimal Multi-Threading, MICRO 2010)",
            "time_unit": "1 ts = 1 simulated cycle",
        },
    }
    if metadata:
        document["otherData"].update(metadata)
    return document


def write_chrome_trace(
    path: str | Path, events, samples=(), metadata: dict | None = None
) -> Path:
    """Write a Perfetto-loadable trace for *events*/*samples* to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = chrome_trace(events, samples, metadata)
    path.write_text(json.dumps(document) + "\n")
    return path


def load_chrome_trace(path: str | Path) -> dict:
    """Read back a written trace (round-trip checks, tooling)."""
    return json.loads(Path(path).read_text())


def validate_chrome_trace(document: dict) -> list[str]:
    """Schema-check a trace document; returns the list of problems.

    Checks the subset of the Trace Event Format that Perfetto requires:
    a ``traceEvents`` array whose entries carry ``name``/``ph``/``ts``/
    ``pid``, instants additionally a ``tid``, counters numeric ``args``.
    """
    problems = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, row in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid"):
            if key not in row:
                problems.append(f"{where}: missing {key!r}")
        phase = row.get("ph")
        if phase not in ("i", "C", "X", "B", "E", "M"):
            problems.append(f"{where}: unsupported phase {phase!r}")
        if phase == "i" and "tid" not in row:
            problems.append(f"{where}: instant event without tid")
        if phase == "C":
            args = row.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter without args")
            elif not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                problems.append(f"{where}: non-numeric counter value")
        if not isinstance(row.get("ts"), (int, float)):
            problems.append(f"{where}: non-numeric ts")
    return problems


def events_from_dicts(rows) -> list[TraceEvent]:
    """Rebuild TraceEvent objects from ``as_dict`` rows (dump tooling)."""
    from repro.obs.events import EventKind

    events = []
    for row in rows:
        data = {
            key: value
            for key, value in row.items()
            if key not in ("cycle", "kind", "tid", "pc", "seq")
        }
        events.append(
            TraceEvent(
                row["cycle"],
                EventKind(row["kind"]),
                row.get("tid", -1),
                row.get("pc", -1),
                row.get("seq", -1),
                data or None,
            )
        )
    return events
