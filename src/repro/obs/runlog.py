"""Structured campaign run-log: one JSONL lifecycle record per event.

Every campaign writes an append-only JSONL file next to its result cache
(one JSON object per line, flushed per event so a killed campaign still
leaves a readable prefix).  The stream records the full job lifecycle —
``campaign_begin``, ``job_cache_hit``, ``job_started``, ``job_retried``,
``job_finished``, ``job_failed``, ``campaign_end`` — with wall-clock,
peak-RSS (bytes), engine, and attempt fields, which is exactly the
telemetry the future campaign daemon (ROADMAP item 2) needs to stream to
clients.  :func:`read_runlog` reads a file back for the test suite and
post-hoc tooling.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["RunLog", "read_runlog"]


class RunLog:
    """Append-only JSONL event log (flushed per event).

    Wall-clock timestamps are intentional here: the run-log records *host*
    lifecycle facts, not simulated behaviour, and lives in ``repro.obs``
    with the other host-side measurement layers (outside the determinism
    lint's simulator scope).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def emit(self, event: str, **fields) -> None:
        """Append one lifecycle record (no-op after :meth:`close`)."""
        if self._fh is None:
            return
        record = {"ts": time.time(), "event": event}
        record.update(fields)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> RunLog:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_runlog(path: str | Path) -> list[dict]:
    """Parse a run-log file back into its records (skips blank lines)."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
