"""Labelled metrics registry with Prometheus text exposition.

The wire format for the future campaign daemon (ROADMAP item 2): counters,
gauges, and histograms keyed by ``(name, labels)``, rendered in the
Prometheus text exposition format (``# HELP``/``# TYPE`` headers, one
``name{label="value"} value`` line per series, cumulative histogram
buckets with ``+Inf``).  Dependency-free on purpose — the daemon can
serve :meth:`MetricsRegistry.render` straight over HTTP, and tests can
string-match it today.
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds-flavoured, like Prometheus' own).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyz" "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
               "0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _series(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{inner}}}"


class _Metric:
    """Shared bookkeeping: a family of series under one name."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...]):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {sorted(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _labels_of(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        lines.extend(self._render_series())
        return lines

    def _render_series(self) -> list[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(self._key(labels), 0)

    def _render_series(self) -> list[str]:
        return [
            f"{_series(self.name, self._labels_of(key))} "
            f"{_format_value(value)}"
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._series.get(self._key(labels), 0)

    def _render_series(self) -> list[str]:
        return [
            f"{_series(self.name, self._labels_of(key))} "
            f"{_format_value(value)}"
            for key, value in sorted(self._series.items())
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._series[key] = state
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state["counts"][index] += 1
        state["sum"] += value
        state["count"] += 1

    def _render_series(self) -> list[str]:
        lines = []
        for key, state in sorted(self._series.items()):
            labels = self._labels_of(key)
            for bound, count in zip(self.buckets, state["counts"]):
                # Bucket bounds keep their float spelling (le="1.0", not
                # le="1"), matching the standard Prometheus clients.
                bucket_labels = dict(labels, le=repr(bound))
                lines.append(
                    f"{_series(self.name + '_bucket', bucket_labels)} {count}"
                )
            inf_labels = dict(labels, le="+Inf")
            lines.append(
                f"{_series(self.name + '_bucket', inf_labels)} "
                f"{state['count']}"
            )
            lines.append(
                f"{_series(self.name + '_sum', labels)} "
                f"{_format_value(state['sum'])}"
            )
            lines.append(
                f"{_series(self.name + '_count', labels)} {state['count']}"
            )
        return lines


class MetricsRegistry:
    """A named collection of metrics with one text exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls, name, help, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    f"type or label set"
                )
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name, help="", labelnames=()) -> Counter:
        """Get-or-create a counter (idempotent per name)."""
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        """Get-or-create a gauge."""
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        """Get-or-create a histogram."""
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def render(self) -> str:
        """The full Prometheus text exposition (trailing newline included)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n" if lines else ""
