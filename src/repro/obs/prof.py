"""Host self-profiler: where do the remaining host-microseconds go?

The fast engine's cost model is "one monolithic loop plus a handful of
reference-delegated rare paths" — so the question ROADMAP item 1 (the
compiled kernel) needs answered is exactly *how much wall-clock is spent
in the loop's own bytecode vs. each delegated path*.  The
:class:`HostProfiler` answers it without touching the simulator:

* it wraps the six delegated rare paths (split, LVIP verify, control,
  hints, store commit, squash) and the oracle refill on one core
  instance, timing each call with :func:`time.perf_counter`;
* attribution is **exclusive** (self-time): a delegated path that calls
  another wrapped path — LVIP verify invoking squash, say — only keeps
  the time it spent itself;
* everything not inside a wrapped region is the **residual**: the fast
  loop's own bytecode (or, on the reference engine, the staged step
  machinery).

Wrapping is per-instance monkey-patching (plus one module global for
``squash_thread``), so a profiled core runs bit-identically — the wrapped
functions *are* the originals — just slower by the timer overhead.
Attach **before** :meth:`~repro.pipeline.fast.FastSMTCore.run`: the fast
loop hoists ``self._refill`` once at loop entry.

This module lives in ``repro.obs`` deliberately: ``tools/simlint.py``
bans wall-clock calls inside the simulator packages, and host-side
profiling is exactly the measurement layer that ban protects.
"""

from __future__ import annotations

import time
from pathlib import Path

__all__ = ["HostProfiler", "PROFILE_REGIONS"]

#: (region label, core attribute) for the instance-patched rare paths.
PROFILE_REGIONS = (
    ("split", "_split"),
    ("lvip_verify", "_verify_lvip"),
    ("control", "_handle_control"),
    ("hints", "_handle_hint"),
    ("oracle_refill", "_refill"),
)

#: Region label for the fast loop's own (unattributed) time.
RESIDUAL_REGION = "fast_loop"


class HostProfiler:
    """Wall-clock attribution across a core's reference-delegated paths.

    Usage::

        prof = HostProfiler()
        stats = prof.run(core)          # attach -> core.run() -> detach
        for row in prof.report_rows():  # sorted, with the residual row
            ...

    ``attach``/``detach`` are exposed separately for callers that manage
    the run themselves.  One profiler instance profiles one run; create a
    fresh one per measurement.
    """

    def __init__(self, record_slices: bool = False, max_slices: int = 100_000):
        #: Exclusive (self) seconds per region.
        self.totals: dict[str, float] = {}
        #: Invocation count per region.
        self.counts: dict[str, int] = {}
        #: Total wall seconds of the profiled ``run()`` (set by :meth:`run`).
        self.total_wall: float = 0.0
        self.max_slices = max_slices
        self._slices: list[tuple[str, float, float]] | None = (
            [] if record_slices else None
        )
        self._stack: list[list[float]] = []
        self._core = None
        self._saved_module_squash = None
        self._origin: float | None = None

    # ----------------------------------------------------------- wrapping
    def _wrap(self, region: str, fn):
        perf = time.perf_counter
        stack = self._stack
        totals = self.totals
        counts = self.counts
        slices = self._slices

        def wrapper(*args, **kwargs):
            frame = [perf(), 0.0]
            stack.append(frame)
            try:
                return fn(*args, **kwargs)
            finally:
                end = perf()
                stack.pop()
                elapsed = end - frame[0]
                # Exclusive attribution: hand inclusive time up to the
                # enclosing wrapped frame, keep only our own.
                totals[region] = totals.get(region, 0.0) + elapsed - frame[1]
                counts[region] = counts.get(region, 0) + 1
                if stack:
                    stack[-1][1] += elapsed
                if slices is not None and len(slices) < self.max_slices:
                    slices.append((region, frame[0], end))

        return wrapper

    def attach(self, core) -> None:
        """Instrument *core* in place (call before ``core.run()``)."""
        if self._core is not None:
            raise RuntimeError("HostProfiler is already attached")
        self._core = core
        for region, attr in PROFILE_REGIONS:
            fn = getattr(core, attr, None)
            if fn is None:
                # Engine-specific region (the oracle refill exists only
                # on the fast core); reference cores simply lack it.
                continue
            setattr(core, attr, self._wrap(region, fn))
        core.lsq.try_commit_store = self._wrap(
            "store_commit", core.lsq.try_commit_store
        )
        # squash_thread is called as a module global from the issue stage
        # (the LVIP mispredict path), not through the core — patch it at
        # its one resolution site and restore on detach.
        from repro.pipeline import issue_stage

        self._saved_module_squash = issue_stage.squash_thread
        issue_stage.squash_thread = self._wrap(
            "squash", issue_stage.squash_thread
        )

    def detach(self) -> None:
        """Remove the instrumentation, restoring the original methods."""
        core = self._core
        if core is None:
            return
        for _region, attr in PROFILE_REGIONS:
            if attr in core.__dict__:
                delattr(core, attr)
        if "try_commit_store" in core.lsq.__dict__:
            del core.lsq.try_commit_store
        from repro.pipeline import issue_stage

        if self._saved_module_squash is not None:
            issue_stage.squash_thread = self._saved_module_squash
            self._saved_module_squash = None
        self._core = None

    # ---------------------------------------------------------------- run
    def run(self, core):
        """Profile one full ``core.run()``; returns its ``SimStats``."""
        perf = time.perf_counter
        self.attach(core)
        self._origin = perf()
        try:
            stats = core.run()
        finally:
            self.total_wall = perf() - self._origin
            self.detach()
        return stats

    # ------------------------------------------------------------ reports
    def residual(self) -> float:
        """Seconds not attributed to any wrapped region (the loop itself)."""
        return max(0.0, self.total_wall - sum(self.totals.values()))

    def report_rows(self) -> list[dict]:
        """Breakdown rows (region, calls, self_s, share), largest first.

        Includes a synthetic ``fast_loop`` residual row when
        :meth:`run` measured a total wall time.
        """
        rows = [
            {
                "region": region,
                "calls": self.counts.get(region, 0),
                "self_s": seconds,
                "share": seconds / self.total_wall if self.total_wall else 0.0,
            }
            for region, seconds in self.totals.items()
        ]
        if self.total_wall:
            residual = self.residual()
            rows.append(
                {
                    "region": RESIDUAL_REGION,
                    "calls": 1,
                    "self_s": residual,
                    "share": residual / self.total_wall,
                }
            )
        rows.sort(key=lambda row: row["self_s"], reverse=True)
        return rows

    def as_dict(self) -> dict:
        """JSON-ready summary (CLI ``--json`` export)."""
        return {
            "total_wall_s": self.total_wall,
            "residual_s": self.residual(),
            "regions": self.report_rows(),
        }

    # ----------------------------------------------------- Perfetto export
    def chrome_trace(self) -> dict:
        """Recorded slices as a Chrome/Perfetto trace document.

        Requires ``record_slices=True``; region invocations become ``"X"``
        complete events (host microseconds on the time axis).
        """
        if self._slices is None:
            raise ValueError(
                "profiler was constructed without record_slices=True"
            )
        origin = self._origin
        if origin is None:
            origin = min((start for _r, start, _e in self._slices), default=0.0)
        rows = [
            {
                "name": region,
                "cat": "host",
                "ph": "X",
                "ts": (start - origin) * 1e6,
                "dur": (end - start) * 1e6,
                "pid": 1,
                "tid": 1,
            }
            for region, start, end in self._slices
        ]
        return {
            "traceEvents": rows,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro host self-profiler",
                "time_unit": "1 ts = 1 host microsecond",
            },
        }

    def write_chrome_trace(self, path) -> Path:
        """Write :meth:`chrome_trace` as JSON to *path*."""
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.chrome_trace()) + "\n")
        return path
