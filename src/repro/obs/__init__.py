"""``repro.obs`` — observability for the MMT simulator and its harness.

Simulation-side layers, all optional and all off by default:

* **Structured event tracing** — typed :class:`TraceEvent` records emitted
  from every pipeline stage, the sync FSM, and the memory hierarchy into a
  pluggable sink;
* **Interval metrics** — periodic delta snapshots (IPC, fetch-mode share,
  occupancies, FHB hit rate, RST sharing) whose sums reconcile exactly
  with the final :class:`~repro.pipeline.stats.SimStats`;
* **Flight recorder + watchdog** — a bounded ring of recent events and a
  no-forward-progress watchdog that turns hung runs into diagnosable JSON
  dumps;
* **Sampled telemetry** — :class:`SampledObserver`, the lightweight
  contract the fast engine honours natively (interval metrics, recorder,
  watchdog — no event sink) without dropping back to the reference loop.

Host-side layers (wall-clock is fair game here — the determinism lint
only bans it inside the simulator packages):

* **Host self-profiler** — :class:`HostProfiler`, exclusive wall-clock
  attribution across the fast engine's reference-delegated rare paths;
* **Campaign run-log** — :class:`RunLog`, a flushed JSONL lifecycle log
  per campaign;
* **Metrics registry** — :class:`MetricsRegistry`, labelled
  counters/gauges/histograms with Prometheus text exposition.

Attach an :class:`Observer` (or :class:`SampledObserver`) to a core via
its ``obs`` argument; export collected events with
:func:`~repro.obs.export.write_chrome_trace` for Perfetto.

The module also carries the per-process failure-dump path used by campaign
workers: the parent chooses the path per job, the worker stores it here,
and the simulation runner writes the flight-recorder dump to it when the
run dies.
"""

from __future__ import annotations

from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.interval import IntervalMetrics, IntervalSample
from repro.obs.observer import NULL_OBS, Observer, campaign_observer
from repro.obs.prof import HostProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.runlog import RunLog
from repro.obs.sampling import SampledObserver
from repro.obs.recorder import (
    DEFAULT_WATCHDOG_CYCLES,
    FlightRecorder,
    WatchdogError,
    core_snapshot,
    load_dump,
    write_dump,
)
from repro.obs.sink import MemorySink, TeeSink

__all__ = [
    "DEFAULT_WATCHDOG_CYCLES",
    "EventKind",
    "FlightRecorder",
    "HostProfiler",
    "IntervalMetrics",
    "IntervalSample",
    "MemorySink",
    "MetricsRegistry",
    "NULL_OBS",
    "Observer",
    "RunLog",
    "SampledObserver",
    "TeeSink",
    "TraceEvent",
    "WatchdogError",
    "campaign_observer",
    "chrome_trace",
    "core_snapshot",
    "get_failure_dump_path",
    "load_chrome_trace",
    "load_dump",
    "set_failure_dump_path",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_dump",
]

#: Per-process failure-dump destination (campaign workers only).
_FAILURE_DUMP_PATH: str | None = None


def set_failure_dump_path(path: str | None) -> None:
    """Set where this process should write a flight dump on failure."""
    global _FAILURE_DUMP_PATH
    _FAILURE_DUMP_PATH = path


def get_failure_dump_path() -> str | None:
    """The failure-dump path for this process, or None."""
    return _FAILURE_DUMP_PATH
