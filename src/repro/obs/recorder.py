"""Flight recorder: a bounded ring of recent events plus state dumps.

The recorder keeps the last N emitted events.  When a run dies — the
no-forward-progress watchdog, a :class:`SimulationInvariantError`, an
:class:`ExecutionError` trap, or an external kill — :meth:`dump` freezes
the ring together with the machine's architectural snapshot (per-stage
occupancy, thread/group state, in-flight instructions) into one JSON-able
document, so a hung campaign job becomes a diagnosable artifact instead of
a bare timeout.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.obs.events import TraceEvent

#: Cycles without a single committed thread-instruction before the
#: watchdog declares a livelock.  The longest legitimate commit gap is a
#: dependent chain of DRAM misses (hundreds of cycles); four orders of
#: magnitude above that is unambiguous.
DEFAULT_WATCHDOG_CYCLES = 50_000


class WatchdogError(RuntimeError):
    """The simulation stopped making forward progress.

    ``dump`` carries the flight-recorder document captured at the moment
    the watchdog fired (None when no recorder was attached).
    """

    def __init__(self, message: str, dump: dict | None = None) -> None:
        super().__init__(message)
        self.dump = dump


class FlightRecorder:
    """Ring buffer of the most recent :class:`TraceEvent` objects."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.pushed = 0

    def push(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.pushed += 1

    def __len__(self) -> int:
        return len(self.events)

    # ----------------------------------------------------------------- dump
    def dump(self, core, error: str | None = None) -> dict:
        """Freeze the ring plus *core*'s state into a JSON-able document."""
        document = core_snapshot(core)
        document["error"] = error
        document["events_recorded"] = self.pushed
        document["events_kept"] = len(self.events)
        document["events"] = [event.as_dict() for event in self.events]
        return document


def core_snapshot(core) -> dict:
    """Architectural snapshot of a (possibly wedged) SMTCore."""
    threads = []
    for tid in range(core.num_threads):
        waiting = core.stalled_on_branch[tid]
        threads.append(
            {
                "tid": tid,
                "icount": core.icount[tid],
                "fetch_stall_until": core.fetch_stall_until[tid],
                "stalled_on_branch_seq": None if waiting is None else waiting.seq,
                "fetch_done": core.fetch_done[tid],
                "finished": core.finished[tid],
                "replay_depth": len(core.replay[tid]),
                "next_pc": _peek_pc_safe(core, tid),
            }
        )
    groups = [
        {
            "gid": group.gid,
            "mask": group.mask,
            "mode": core.sync.mode_of(group).value,
            "branches_since_split": group.branches_since_split,
            "drain_pending": group.drain_pending,
        }
        for group in core.sync.active_groups()
    ]
    in_flight = [
        {
            "seq": di.seq,
            "pc": di.pc,
            "op": di.inst.op.value,
            "itid": di.itid,
            "state": di.state.value,
            "mispredicted": di.mispredicted,
        }
        for di in core.rob
    ]
    return {
        "cycle": core.cycle,
        "committed_thread_insts": core.stats.committed_thread_insts,
        "occupancy": {
            "rob": len(core.rob),
            "iq": len(core.iq),
            "lsq": len(core.lsq),
            "decode_buffer": len(core.decode_buffer),
            "mshr_outstanding": core.hierarchy.mshr.outstanding(),
            "phys_regs_free": core.regfile.free_count(),
        },
        "threads": threads,
        "groups": groups,
        "in_flight": in_flight,
    }


def _peek_pc_safe(core, tid: int):
    """The thread's next fetch PC; never raises (snapshot must not fail)."""
    try:
        return core._peek_pc(tid)
    except Exception:  # pragma: no cover - defensive: wedged group state
        return None


def write_dump(document: dict, path: str | Path) -> Path:
    """Write a flight-recorder *document* to *path* as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_dump(path: str | Path) -> dict:
    """Read a dump written by :func:`write_dump`."""
    return json.loads(Path(path).read_text())
