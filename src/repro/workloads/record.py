"""Trace recording and replay: workloads generated from real runs.

``repro record`` runs one simulation point on the *reference* core with
the Observer attached and captures every per-thread commit: merged
commits (one event covering several threads) are expanded across their
thread mask, giving one committed-PC stream per context.  Each stream is
then windowed (``window`` PCs per window) and dictionary-compressed —
identical windows, *across threads as well as along one stream*, share a
token id — so the recorded artefact keeps exactly the structure MMT
exploits: threads that ran in lockstep carry identical token runs,
decohered stretches carry disjoint ones.

:class:`TraceReplayWorkload` compiles a recording back into a guest
program: a multi-threaded token-dispatch loop in which every context
walks its own token slice and executes a handler selected by the token's
low bits, with token-derived spin lengths.  Replaying thus reproduces the
recorded coherence structure — same-token sections re-merge, divergent
sections split — through the ordinary fetch/merge machinery, and the
program is subject to the assembler, linter and value oracle like any
generated workload.

Recordings are content-addressed: :meth:`RecordedTrace.digest` hashes
the canonical JSON form, and the replay workload folds that digest into
campaign job tags so suites referencing a trace file are cache-correct
even if the file is moved or regenerated.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.config import MMTConfig, WorkloadType
from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE
from repro.obs import MemorySink, Observer
from repro.obs.events import EventKind
from repro.pipeline.config import MachineConfig
from repro.pipeline.smt import SMTCore
from repro.workloads.dsl import ProgramBuilder
from repro.workloads.engine import EngineBuild, Workload
from repro.workloads.generator import build_workload
from repro.workloads.profiles import get_profile

#: Recording format version (bump on incompatible schema changes).
FORMAT_VERSION = 1

#: Default committed-PC window length (one token per window).
DEFAULT_WINDOW = 32

#: Token-dispatch handlers in the replay program (must be a power of 2).
REPLAY_HANDLERS = 8

_SHARED_WORDS = 256
_OUT_WORDS = 16

# Replay register plan (self-contained program).
_R_CACC = (1, 2, 3, 4)
_R_PACC = (5, 6)
_R_TOKS = 9
_R_SHARED = 10
_R_SH = 11
_R_OUT = 12
_R_T0, _R_T1 = 14, 15
_R_TOK = 16
_R_I = 18
_R_TRIPS = 19
_R_TID = 20
_R_NCTX = 21
_R_DIV = 24
_R_CMP = 25


class RecordedTrace:
    """A windowed, token-compressed per-thread commit recording."""

    def __init__(
        self,
        app: str,
        config: str,
        threads: int,
        scale: float,
        window: int,
        source_digest: str,
        tokens: list[list[int]],
        window_count: int,
    ) -> None:
        self.app = app
        self.config = config
        self.threads = threads
        self.scale = scale
        self.window = window
        #: Digest of the recorded program image (provenance, not a key).
        self.source_digest = source_digest
        #: One token stream per context.
        self.tokens = tokens
        #: Number of distinct windows in the dictionary.
        self.window_count = window_count

    # ------------------------------------------------------- serialisation
    def to_json(self) -> str:
        """Canonical JSON (stable key order, stable layout): the digest
        and the golden byte-pins both hash exactly this text."""
        document = {
            "version": FORMAT_VERSION,
            "app": self.app,
            "config": self.config,
            "threads": self.threads,
            "scale": self.scale,
            "window": self.window,
            "source_digest": self.source_digest,
            "window_count": self.window_count,
            "tokens": self.tokens,
        }
        return json.dumps(document, indent=2, sort_keys=True) + "\n"

    def digest(self) -> str:
        """Content address of this recording."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_json(cls, text: str) -> "RecordedTrace":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not a recorded trace: {exc}") from exc
        if not isinstance(document, dict) or "tokens" not in document:
            raise ValueError("not a recorded trace: missing 'tokens'")
        version = document.get("version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"recorded trace format {version!r} unsupported "
                f"(expected {FORMAT_VERSION})"
            )
        tokens = [
            [int(token) for token in stream] for stream in document["tokens"]
        ]
        return cls(
            app=str(document["app"]),
            config=str(document["config"]),
            threads=int(document["threads"]),
            scale=float(document["scale"]),
            window=int(document["window"]),
            source_digest=str(document["source_digest"]),
            tokens=tokens,
            window_count=int(document["window_count"]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RecordedTrace":
        return cls.from_json(Path(path).read_text())


def record_trace(
    app: str,
    config: MMTConfig,
    threads: int,
    scale: float = 1.0,
    seed: int | None = None,
    window: int = DEFAULT_WINDOW,
    max_tokens: int | None = 4096,
) -> RecordedTrace:
    """Run *app* on the reference core and record per-thread commits.

    The recording engine is pinned to the reference :class:`SMTCore` —
    the proven oracle — so replay fixtures never inherit a fast-engine
    bug.  *max_tokens* bounds each context's token stream (the replay
    program's data segment grows linearly with it).
    """
    if window < 1:
        raise ValueError("window must be at least 1 PC")
    build = build_workload(get_profile(app), threads, scale=scale, seed=seed)
    obs = Observer(sink=MemorySink())
    core = SMTCore(
        MachineConfig(num_threads=max(2, threads)),
        config,
        build.job(),
        strict=True,
        obs=obs,
    )
    core.run()

    streams: list[list[int]] = [[] for _ in range(threads)]
    for event in obs.sink.events:
        if event.kind is not EventKind.COMMIT:
            continue
        # ``itid`` is the owner bitmask; ``threads`` is only the count.
        mask = event.data["itid"]
        for ctx in range(threads):
            if (mask >> ctx) & 1:
                streams[ctx].append(event.pc)

    token_of: dict[tuple[int, ...], int] = {}
    tokens: list[list[int]] = []
    for stream in streams:
        out = []
        for start in range(0, len(stream), window):
            piece = tuple(stream[start:start + window])
            out.append(token_of.setdefault(piece, len(token_of)))
        if max_tokens is not None:
            out = out[:max_tokens]
        tokens.append(out)
    return RecordedTrace(
        app=app,
        config=config.name,
        threads=threads,
        scale=scale,
        window=window,
        source_digest=build.program.digest(),
        tokens=tokens,
        window_count=len(token_of),
    )


class TraceReplayWorkload(Workload):
    """Replays a :class:`RecordedTrace` as a token-dispatch guest program.

    Multi-threaded convention: one shared image holds every context's
    token slice (padded with ``-1``); each context walks its own slice,
    dispatching on ``token & (REPLAY_HANDLERS - 1)`` through distinct
    handlers whose spin lengths derive from the token's upper bits.
    Contexts holding equal tokens at the same position execute identical
    paths (fetch-mergeable); unequal tokens force genuine divergence —
    the recorded coherence structure, replayed through the real FSM.
    """

    wtype = WorkloadType.MULTI_THREADED

    def __init__(self, trace: RecordedTrace, name: str | None = None) -> None:
        self.trace = trace
        self.name = name or f"replay-{trace.app}@{trace.digest()[:12]}"

    def valid_nctx(self, nctx: int) -> bool:
        return nctx == self.trace.threads

    def cache_token(self) -> str:
        return f"trace@{self.trace.digest()[:12]}"

    def build(
        self, nctx: int, scale: float = 1.0, seed: int | None = None
    ) -> EngineBuild:
        if not self.valid_nctx(nctx):
            raise ValueError(
                f"{self.name}: recorded with {self.trace.threads} threads, "
                f"cannot replay with {nctx}"
            )
        rng = self._rng(seed)
        streams = self.trace.tokens
        longest = max((len(s) for s in streams), default=0)
        trips = max(2, min(longest, int(round(longest * scale)) or longest))
        slice_len = max(trips, 2)
        flat: list[int] = []
        for stream in streams:
            padded = list(stream[:slice_len])
            padded += [-1] * (slice_len - len(padded))
            flat.extend(padded)

        b = ProgramBuilder(self.name)
        b.array(
            "shared_i",
            [rng.randrange(1, 1 << 20) for _ in range(_SHARED_WORDS)],
        )
        b.array("toks", flat)
        b.reserve("out", _OUT_WORDS * nctx)
        self._emit(b, slice_len, rng)
        return EngineBuild(
            self.name,
            nctx,
            self.wtype,
            b.build(),
            out_words=_OUT_WORDS,
            out_stride=_OUT_WORDS * WORD_SIZE,
        )

    def _emit(self, b: ProgramBuilder, slice_len: int, rng) -> None:
        b.inst(Opcode.TID, rd=_R_TID)
        b.inst(Opcode.NCTX, rd=_R_NCTX)
        b.la(_R_SHARED, "shared_i")
        b.la(_R_TOKS, "toks")
        b.la(_R_OUT, "out")
        # Per-context slices of the token and output arrays.
        b.alui(Opcode.SLLI, _R_T0, _R_TID, 3)
        b.li(_R_T1, slice_len)
        b.alu(Opcode.MUL, _R_T1, _R_T0, _R_T1)
        b.alu(Opcode.ADD, _R_TOKS, _R_TOKS, _R_T1)
        b.li(_R_T1, _OUT_WORDS)
        b.alu(Opcode.MUL, _R_T1, _R_T0, _R_T1)
        b.alu(Opcode.ADD, _R_OUT, _R_OUT, _R_T1)
        for index, reg in enumerate(_R_CACC):
            b.li(reg, 13 + 7 * index)
        for index, reg in enumerate(_R_PACC):
            b.alui(Opcode.ADDI, reg, _R_TID, 3 + index)
        b.li(_R_TRIPS, slice_len)
        b.li(_R_I, 0)

        b.label("main_loop")
        # Context-identical compute: a uniform-address shared load feeding
        # the common accumulators (the execute-identical stream).
        offset = rng.randrange(_SHARED_WORDS)
        b.alui(Opcode.SLLI, _R_T1, _R_I, 2)
        b.alui(Opcode.ADDI, _R_T1, _R_T1, offset)
        b.alui(Opcode.ANDI, _R_T1, _R_T1, _SHARED_WORDS - 1)
        b.alui(Opcode.SLLI, _R_T1, _R_T1, 3)
        b.alu(Opcode.ADD, _R_T1, _R_T1, _R_SHARED)
        b.load(_R_SH, _R_T1, disp=0)
        b.alu(Opcode.XOR, _R_CACC[0], _R_CACC[0], _R_SH)
        b.alu(Opcode.ADD, _R_CACC[1], _R_CACC[1], _R_SH)

        # This context's token for this position (private address chain).
        b.alui(Opcode.SLLI, _R_T1, _R_I, 3)
        b.alu(Opcode.ADD, _R_T1, _R_T1, _R_TOKS)
        b.load(_R_TOK, _R_T1, disp=0)
        skip = b.fresh_label("tok_skip")
        b.branch(Opcode.BLT, _R_TOK, 0, skip)  # -1 pads a finished stream

        b.alui(Opcode.ANDI, _R_T0, _R_TOK, REPLAY_HANDLERS - 1)
        labels = [b.fresh_label(f"tok_hnd{k}_") for k in range(REPLAY_HANDLERS)]
        join = b.fresh_label("tok_join")
        for k in range(1, REPLAY_HANDLERS):
            b.li(_R_CMP, k)
            b.branch(Opcode.BEQ, _R_T0, _R_CMP, labels[k])
        b.jump(labels[0])
        for k, label in enumerate(labels):
            b.label(label)
            acc = _R_PACC[k % len(_R_PACC)]
            for j in range(2 + k % 4):
                b.alui(Opcode.ADDI, acc, acc, k + j + 1)
                if j % 2:
                    b.alu(Opcode.XOR, acc, acc, _R_TOK)
            # Token-derived spin: path length varies with the recorded
            # window id, reproducing divergent path-length differences.
            b.alui(Opcode.SRLI, _R_DIV, _R_TOK, 3)
            b.alui(Opcode.ANDI, _R_DIV, _R_DIV, 3)
            b.alui(Opcode.ADDI, _R_DIV, _R_DIV, 1)
            spin = b.fresh_label(f"tok_spin{k}_")
            b.label(spin)
            b.alui(Opcode.ADDI, acc, acc, 1)
            b.alui(Opcode.ADDI, _R_DIV, _R_DIV, -1)
            b.branch(Opcode.BNE, _R_DIV, 0, spin)
            b.jump(join)
        b.label(join)
        # Remerge material: both sides of any divergence recompute the
        # same function of the context-identical loaded value.
        b.alui(Opcode.ADDI, _R_CACC[2], _R_SH, 21)
        b.label(skip)
        b.alui(Opcode.ADDI, _R_I, _R_I, 1)
        b.branch(Opcode.BLT, _R_I, _R_TRIPS, "main_loop")

        for offset, reg in enumerate(_R_CACC + _R_PACC):
            b.store(reg, _R_OUT, disp=offset * WORD_SIZE)
        b.halt()
