"""Request-engine workloads: dynamic mixes and server-style request streams.

The built-in applications (:mod:`repro.workloads.generator`) are fixed
synthetic SPMD kernels: their divergence statistics are stationary, so the
merge/split FSM settles into a steady state within a few hundred cycles.
This module adds the ``Req`` / :class:`ReqGenEngine` / :class:`Workload`
decomposition (the hopperkv driver shape, see ROADMAP item 3): an *engine*
generates an abstract request stream from a seed, and a *workload* compiles
that stream down to a guest :class:`~repro.isa.program.Program` — so the
assembler, the static linter and the value oracle apply unchanged, and the
whole pipeline (not a special replay mode) is what gets stressed.

Three engine families live behind one registry:

* :class:`DynamicWorkload` — phase-changing mixes (bursty divergence,
  gradual thread decoherence, lockstep→independent transitions) realised
  as per-section control streams for the standard generator body;
* :class:`RequestStreamWorkload` — server-style request streams over the
  message-passing SEND/TRECV channels: rank 0 dispatches typed requests
  from the other ranks and replies, the paper's "message passing"
  category under actual load;
* :class:`~repro.workloads.record.TraceReplayWorkload` — replays
  per-thread commit streams recorded from real runs (``repro record``);
  resolved lazily through ``trace:<path>`` registry names so campaign
  worker processes can reconstruct it from the job spec alone.

Everything is deterministic per ``(workload, nctx, scale, seed)``: builds
are bit-identical across processes, which the campaign cache and the
suite-level property tests rely on.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.config import WorkloadType
from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE, Program
from repro.pipeline.job import Job
from repro.workloads.dsl import ProgramBuilder
from repro.workloads.generator import (
    BODY_SECTIONS,
    CHECKSUM_WORDS,
    PRIV_WORDS,
    SHARED_WORDS,
    _emit_program,
)
from repro.workloads.profiles import AppProfile


# ------------------------------------------------------------------- model
@dataclass(frozen=True)
class Req:
    """One abstract request an engine emits.

    ``kind`` names the request family (a phase mode, a server request
    type), ``key`` orders it within the stream, and ``value`` carries the
    engine's payload — what it means is up to the workload compiling the
    stream (a divergence decision, a request operand, a trace token).
    """

    kind: str
    key: int
    value: int


class ReqGenEngine(ABC):
    """Generates a deterministic request stream from a seeded RNG."""

    @abstractmethod
    def requests(self, nctx: int, count: int, rng: random.Random) -> list[Req]:
        """*count* requests for an *nctx*-context run."""


class Workload(ABC):
    """A named generator of guest programs (one registry entry).

    Subclasses compile an engine's request stream into a
    :class:`EngineBuild`; the build carries everything the harness needs
    (job factories, output regions, oracle classification) so registry
    workloads are drop-in replacements for the built-in app profiles in
    campaigns, figures and the differential suites.
    """

    name: str
    #: Job convention of generated builds (drives oracle dispatch and
    #: whether the Limit configuration applies).
    wtype: WorkloadType

    @abstractmethod
    def build(
        self, nctx: int, scale: float = 1.0, seed: int | None = None
    ) -> "EngineBuild":
        """Deterministically generate a program for *nctx* contexts."""

    def valid_nctx(self, nctx: int) -> bool:
        """May this workload run with *nctx* hardware contexts?"""
        return nctx >= 1

    def cache_token(self) -> str:
        """Content token mixed into campaign job tags (trace digests);
        empty when (name, nctx, scale, seed) already pin the build."""
        return ""

    def _rng(self, seed: int | None) -> random.Random:
        # Seeding by (name, seed) keeps distinct workloads decorrelated
        # while staying bit-deterministic across processes (str seeding
        # hashes the text, never the interpreter's randomized hash()).
        return random.Random(f"{self.name}/{0 if seed is None else seed}")


class EngineBuild:
    """A compiled registry workload: program + job factories.

    Structurally compatible with
    :class:`~repro.workloads.generator.WorkloadBuild` (``program``,
    ``nctx``, ``per_instance_data``, ``job()``, ``limit_job()``,
    ``output_region()``) so the experiment/campaign layers treat both
    uniformly; ``wtype`` additionally records the job convention for
    oracle dispatch.
    """

    def __init__(
        self,
        name: str,
        nctx: int,
        wtype: WorkloadType,
        program: Program,
        per_instance_data: list[dict[int, int | float]] | None = None,
        out_words: int = CHECKSUM_WORDS,
        out_stride: int | None = None,
    ) -> None:
        self.name = name
        self.nctx = nctx
        self.wtype = wtype
        self.program = program
        self.per_instance_data = per_instance_data or [{}]
        #: Words per context in the ``out`` region.
        self.out_words = out_words
        #: Per-context byte stride inside a shared ``out`` array
        #: (multi-threaded jobs); ``None`` means private spaces.
        self.out_stride = out_stride

    def job(self) -> Job:
        if self.wtype is WorkloadType.MULTI_THREADED:
            return Job.multi_threaded(self.name, self.program, self.nctx)
        if self.wtype is WorkloadType.MESSAGE_PASSING:
            return Job.message_passing(
                self.name, self.program, [{}] * self.nctx
            )
        return Job.multi_execution(
            self.name, self.program, self.per_instance_data
        )

    def limit_job(self) -> Job:
        if self.wtype is WorkloadType.MESSAGE_PASSING:
            raise ValueError(
                f"workload {self.name!r} is message-passing: identical "
                "Limit clones would all wait on rank-0 traffic that never "
                "arrives; drop the Limit configuration for this scenario"
            )
        return Job.limit_clone(
            self.name, self.program, self.nctx, soft_nctx=self.nctx
        )

    def output_region(self, job: Job) -> list[list[int | float]]:
        base = self.program.symbol("out")
        outputs = []
        for ctx, space in enumerate(job.address_spaces):
            offset = (
                ctx * (self.out_stride or 0)
                if job.wtype is WorkloadType.MULTI_THREADED
                else 0
            )
            outputs.append(space.read_array(base + offset, self.out_words))
        return outputs


# ---------------------------------------------------------------- registry
class WorkloadRegistryError(ValueError):
    """Structured registry failure: unknown or duplicate workload names."""

    def __init__(self, name: str, reason: str, known=()) -> None:
        hint = f"; known workloads: {', '.join(sorted(known))}" if known else ""
        super().__init__(f"workload {name!r}: {reason}{hint}")
        self.name = name
        self.reason = reason


_REGISTRY: dict[str, Workload] = {}
_TRACE_MEMO: dict[str, Workload] = {}

#: Prefix of lazily resolved recorded-trace workload names.
TRACE_PREFIX = "trace:"


def register_workload(workload: Workload, replace: bool = False) -> Workload:
    """Add *workload* to the registry; duplicate names are an error."""
    if workload.name.startswith(TRACE_PREFIX):
        raise WorkloadRegistryError(
            workload.name,
            f"the {TRACE_PREFIX!r} prefix is reserved for recorded traces",
        )
    if not replace and workload.name in _REGISTRY:
        raise WorkloadRegistryError(
            workload.name, "already registered (pass replace=True to shadow)"
        )
    _REGISTRY[workload.name] = workload
    return workload


def workload_names() -> list[str]:
    """Registered workload names (recorded traces resolve by path)."""
    return sorted(_REGISTRY)


def is_engine_workload(name: str) -> bool:
    """Does *name* resolve through this registry (vs an app profile)?"""
    return name in _REGISTRY or name.startswith(TRACE_PREFIX)


def get_workload(name: str) -> Workload:
    """Resolve a registry name, loading ``trace:<path>`` names lazily.

    Lazy trace resolution is what lets a campaign worker process rebuild
    a replay workload from the job's ``app`` string alone — the recorded
    trace travels as a file, not as pickled Python state.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]
    if name.startswith(TRACE_PREFIX):
        workload = _TRACE_MEMO.get(name)
        if workload is None:
            from repro.workloads.record import RecordedTrace, TraceReplayWorkload

            path = name[len(TRACE_PREFIX):]
            try:
                trace = RecordedTrace.load(path)
            except (OSError, ValueError) as exc:
                raise WorkloadRegistryError(
                    name, f"cannot load recorded trace: {exc}"
                ) from exc
            workload = TraceReplayWorkload(trace, name=name)
            _TRACE_MEMO[name] = workload
        return workload
    raise WorkloadRegistryError(name, "not registered", known=_REGISTRY)


def build_engine_workload(
    name: str, nctx: int, scale: float = 1.0, seed: int | None = None
) -> EngineBuild:
    """Resolve *name* and build it, validating the context count."""
    workload = get_workload(name)
    if not workload.valid_nctx(nctx):
        raise WorkloadRegistryError(
            name, f"does not support nctx={nctx}"
        )
    return workload.build(nctx, scale=scale, seed=seed)


def analyze_engine_build(build: EngineBuild, limit: bool = False):
    """Static oracle report for an engine build (dispatch on job type).

    Mirrors :func:`~repro.analysis.redundancy.analyze_build` /
    ``analyze_mp_build``: multi-threaded builds share one address space
    (strided stacks, no LVIP); message-passing and multi-execution builds
    run per-context spaces and do consult the LVIP.  ``limit=True``
    analyses the Limit-study clone convention (soft tid pinned to 0).
    """
    from repro.analysis.redundancy import analyze_program
    from repro.analysis.values import MemoryModel, regions_from_symbols

    program = build.program
    image_model = MemoryModel(
        dict(program.data),
        regions=regions_from_symbols(
            getattr(program, "symbols", None) or {}, program.data
        ),
    )
    if limit:
        return analyze_program(
            program,
            build.nctx,
            sp_divergent=False,
            name=program.name + "-limit",
            memory=image_model,
            lvip_eligible=True,
            tid_value=0,
        )
    shared = build.wtype is WorkloadType.MULTI_THREADED
    return analyze_program(
        program,
        build.nctx,
        sp_divergent=shared,
        memory=(
            MemoryModel.for_build(build, shared=True) if shared else image_model
        ),
        lvip_eligible=not shared,
    )


# ------------------------------------------------------------ dynamic mixes
#: Per-mode (divergence probability, dispatch agreement) envelopes.
PHASE_MODES = {
    "lockstep": (0.0, 1.0),
    "bursty": (0.9, 0.45),  # inside a burst; quiet sections use ~0.02
    "decohere": (0.8, 0.5),  # ramp target; starts fully coherent
    "independent": (0.6, 0.3),
}

#: Sections per divergence burst and the gap between bursts.
BURST_LEN = 4
BURST_PERIOD = 12


@dataclass(frozen=True)
class Phase:
    """One stretch of a phase schedule."""

    mode: str
    weight: float = 1.0


class PhaseScheduleEngine(ReqGenEngine):
    """Emit one :class:`Req` per generator body section.

    ``kind`` is the phase mode governing that section and ``value`` is
    the realised per-mille divergence probability — bursty phases pulse
    between quiet and saturated, decohere phases ramp linearly from full
    coherence to the mode's envelope, lockstep/independent phases hold
    their envelope flat.  The workload turns each request into one
    section of per-context flag/selector streams.
    """

    def __init__(self, phases: tuple[Phase, ...]) -> None:
        for phase in phases:
            if phase.mode not in PHASE_MODES:
                raise ValueError(
                    f"unknown phase mode {phase.mode!r}; choose from "
                    f"{sorted(PHASE_MODES)}"
                )
        self.phases = phases

    def requests(self, nctx: int, count: int, rng: random.Random) -> list[Req]:
        del nctx
        total = sum(phase.weight for phase in self.phases) or 1.0
        bounds = []
        start = 0
        for phase in self.phases:
            length = max(1, round(count * phase.weight / total))
            bounds.append((phase, start, start + length))
            start += length
        reqs: list[Req] = []
        for index in range(count):
            phase, lo, hi = bounds[-1]
            for candidate in bounds:
                if candidate[1] <= index < candidate[2]:
                    phase, lo, hi = candidate
                    break
            envelope, _agree = PHASE_MODES[phase.mode]
            if phase.mode == "bursty":
                in_burst = (index - lo) % BURST_PERIOD < BURST_LEN
                prob = envelope if in_burst else 0.02
            elif phase.mode == "decohere":
                span = max(1, hi - lo - 1)
                prob = envelope * (index - lo) / span
            else:
                prob = envelope
            reqs.append(Req(phase.mode, index, int(round(prob * 1000))))
        return reqs


class DynamicWorkload(Workload):
    """Phase-changing control mixes over the standard generator body.

    The program text is exactly what :func:`generator._emit_program`
    produces for the synthetic profile, so the pipeline sees ordinary
    SPMD code — only the per-section control streams (which contexts
    agree on flags and dispatch selectors) follow the engine's phase
    schedule instead of a stationary rate.  Multi-threaded convention:
    one shared address space, per-thread flag/selector/output slices.
    """

    wtype = WorkloadType.MULTI_THREADED

    def __init__(
        self, name: str, phases: tuple[Phase, ...], profile: AppProfile
    ) -> None:
        self.name = name
        self.engine = PhaseScheduleEngine(phases)
        self.profile = profile

    def build(
        self, nctx: int, scale: float = 1.0, seed: int | None = None
    ) -> EngineBuild:
        if not self.valid_nctx(nctx):
            raise ValueError(f"{self.name}: need at least one context")
        rng = self._rng(seed)
        sections = max(4, int(round(self.profile.iterations * scale)))
        per_ctx = max(1, sections // nctx)
        chunk = max(2, per_ctx // BODY_SECTIONS)
        num_sections = chunk * BODY_SECTIONS
        reqs = self.engine.requests(nctx, num_sections, rng)
        flags, sels = self._realize(reqs, nctx, rng)

        builder = ProgramBuilder(self.name)
        _place_streams(builder, nctx, chunk, rng, flags, sels)
        _emit_program(builder, self.profile, nctx, chunk, rng, True, False)
        out_stride = (chunk + CHECKSUM_WORDS) * WORD_SIZE
        return EngineBuild(
            self.name,
            nctx,
            self.wtype,
            builder.build(),
            out_words=chunk + CHECKSUM_WORDS,
            out_stride=out_stride,
        )

    def _realize(
        self, reqs: list[Req], nctx: int, rng: random.Random
    ) -> tuple[list[list[int]], list[list[int]]]:
        """Per-context flag/selector streams following the phase schedule."""
        handlers = max(1, self.profile.dispatch_handlers)
        flags = [[0] * len(reqs) for _ in range(nctx)]
        sels = [[0] * len(reqs) for _ in range(nctx)]
        for req in reqs:
            prob = req.value / 1000.0
            _envelope, agree = PHASE_MODES[req.kind]
            if nctx > 1 and rng.random() < prob:
                values = [rng.randint(0, 1) for _ in range(nctx)]
                if len(set(values)) == 1:
                    values[rng.randrange(nctx)] ^= 1
            else:
                values = [1 if rng.random() < 0.15 else 0] * nctx
            # Dispatch disagreement tracks the phase too: fully coherent
            # phases pick one handler for everyone.
            disagree = prob * (1.0 - agree) if prob else 0.0
            if nctx > 1 and rng.random() < disagree:
                chosen = [rng.randrange(handlers) for _ in range(nctx)]
            else:
                chosen = [rng.randrange(handlers)] * nctx
            for ctx in range(nctx):
                flags[ctx][req.key] = values[ctx]
                sels[ctx][req.key] = chosen[ctx]
        return flags, sels


def _place_streams(
    builder: ProgramBuilder,
    nctx: int,
    chunk: int,
    rng: random.Random,
    flags: list[list[int]],
    sels: list[list[int]],
) -> None:
    """The generator's multi-threaded data layout with explicit streams."""
    builder.array(
        "shared_i", [rng.randrange(1, 1 << 20) for _ in range(SHARED_WORDS)]
    )
    builder.array(
        "shared_f",
        [round(rng.uniform(0.5, 2.0), 6) for _ in range(SHARED_WORDS)],
    )
    builder.array(
        "priv_i", [rng.randrange(1, 1 << 20) for _ in range(PRIV_WORDS * nctx)]
    )
    builder.array(
        "priv_f",
        [round(rng.uniform(0.5, 2.0), 6) for _ in range(PRIV_WORDS * nctx)],
    )
    num_sections = chunk * BODY_SECTIONS
    builder.array(
        "flags",
        [flags[ctx][i] for ctx in range(nctx) for i in range(num_sections)],
    )
    builder.array(
        "sel",
        [sels[ctx][i] for ctx in range(nctx) for i in range(num_sections)],
    )
    builder.reserve("out", (chunk + CHECKSUM_WORDS) * nctx)


# --------------------------------------------------------- request streams
# Register plan for the request-stream program (disjoint from the
# generator's only by convention; the program is self-contained).
_R_CACC = (1, 2, 3, 4)
_R_PACC = 5
_R_RECVD = 6
_R_EXPECT = 7
_R_SHARED = 9
_R_OUT = 12
_R_T0, _R_T1 = 14, 15
_R_MSG = 16
_R_I = 18
_R_TRIPS = 19
_R_TID = 20
_R_NCTX = 21
_R_DEST = 22
_R_TYPE = 23
_R_PAYLOAD = 24
_R_NEG1 = 25
_R_CMP = 26

_OUT_WORDS = 8
_REQ_WORDS = 64


class RequestStreamEngine(ReqGenEngine):
    """Request operands for the shared image (one word per slot).

    ``uniform`` draws operands flat, so handler types spread evenly;
    ``skewed`` biases the low bits toward zero, concentrating traffic on
    handler 0 the way hot-key server workloads do.
    """

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern

    def requests(self, nctx: int, count: int, rng: random.Random) -> list[Req]:
        del nctx
        reqs = []
        for index in range(count):
            value = rng.randrange(1, 1 << 12)
            if self.pattern == "skewed" and rng.random() < 0.6:
                value &= ~0x6  # clear middle type bits: most land on 0/1
            reqs.append(Req(self.pattern, index, value))
        return reqs


class RequestStreamWorkload(Workload):
    """Server-style request streams over SEND/TRECV channels.

    Rank 0 is the server: it spin-receives ``(payload << 4) | rank``
    messages, dispatches on the request type through a compare chain of
    handlers (commutative accumulation, so the result is independent of
    arrival interleaving), and replies to the sending rank.  Ranks ≥ 1
    are clients: each derives its payloads from *uniform-address* shared
    loads mixed with rank arithmetic — addresses never depend on the
    tid, so every load the value oracle proves must-identical really is
    identical across ranks and the LVIP contract stays sound.
    """

    wtype = WorkloadType.MESSAGE_PASSING

    def __init__(
        self,
        name: str,
        pattern: str = "uniform",
        reqs_per_client: int = 8,
        handlers: int = 4,
        common_ops: int = 10,
    ) -> None:
        if pattern not in ("uniform", "skewed"):
            raise ValueError(f"unknown request pattern {pattern!r}")
        self.name = name
        self.engine = RequestStreamEngine(pattern)
        self.pattern = pattern
        self.reqs_per_client = reqs_per_client
        self.handlers = handlers
        self.common_ops = common_ops

    def valid_nctx(self, nctx: int) -> bool:
        # The rank is packed into the low 4 bits of every message, and
        # the machine itself caps hardware contexts at MAX_THREADS.
        from repro.core.itid import MAX_THREADS

        return 2 <= nctx <= min(15, MAX_THREADS)

    def build(
        self, nctx: int, scale: float = 1.0, seed: int | None = None
    ) -> EngineBuild:
        if not self.valid_nctx(nctx):
            raise ValueError(
                f"{self.name}: request streams need at least 2 ranks "
                f"within the machine's context limit, got {nctx}"
            )
        rng = self._rng(seed)
        nreq = max(2, int(round(self.reqs_per_client * scale)))
        reqs = self.engine.requests(nctx, _REQ_WORDS, rng)
        b = ProgramBuilder(self.name)
        b.array("reqdata", [req.value for req in reqs])
        b.reserve("out", _OUT_WORDS)
        self._emit(b, nreq, rng)
        return EngineBuild(
            self.name, nctx, self.wtype, b.build(), out_words=_OUT_WORDS
        )

    def _emit(self, b: ProgramBuilder, nreq: int, rng: random.Random) -> None:
        handlers = self.handlers
        b.inst(Opcode.TID, rd=_R_TID)
        b.inst(Opcode.NCTX, rd=_R_NCTX)
        b.la(_R_SHARED, "reqdata")
        b.la(_R_OUT, "out")
        b.li(_R_TRIPS, nreq)
        for index, reg in enumerate(_R_CACC):
            b.li(reg, 7 + 3 * index)
        b.li(_R_PACC, 0)
        b.li(_R_RECVD, 0)
        b.li(_R_NEG1, -1)
        b.li(_R_I, 0)
        b.branch(Opcode.BNE, _R_TID, 0, "client")

        # ------------------------------------------------------- server
        # expected = (nctx - 1) * nreq replies owed before halting.
        b.alui(Opcode.ADDI, _R_EXPECT, _R_NCTX, -1)
        b.alu(Opcode.MUL, _R_EXPECT, _R_EXPECT, _R_TRIPS)
        b.label("srv_loop")
        spin = b.fresh_label("srv_spin")
        b.label(spin)
        b.inst(Opcode.TRECV, rd=_R_MSG, rs1=_R_TID)
        b.branch(Opcode.BEQ, _R_MSG, _R_NEG1, spin)
        b.alui(Opcode.ANDI, _R_DEST, _R_MSG, 0xF)
        b.alui(Opcode.SRLI, _R_PAYLOAD, _R_MSG, 4)
        b.alui(Opcode.ANDI, _R_TYPE, _R_PAYLOAD, handlers - 1)
        labels = [b.fresh_label(f"srv_hnd{k}_") for k in range(handlers)]
        join = b.fresh_label("srv_join")
        for k in range(1, handlers):
            b.li(_R_CMP, k)
            b.branch(Opcode.BEQ, _R_TYPE, _R_CMP, labels[k])
        b.jump(labels[0])
        for k, label in enumerate(labels):
            b.label(label)
            acc = _R_CACC[k % len(_R_CACC)]
            # Commutative per-type accumulation: ADD/XOR only, so the
            # result is invariant to request arrival interleaving.
            b.alu(Opcode.ADD, acc, acc, _R_PAYLOAD)
            if k % 2:
                b.alu(Opcode.XOR, _R_PACC, _R_PACC, _R_PAYLOAD)
            else:
                b.alu(Opcode.ADD, _R_PACC, _R_PACC, _R_TYPE)
            for j in range(2 + k):
                b.alui(Opcode.ADDI, acc, acc, k + j + 1)
            b.jump(join)
        b.label(join)
        b.alui(Opcode.ANDI, _R_PACC, _R_PACC, (1 << 30) - 1)
        # reply = payload * 3 + type, bounded.
        b.alui(Opcode.SLLI, _R_T0, _R_PAYLOAD, 1)
        b.alu(Opcode.ADD, _R_T0, _R_T0, _R_PAYLOAD)
        b.alu(Opcode.ADD, _R_T0, _R_T0, _R_TYPE)
        b.alui(Opcode.ANDI, _R_T0, _R_T0, (1 << 20) - 1)
        b.inst(Opcode.SEND, rs1=_R_DEST, rs2=_R_T0)
        b.alui(Opcode.ADDI, _R_RECVD, _R_RECVD, 1)
        b.branch(Opcode.BLT, _R_RECVD, _R_EXPECT, "srv_loop")
        self._emit_epilogue(b)

        # ------------------------------------------------------- client
        b.label("client")
        b.label("cl_loop")
        # Uniform-address request load: the index depends only on the
        # loop counter, never the rank (LVIP soundness; see class doc).
        b.alui(Opcode.ANDI, _R_T1, _R_I, _REQ_WORDS - 1)
        b.alui(Opcode.SLLI, _R_T1, _R_T1, 3)
        b.alu(Opcode.ADD, _R_T1, _R_T1, _R_SHARED)
        b.load(_R_T0, _R_T1, disp=0)
        # payload = (word ^ rank * 5) & 0xFFF — rank variation arrives
        # arithmetically, not through divergent addresses.
        b.alui(Opcode.SLLI, _R_T1, _R_TID, 2)
        b.alu(Opcode.ADD, _R_T1, _R_T1, _R_TID)
        b.alu(Opcode.XOR, _R_PAYLOAD, _R_T0, _R_T1)
        b.alui(Opcode.ANDI, _R_PAYLOAD, _R_PAYLOAD, 0xFFF)
        b.alui(Opcode.SLLI, _R_MSG, _R_PAYLOAD, 4)
        b.alu(Opcode.OR, _R_MSG, _R_MSG, _R_TID)
        b.inst(Opcode.SEND, rs1=0, rs2=_R_MSG)
        spin = b.fresh_label("cl_spin")
        b.label(spin)
        b.inst(Opcode.TRECV, rd=_R_MSG, rs1=_R_TID)
        b.branch(Opcode.BEQ, _R_MSG, _R_NEG1, spin)
        b.alu(Opcode.ADD, _R_PACC, _R_PACC, _R_MSG)
        b.alui(Opcode.ANDI, _R_PACC, _R_PACC, (1 << 30) - 1)
        b.alui(Opcode.ADDI, _R_RECVD, _R_RECVD, 1)
        # Context-identical compute between requests (think: parsing,
        # checksumming) so clients still offer mergeable work.
        for k in range(self.common_ops):
            dst = _R_CACC[k % len(_R_CACC)]
            op = rng.choice((Opcode.ADD, Opcode.XOR, Opcode.OR, Opcode.SUB))
            b.alu(op, dst, dst, _R_T0)
        b.alui(Opcode.ADDI, _R_I, _R_I, 1)
        b.branch(Opcode.BLT, _R_I, _R_TRIPS, "cl_loop")
        self._emit_epilogue(b)

    def _emit_epilogue(self, b: ProgramBuilder) -> None:
        for offset, reg in enumerate(_R_CACC + (_R_PACC, _R_RECVD)):
            b.store(reg, _R_OUT, disp=offset * WORD_SIZE)
        b.halt()


# ------------------------------------------------------------ registrations
def _dynamic_profile(name: str, **overrides) -> AppProfile:
    """Synthetic multi-threaded profile driving the generator body."""
    knobs = dict(
        iterations=48, common_ops=18, private_ops=8, shared_loads=3,
        private_loads=2, stores=1, fp_frac=0.25, divergence_rate=0.0,
        divergence_trips=(2, 6), dispatch_handlers=0, remerge_regs=1,
    )
    knobs.update(overrides)
    return AppProfile(name, "dynamic", WorkloadType.MULTI_THREADED, **knobs)


BUILTIN_WORKLOADS: tuple[Workload, ...] = (
    DynamicWorkload(
        "dyn-bursty",
        (Phase("bursty"),),
        _dynamic_profile("dyn-bursty"),
    ),
    DynamicWorkload(
        "dyn-decohere",
        (Phase("decohere"),),
        _dynamic_profile("dyn-decohere"),
    ),
    DynamicWorkload(
        "dyn-phased",
        (Phase("lockstep", 1.0), Phase("bursty", 1.0), Phase("independent", 1.0)),
        _dynamic_profile("dyn-phased", dispatch_handlers=5),
    ),
    RequestStreamWorkload("reqstream-uniform", pattern="uniform"),
    RequestStreamWorkload("reqstream-skewed", pattern="skewed", handlers=8),
)

for _workload in BUILTIN_WORKLOADS:
    register_workload(_workload)
