"""Per-application workload profiles.

The paper evaluates 16 applications (Table 1): six SPEC2000 and libsvm as
*multi-execution* workloads, five SPLASH-2 and four Parsec programs as
*multi-threaded* workloads.  We cannot run those binaries, so each
application is represented by a synthetic SPMD program whose trace-level
properties — the knobs below — are set to the per-application values the
paper itself reports (Figure 1's sharing breakdown, Figure 2's divergence
distribution, and the §6 discussion of which apps synchronize poorly).

The knobs and what they control:

* ``common_ops``/``private_ops`` — arithmetic per iteration operating on
  context-identical vs context-private values: the execute-identical vs
  merely fetch-identical balance of Figure 1.
* ``divergence_rate``/``divergence_trips`` — how often contexts take
  different paths and how asymmetric those paths are (in taken branches):
  Figure 2's length-difference distribution and the DETECT/CATCHUP time of
  Figure 5(d).
* ``dispatch_handlers``/``dispatch_agree`` — irregular, data-selected
  control flow (twolf/vpr/vortex-style): contexts that rarely sit at the
  same PC, defeating the remerge mechanism as the paper observes.
* ``input_similarity`` — multi-execution only: the fraction of private
  input words identical across instances (drives LVIP behaviour).
* ``fig1_exec``/``fig1_fetch`` — the paper's Figure 1 values for this
  application, recorded as reproduction targets (EXPERIMENTS.md compares
  against them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import WorkloadType

ME = WorkloadType.MULTI_EXECUTION
MT = WorkloadType.MULTI_THREADED


@dataclass(frozen=True)
class AppProfile:
    """Synthetic stand-in for one paper application."""

    name: str
    suite: str
    wtype: WorkloadType
    iterations: int = 48  # ME: per instance; MT: total, split across threads
    common_ops: int = 24
    private_ops: int = 8
    shared_loads: int = 3
    private_loads: int = 2
    stores: int = 1
    fp_frac: float = 0.3
    ilp: int = 4
    divergence_rate: float = 0.10
    divergence_trips: tuple[int, int] = (2, 5)
    dispatch_handlers: int = 0
    dispatch_agree: float = 1.0
    input_similarity: float = 0.90
    remerge_regs: int = 1
    fig1_exec: float = 0.35
    fig1_fetch: float = 0.88


#: The sixteen applications of the paper's Table 1.
PROFILES: dict[str, AppProfile] = {
    profile.name: profile
    for profile in [
        # ---------------------------------------------- SPEC2000 (ME) + SVM
        AppProfile(
            "ammp", "spec2000", ME,
            iterations=44, common_ops=30, private_ops=11, fp_frac=0.45,
            shared_loads=4, private_loads=2, divergence_rate=0.04,
            divergence_trips=(2, 4), input_similarity=0.92,
            fig1_exec=0.60, fig1_fetch=0.95,
        ),
        AppProfile(
            "equake", "spec2000", ME,
            iterations=40, common_ops=30, private_ops=6, fp_frac=0.50,
            shared_loads=4, private_loads=2, divergence_rate=0.07,
            divergence_trips=(2, 26), input_similarity=0.95, remerge_regs=2,
            fig1_exec=0.55, fig1_fetch=0.90,
        ),
        AppProfile(
            "mcf", "spec2000", ME,
            iterations=44, common_ops=20, private_ops=13, fp_frac=0.05,
            shared_loads=5, private_loads=2, divergence_rate=0.08,
            divergence_trips=(1, 4), input_similarity=0.93, remerge_regs=2,
            fig1_exec=0.45, fig1_fetch=0.92,
        ),
        AppProfile(
            "twolf", "spec2000", ME,
            iterations=40, common_ops=10, private_ops=12, fp_frac=0.10,
            shared_loads=2, private_loads=3, divergence_rate=0.30,
            divergence_trips=(2, 7), dispatch_handlers=6, dispatch_agree=0.55,
            input_similarity=0.80, fig1_exec=0.22, fig1_fetch=0.88,
        ),
        AppProfile(
            "vpr", "spec2000", ME,
            iterations=40, common_ops=8, private_ops=14, fp_frac=0.15,
            shared_loads=2, private_loads=3, divergence_rate=0.30,
            divergence_trips=(1, 5), dispatch_handlers=5, dispatch_agree=0.60,
            input_similarity=0.82, fig1_exec=0.15, fig1_fetch=0.85,
        ),
        AppProfile(
            "vortex", "spec2000", ME,
            iterations=36, common_ops=11, private_ops=11, fp_frac=0.02,
            shared_loads=3, private_loads=3, divergence_rate=0.26,
            divergence_trips=(3, 30), dispatch_handlers=7, dispatch_agree=0.55,
            input_similarity=0.85, fig1_exec=0.25, fig1_fetch=0.82,
        ),
        AppProfile(
            "libsvm", "svm", ME,
            iterations=44, common_ops=16, private_ops=10, fp_frac=0.55,
            shared_loads=4, private_loads=2, divergence_rate=0.16,
            divergence_trips=(2, 6), input_similarity=0.85,
            fig1_exec=0.30, fig1_fetch=0.90,
        ),
        # ------------------------------------------------------ SPLASH-2 (MT)
        AppProfile(
            "lu", "splash2", MT,
            iterations=96, common_ops=8, private_ops=22, fp_frac=0.55,
            shared_loads=2, private_loads=3, stores=2, divergence_rate=0.03,
            divergence_trips=(1, 3), fig1_exec=0.15, fig1_fetch=0.92,
        ),
        AppProfile(
            "fft", "splash2", MT,
            iterations=96, common_ops=9, private_ops=20, fp_frac=0.60,
            shared_loads=2, private_loads=3, stores=2, divergence_rate=0.03,
            divergence_trips=(1, 3), remerge_regs=2,
            fig1_exec=0.18, fig1_fetch=0.92,
        ),
        AppProfile(
            "ocean", "splash2", MT,
            iterations=88, common_ops=8, private_ops=20, fp_frac=0.50,
            shared_loads=2, private_loads=4, stores=2, divergence_rate=0.06,
            divergence_trips=(2, 5), fig1_exec=0.15, fig1_fetch=0.90,
        ),
        AppProfile(
            "water-ns", "splash2", MT,
            iterations=88, common_ops=24, private_ops=8, fp_frac=0.55,
            shared_loads=4, private_loads=2, divergence_rate=0.05,
            divergence_trips=(2, 8), remerge_regs=2,
            fig1_exec=0.40, fig1_fetch=0.92,
        ),
        AppProfile(
            "water-sp", "splash2", MT,
            iterations=88, common_ops=25, private_ops=8, fp_frac=0.55,
            shared_loads=4, private_loads=2, divergence_rate=0.05,
            divergence_trips=(2, 6), fig1_exec=0.42, fig1_fetch=0.90,
        ),
        # -------------------------------------------------------- Parsec (MT)
        AppProfile(
            "blackscholes", "parsec", MT,
            iterations=96, common_ops=14, private_ops=14, fp_frac=0.65,
            shared_loads=3, private_loads=2, divergence_rate=0.04,
            divergence_trips=(1, 3), fig1_exec=0.30, fig1_fetch=0.92,
        ),
        AppProfile(
            "swaptions", "parsec", MT,
            iterations=88, common_ops=24, private_ops=9, fp_frac=0.60,
            shared_loads=3, private_loads=2, divergence_rate=0.05,
            divergence_trips=(2, 5), fig1_exec=0.38, fig1_fetch=0.92,
        ),
        AppProfile(
            "fluidanimate", "parsec", MT,
            iterations=88, common_ops=23, private_ops=9, fp_frac=0.50,
            shared_loads=3, private_loads=3, divergence_rate=0.08,
            divergence_trips=(2, 6), fig1_exec=0.38, fig1_fetch=0.90,
        ),
        AppProfile(
            "canneal", "parsec", MT,
            iterations=80, common_ops=9, private_ops=14, fp_frac=0.15,
            shared_loads=3, private_loads=4, divergence_rate=0.22,
            divergence_trips=(2, 8), dispatch_handlers=5, dispatch_agree=0.65,
            fig1_exec=0.20, fig1_fetch=0.85,
        ),
    ]
}

#: Paper Table 1 ordering: multi-execution first, then SPLASH-2, then Parsec.
APP_ORDER = [
    "ammp", "equake", "mcf", "twolf", "vortex", "vpr", "libsvm",
    "lu", "fft", "ocean", "water-ns", "water-sp",
    "blackscholes", "swaptions", "fluidanimate", "canneal",
]


def get_profile(name: str) -> AppProfile:
    """Profile for application *name* (KeyError with suggestions otherwise)."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown application {name!r}; known: {known}") from None
