"""Synthetic SPMD workload generator.

Builds, from an :class:`~repro.workloads.profiles.AppProfile`, a program
and job reproducing the trace-level structure MMT's mechanisms respond to:

* a *common* computation stream whose operands are identical in every
  context (execute-identical work);
* a *private* stream seeded by the thread id (multi-threaded) or by
  per-instance input data (multi-execution): fetch-identical only;
* shared-array loads (identical addresses and values), private loads
  (multi-threaded: per-thread slices; multi-execution: same addresses,
  per-instance values exercising the LVIP), and private stores;
* data-dependent control: *regular* flag-guarded regions whose two paths
  have profile-controlled taken-branch lengths, or *irregular* dispatch
  regions (compare-chains into distinct handlers) for the applications the
  paper reports as hard to synchronize;
* one leaf function call per iteration (JAL/JR) to exercise the RAS.

All randomness is drawn from a generator seeded by the application name,
so every build of a profile is bit-identical.
"""

from __future__ import annotations

import random

from repro.core.config import WorkloadType
from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE, Program
from repro.pipeline.job import Job
from repro.workloads.dsl import ProgramBuilder
from repro.workloads.profiles import AppProfile

# Register allocation plan.
R_CACC = (1, 2, 3, 4)  # common integer accumulators
R_PACC = (5, 6, 7, 8)  # private integer accumulators
R_SHARED_BASE = 9
R_PRIV_BASE = 10
R_FLAGS_BASE = 11
R_OUT_BASE = 12
R_SEL_BASE = 13
R_T0, R_T1, R_T2 = 14, 15, 16
R_FIDX = 17  # control-section cursor (flags/selector index)
R_I = 18
R_TRIPS = 19
R_TID = 20
R_NCTX = 21
R_FLAG = 23
R_DIV = 24
R_CMP = 25
F_CACC = (32, 33, 34, 35)  # f0..f3
F_PACC = (36, 37, 38, 39)  # f4..f7
F_T0, F_T1 = 40, 41  # f8, f9
F_HALF, F_SCALE = 42, 43  # f10, f11
F_TMP_C, F_TMP_P = 44, 45  # f12, f13: fp scratch (common / private)

SHARED_WORDS = 1024
PRIV_WORDS = 1024
#: Words per context in the output region: per-iteration slots + checksums.
CHECKSUM_WORDS = 16
#: Control/compute sections per outer-loop iteration.  Bigger bodies keep
#: the time-skew a divergence creates smaller than one iteration, so
#: PC-equality remerges align threads at the same logical point — matching
#: the paper's workloads, whose loop bodies are thousands of instructions.
BODY_SECTIONS = 3

_INT_OPS = (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR)


class WorkloadBuild:
    """A generated program plus the data needed to instantiate jobs."""

    def __init__(
        self,
        profile: AppProfile,
        nctx: int,
        chunk: int,
        program: Program,
        per_instance_data: list[dict[int, int | float]],
    ) -> None:
        self.profile = profile
        self.nctx = nctx
        self.chunk = chunk
        self.program = program
        self.per_instance_data = per_instance_data

    def job(self) -> Job:
        """A fresh job (new address spaces) for this build."""
        if self.profile.wtype is WorkloadType.MULTI_THREADED:
            return Job.multi_threaded(self.profile.name, self.program, self.nctx)
        return Job.multi_execution(
            self.profile.name, self.program, self.per_instance_data
        )

    def limit_job(self) -> Job:
        """The Limit configuration: identical clones of context 0."""
        return Job.limit_clone(
            self.profile.name, self.program, self.nctx, soft_nctx=self.nctx
        )

    def output_region(self, job: Job) -> list[list[int | float]]:
        """Final per-context outputs (for cross-configuration correctness).

        Multi-threaded jobs share one address space: every context returns
        its own slice.  Multi-execution contexts return their own copies.
        """
        base = self.program.symbol("out")
        slice_words = self.chunk + CHECKSUM_WORDS
        outputs = []
        # Keyed off the *job*'s type: a Limit job clones an MT program into
        # separate address spaces whose clones all write the tid-0 slice.
        for ctx, space in enumerate(job.address_spaces):
            offset = (
                ctx * slice_words * WORD_SIZE
                if job.wtype is WorkloadType.MULTI_THREADED
                else 0
            )
            outputs.append(space.read_array(base + offset, slice_words))
        return outputs


def build_workload(
    profile: AppProfile,
    nctx: int,
    scale: float = 1.0,
    seed: int | None = None,
    hints: bool = False,
) -> WorkloadBuild:
    """Generate the program and per-instance inputs for *profile*.

    ``hints=True`` inserts a software HINT instruction (an architectural
    NOP) at every control-region join point — the Thread Fusion [36]
    compiler support that `MMTConfig.use_hints` exploits.
    """
    if nctx < 1:
        raise ValueError("need at least one context")
    rng = random.Random(seed if seed is not None else _seed_of(profile.name))
    sections = max(4, int(round(profile.iterations * scale)))
    is_mt = profile.wtype is WorkloadType.MULTI_THREADED
    per_ctx_sections = max(1, sections // nctx) if is_mt else sections
    # Outer-loop trips; each iteration runs BODY_SECTIONS sections.
    chunk = max(2, per_ctx_sections // BODY_SECTIONS)

    builder = ProgramBuilder(profile.name)
    flags, sels = _place_data(builder, profile, nctx, chunk, rng, is_mt)
    _emit_program(builder, profile, nctx, chunk, rng, is_mt, hints)
    program = builder.build()
    if is_mt:
        per_instance: list[dict[int, int | float]] = [{}]
    else:
        per_instance = _me_instance_data(
            builder, profile, nctx, chunk, rng, flags, sels
        )
    return WorkloadBuild(profile, nctx, chunk, program, per_instance)


def _seed_of(name: str) -> int:
    return sum((i + 1) * ord(c) for i, c in enumerate(name)) * 2654435761 % (1 << 31)


# --------------------------------------------------------------------- data
def _place_data(
    builder: ProgramBuilder,
    profile: AppProfile,
    nctx: int,
    chunk: int,
    rng: random.Random,
    is_mt: bool,
):
    copies = nctx if is_mt else 1
    builder.array(
        "shared_i", [rng.randrange(1, 1 << 20) for _ in range(SHARED_WORDS)]
    )
    builder.array(
        "shared_f",
        [round(rng.uniform(0.5, 2.0), 6) for _ in range(SHARED_WORDS)],
    )
    builder.array(
        "priv_i",
        [rng.randrange(1, 1 << 20) for _ in range(PRIV_WORDS * copies)],
    )
    builder.array(
        "priv_f",
        [round(rng.uniform(0.5, 2.0), 6) for _ in range(PRIV_WORDS * copies)],
    )
    num_sections = chunk * BODY_SECTIONS
    flags, sels = _control_streams(profile, nctx, num_sections, rng)
    if is_mt:
        flat_flags = [
            flags[ctx][i] for ctx in range(nctx) for i in range(num_sections)
        ]
        flat_sels = [
            sels[ctx][i] for ctx in range(nctx) for i in range(num_sections)
        ]
    else:
        flat_flags = list(flags[0])
        flat_sels = list(sels[0])
    builder.array("flags", flat_flags)
    builder.array("sel", flat_sels)
    builder.reserve("out", (chunk + CHECKSUM_WORDS) * copies)
    return flags, sels


def _control_streams(
    profile: AppProfile, nctx: int, chunk: int, rng: random.Random
) -> tuple[list[list[int]], list[list[int]]]:
    """Per-context flag and selector streams with the profile's agreement
    statistics (contexts disagree with probability ``divergence_rate`` /
    ``1 - dispatch_agree``)."""
    flags = [[0] * chunk for _ in range(nctx)]
    sels = [[0] * chunk for _ in range(nctx)]
    handlers = max(1, profile.dispatch_handlers)
    for i in range(chunk):
        if nctx > 1 and rng.random() < profile.divergence_rate:
            values = [rng.randint(0, 1) for _ in range(nctx)]
            if len(set(values)) == 1:
                values[rng.randrange(nctx)] ^= 1
        else:
            # Agreeing flags are biased (mostly the fall-through path), as
            # real branch behaviour is: ~85% same-direction keeps the
            # two-level predictor effective outside divergences.
            values = [1 if rng.random() < 0.15 else 0] * nctx
        for ctx in range(nctx):
            flags[ctx][i] = values[ctx]
        if nctx > 1 and rng.random() > profile.dispatch_agree:
            chosen = [rng.randrange(handlers) for _ in range(nctx)]
        else:
            chosen = [rng.randrange(handlers)] * nctx
        for ctx in range(nctx):
            sels[ctx][i] = chosen[ctx]
    return flags, sels


def _me_instance_data(
    builder: ProgramBuilder,
    profile: AppProfile,
    nctx: int,
    chunk: int,
    rng: random.Random,
    flags: list[list[int]],
    sels: list[list[int]],
) -> list[dict[int, int | float]]:
    """Per-instance overlays for multi-execution jobs.

    Instance 0 runs the base image; instances k > 0 overlay their private
    inputs (dissimilar with probability ``1 - input_similarity``) and their
    own control streams.
    """
    overlays: list[dict[int, int | float]] = [{}]
    priv_i = builder.symbol("priv_i")
    priv_f = builder.symbol("priv_f")
    flags_base = builder.symbol("flags")
    sel_base = builder.symbol("sel")
    for ctx in range(1, nctx):
        overlay: dict[int, int | float] = {}
        for k in range(PRIV_WORDS):
            if rng.random() > profile.input_similarity:
                overlay[priv_i + k * WORD_SIZE] = rng.randrange(1, 1 << 20)
            if rng.random() > profile.input_similarity:
                overlay[priv_f + k * WORD_SIZE] = round(rng.uniform(0.5, 2.0), 6)
        for i in range(chunk * BODY_SECTIONS):
            if flags[ctx][i] != flags[0][i]:
                overlay[flags_base + i * WORD_SIZE] = flags[ctx][i]
            if sels[ctx][i] != sels[0][i]:
                overlay[sel_base + i * WORD_SIZE] = sels[ctx][i]
        overlays.append(overlay)
    return overlays


# --------------------------------------------------------------------- code
def _emit_program(
    builder: ProgramBuilder,
    profile: AppProfile,
    nctx: int,
    chunk: int,
    rng: random.Random,
    is_mt: bool,
    hints: bool = False,
) -> None:
    b = builder
    _emit_prologue(b, profile, nctx, chunk, is_mt)
    skip_fn = b.fresh_label("after_fn")
    b.jump(skip_fn)
    b.label("leaf_fn")
    b.alui(Opcode.ADDI, R_T0, R_T0, 7)
    b.alu(Opcode.XOR, R_CACC[0], R_CACC[0], R_T0)
    b.inst(Opcode.JR, rs1=31)
    b.label(skip_fn)

    b.label("main_loop")
    for _section in range(BODY_SECTIONS):
        _emit_common_block(b, profile, rng)
        _emit_private_block(b, profile, rng)
        if profile.dispatch_handlers:
            _emit_dispatch_region(b, profile, rng)
        else:
            _emit_divergence_region(b, profile, rng)
        if hints:
            b.inst(Opcode.HINT)  # compiler-marked remerge point at the join
        b.alui(Opcode.ADDI, R_FIDX, R_FIDX, 1)
    _emit_stores(b, profile)
    b.alui(Opcode.ADDI, R_I, R_I, 1)
    b.branch(Opcode.BLT, R_I, R_TRIPS, "main_loop")
    _emit_epilogue(b)


def _emit_prologue(
    b: ProgramBuilder, profile: AppProfile, nctx: int, chunk: int, is_mt: bool
) -> None:
    if is_mt:
        b.inst(Opcode.TID, rd=R_TID)
        b.inst(Opcode.NCTX, rd=R_NCTX)
    else:
        # Multi-execution instances must be tid-oblivious: a real process
        # cannot see which hardware context it landed on.
        b.li(R_TID, 0)
        b.li(R_NCTX, 1)
    b.li(R_TRIPS, chunk)
    b.la(R_SHARED_BASE, "shared_i")
    b.la(R_PRIV_BASE, "priv_i")
    b.la(R_FLAGS_BASE, "flags")
    b.la(R_SEL_BASE, "sel")
    b.la(R_OUT_BASE, "out")
    if is_mt:
        # Per-thread slices: offset the private/flags/selector/output bases.
        b.alui(Opcode.SLLI, R_T0, R_TID, 3)  # tid * 8 (bytes per word)
        b.li(R_T1, PRIV_WORDS)
        b.alu(Opcode.MUL, R_T2, R_T0, R_T1)
        b.alu(Opcode.ADD, R_PRIV_BASE, R_PRIV_BASE, R_T2)
        b.li(R_T1, chunk * BODY_SECTIONS)
        b.alu(Opcode.MUL, R_T2, R_T0, R_T1)
        b.alu(Opcode.ADD, R_FLAGS_BASE, R_FLAGS_BASE, R_T2)
        b.alu(Opcode.ADD, R_SEL_BASE, R_SEL_BASE, R_T2)
        b.li(R_T1, chunk + CHECKSUM_WORDS)
        b.alu(Opcode.MUL, R_T2, R_T0, R_T1)
        b.alu(Opcode.ADD, R_OUT_BASE, R_OUT_BASE, R_T2)
    for index, reg in enumerate(R_CACC):
        b.li(reg, 17 + index * 3)
    for index, reg in enumerate(R_PACC):
        # Private accumulators are seeded by the thread id (multi-threaded),
        # so their values differ per context from the first instruction; in
        # multi-execution they diverge at the first private load instead.
        b.alui(Opcode.ADDI, reg, R_TID, 5 + index)
    for index, reg in enumerate(F_CACC):
        b.li(reg, 1.0 + index * 0.25)
    for index, reg in enumerate(F_PACC):
        b.inst(Opcode.FCVT, rd=reg, rs1=R_PACC[index % len(R_PACC)])
    b.li(F_HALF, 0.5)
    b.li(F_SCALE, 1.25)
    b.li(R_T0, 3)
    b.li(F_T0, 1.5)
    b.li(F_T1, 0.75)
    b.li(R_T2, 9)
    b.li(R_FIDX, 0)
    b.li(R_I, 0)


def _emit_indexed_load(
    b: ProgramBuilder,
    rng: random.Random,
    dst: int,
    base_reg: int,
    words: int,
    fp_disp: int = 0,
    mix_reg: int | None = None,
) -> None:
    """dst <- base[(32*i + c) & (words-1)] (+ *fp_disp* for the fp twin).

    The stride of 32 words (four cache lines) scatters each site's touches,
    so the working set exercises the L1 the way pointer-rich benchmark code
    does instead of collapsing onto a handful of hot lines.  With
    *mix_reg*, the index additionally depends on that register — private
    streams pass an accumulator, making the whole address chain (and
    everything consuming the loaded value) context-private, as real
    pointer-rich code is.
    """
    offset = rng.randrange(words)
    b.alui(Opcode.SLLI, R_T1, R_I, 5)
    if mix_reg is not None:
        b.alu(Opcode.ADD, R_T1, R_T1, mix_reg)
    else:
        b.alui(Opcode.ADDI, R_T1, R_T1, offset)
    b.alui(Opcode.ANDI, R_T1, R_T1, words - 1)
    b.alui(Opcode.SLLI, R_T1, R_T1, 3)
    b.alu(Opcode.ADD, R_T1, R_T1, base_reg)
    if fp_disp:
        b.load(dst, R_T1, disp=fp_disp, fp=True)
    else:
        b.load(dst, R_T1, disp=0)


def _fp_twin_disp(b: ProgramBuilder, int_name: str, fp_name: str) -> int:
    return b.symbol(fp_name) - b.symbol(int_name)


def _emit_common_block(
    b: ProgramBuilder, profile: AppProfile, rng: random.Random
) -> None:
    """Arithmetic on context-identical values: the execute-identical stream."""
    fp_budget = int(round(profile.common_ops * profile.fp_frac))
    int_budget = profile.common_ops - fp_budget
    fp_disp = _fp_twin_disp(b, "shared_i", "shared_f")
    for index in range(profile.shared_loads):
        if index % 2 == 0 or fp_budget == 0:
            _emit_indexed_load(b, rng, R_T0, R_SHARED_BASE, SHARED_WORDS)
        else:
            _emit_indexed_load(
                b, rng, F_T0, R_SHARED_BASE, SHARED_WORDS, fp_disp=fp_disp
            )
    b.inst(Opcode.JAL, rd=31, target="leaf_fn")
    _emit_int_ops(b, rng, int_budget, R_CACC, R_T0)
    _emit_fp_ops(b, rng, fp_budget, F_CACC, F_T0, F_TMP_C)


def _emit_int_ops(
    b: ProgramBuilder,
    rng: random.Random,
    budget: int,
    accs: tuple[int, ...],
    fresh: int,
) -> None:
    """Latency-1 integer work spread across *accs* (one dependence chain per
    accumulator, so an 8-wide core can extract ILP ~len(accs) from it)."""
    for k in range(budget):
        dst = accs[k % len(accs)]
        other = accs[(k + 1) % len(accs)]
        roll = rng.random()
        if roll < 0.30:
            b.alui(Opcode.ADDI, dst, dst, rng.randrange(1, 64))
        elif roll < 0.35:
            b.alu(Opcode.MUL, dst, dst, fresh)
        elif roll < 0.65:
            b.alu(rng.choice(_INT_OPS), dst, dst, fresh)
        else:
            b.alu(rng.choice(_INT_OPS), dst, other, fresh)


def _emit_fp_ops(
    b: ProgramBuilder,
    rng: random.Random,
    budget: int,
    accs: tuple[int, ...],
    fresh: int,
    tmp: int,
) -> None:
    """Floating-point work: independent multiplies feeding short add chains.

    Values stay bounded (inputs in [0.5, 2], scales <= 1.25) so merged
    results never reach inf/NaN, which would break value-identity.
    """
    emitted = 0
    while emitted < budget:
        dst = accs[emitted % len(accs)]
        if rng.random() < 0.5 and budget - emitted >= 2:
            b.alu(Opcode.FMUL, tmp, fresh, F_HALF)
            b.alu(Opcode.FADD, dst, dst, tmp)
            emitted += 2
        else:
            b.alu(Opcode.FMUL, dst, dst, F_HALF)
            b.alu(Opcode.FADD, dst, dst, F_SCALE)
            emitted += 2


def _emit_private_block(
    b: ProgramBuilder, profile: AppProfile, rng: random.Random
) -> None:
    """Arithmetic on context-private values: fetch-identical only."""
    fp_budget = int(round(profile.private_ops * profile.fp_frac))
    int_budget = profile.private_ops - fp_budget
    fp_disp = _fp_twin_disp(b, "priv_i", "priv_f")
    for index in range(profile.private_loads):
        mix = R_PACC[index % len(R_PACC)]
        if index % 2 == 0 or fp_budget == 0:
            _emit_indexed_load(b, rng, R_T2, R_PRIV_BASE, PRIV_WORDS, mix_reg=mix)
            b.alu(Opcode.XOR, R_PACC[0], R_PACC[0], R_T2)
        else:
            _emit_indexed_load(
                b, rng, F_T1, R_PRIV_BASE, PRIV_WORDS, fp_disp=fp_disp, mix_reg=mix
            )
            b.alu(Opcode.FADD, F_PACC[0], F_PACC[0], F_T1)
    _emit_int_ops(b, rng, int_budget, R_PACC, R_T2)
    _emit_fp_ops(b, rng, fp_budget, F_PACC, F_T1, F_TMP_P)


def _emit_divergence_region(
    b: ProgramBuilder, profile: AppProfile, rng: random.Random
) -> None:
    """Flag-guarded region with asymmetric paths (regular control)."""
    trips_a, trips_b = profile.divergence_trips
    b.alui(Opcode.SLLI, R_T1, R_FIDX, 3)
    b.alu(Opcode.ADD, R_T1, R_T1, R_FLAGS_BASE)
    b.load(R_FLAG, R_T1, disp=0)
    else_label = b.fresh_label("div_else")
    join_label = b.fresh_label("div_join")
    b.branch(Opcode.BNE, R_FLAG, 0, else_label)
    _emit_spin(b, rng, trips_a, R_PACC[0])
    _emit_remerge_material(b, profile)
    b.jump(join_label)
    b.label(else_label)
    _emit_spin(b, rng, trips_b, R_PACC[1])
    _emit_remerge_material(b, profile)
    b.label(join_label)


def _emit_spin(
    b: ProgramBuilder, rng: random.Random, trips: int, acc: int
) -> None:
    head = b.fresh_label("spin")
    b.li(R_DIV, trips)
    b.label(head)
    b.alui(Opcode.ADDI, acc, acc, rng.randrange(1, 16))
    b.alu(Opcode.XOR, acc, acc, R_DIV)
    b.alui(Opcode.ADDI, R_DIV, R_DIV, -1)
    b.branch(Opcode.BNE, R_DIV, 0, head)


def _emit_remerge_material(b: ProgramBuilder, profile: AppProfile) -> None:
    """Redundant common-register writes on divergent paths.

    Both paths recompute the same function of context-identical values, so
    the two threads write equal values into the same architected register
    from different PCs — exactly the case §4.2.7's register merging exists
    to repair.  Without it the register (and everything downstream) stays
    split until the end of the run.
    """
    for k in range(profile.remerge_regs):
        dst = R_CACC[(2 + k) % len(R_CACC)]
        b.alui(Opcode.ADDI, dst, R_T0, 21 + k)


def _emit_dispatch_region(
    b: ProgramBuilder, profile: AppProfile, rng: random.Random
) -> None:
    """Irregular control: a compare-chain into distinct handlers.

    Contexts that pick different handlers sit at different PCs for the
    whole handler body — the twolf/vpr/vortex behaviour that keeps the
    paper's MERGE fraction low.
    """
    handlers = profile.dispatch_handlers
    b.alui(Opcode.SLLI, R_T1, R_FIDX, 3)
    b.alu(Opcode.ADD, R_T1, R_T1, R_SEL_BASE)
    b.load(R_FLAG, R_T1, disp=0)
    labels = [b.fresh_label(f"hnd{k}_") for k in range(handlers)]
    join_label = b.fresh_label("disp_join")
    for k in range(1, handlers):
        b.li(R_CMP, k)
        b.branch(Opcode.BEQ, R_FLAG, R_CMP, labels[k])
    b.jump(labels[0])
    trips_a, trips_b = profile.divergence_trips
    for k, label in enumerate(labels):
        b.label(label)
        body_ops = 3 + (k * 2) % 7
        for j in range(body_ops):
            acc = R_PACC[(k + j) % len(R_PACC)]
            b.alui(Opcode.ADDI, acc, acc, k + j + 1)
            if j % 3 == 2:
                b.alu(Opcode.XOR, acc, acc, R_FLAG)
        if k % 2 == 1:
            # Handler lengths span the profile's divergence-trip range, so
            # contexts picking different handlers produce path-length
            # differences following the application's Figure 2 profile.
            span = max(1, handlers - 1)
            trips = trips_a + (k * (trips_b - trips_a)) // span
            _emit_spin(b, rng, max(1, trips), R_PACC[k % len(R_PACC)])
        _emit_remerge_material(b, profile)
        b.jump(join_label)
    b.label(join_label)


def _emit_stores(b: ProgramBuilder, profile: AppProfile) -> None:
    for index in range(profile.stores):
        b.alui(Opcode.SLLI, R_T1, R_I, 3)
        b.alu(Opcode.ADD, R_T1, R_T1, R_OUT_BASE)
        value = R_PACC[index % len(R_PACC)]
        b.store(value, R_T1, disp=0)


def _emit_epilogue(b: ProgramBuilder) -> None:
    """Store every accumulator (the cross-configuration checksum)."""
    b.alui(Opcode.SLLI, R_T1, R_TRIPS, 3)
    b.alu(Opcode.ADD, R_T1, R_T1, R_OUT_BASE)
    for offset, reg in enumerate(R_CACC + R_PACC):
        b.store(reg, R_T1, disp=offset * WORD_SIZE)
    for offset, reg in enumerate(F_CACC + F_PACC):
        b.store(reg, R_T1, disp=(offset + 8) * WORD_SIZE, fp=True)
    b.halt()
