"""Synthetic workloads standing in for the paper's benchmark suites."""

from repro.workloads.dsl import ProgramBuilder
from repro.workloads.engine import (
    DynamicWorkload,
    EngineBuild,
    Phase,
    Req,
    ReqGenEngine,
    RequestStreamWorkload,
    Workload,
    WorkloadRegistryError,
    analyze_engine_build,
    build_engine_workload,
    get_workload,
    is_engine_workload,
    register_workload,
    workload_names,
)
from repro.workloads.generator import WorkloadBuild, build_workload
from repro.workloads.message_passing import MPWorkloadBuild, build_mp_workload
from repro.workloads.profiles import APP_ORDER, PROFILES, AppProfile, get_profile
from repro.workloads.record import (
    RecordedTrace,
    TraceReplayWorkload,
    record_trace,
)
from repro.workloads.suites import (
    Scenario,
    Suite,
    SuiteError,
    expand_suite_jobs,
    load_suite,
)

__all__ = [
    "ProgramBuilder",
    "MPWorkloadBuild",
    "build_mp_workload",
    "WorkloadBuild",
    "build_workload",
    "APP_ORDER",
    "PROFILES",
    "AppProfile",
    "get_profile",
    # Engine-workload layer.
    "Req",
    "ReqGenEngine",
    "Workload",
    "EngineBuild",
    "Phase",
    "DynamicWorkload",
    "RequestStreamWorkload",
    "WorkloadRegistryError",
    "register_workload",
    "workload_names",
    "is_engine_workload",
    "get_workload",
    "build_engine_workload",
    "analyze_engine_build",
    # Trace record/replay.
    "RecordedTrace",
    "TraceReplayWorkload",
    "record_trace",
    # Scenario suites.
    "Scenario",
    "Suite",
    "SuiteError",
    "expand_suite_jobs",
    "load_suite",
]
