"""Synthetic workloads standing in for the paper's benchmark suites."""

from repro.workloads.dsl import ProgramBuilder
from repro.workloads.generator import WorkloadBuild, build_workload
from repro.workloads.message_passing import MPWorkloadBuild, build_mp_workload
from repro.workloads.profiles import APP_ORDER, PROFILES, AppProfile, get_profile

__all__ = [
    "ProgramBuilder",
    "MPWorkloadBuild",
    "build_mp_workload",
    "WorkloadBuild",
    "build_workload",
    "APP_ORDER",
    "PROFILES",
    "AppProfile",
    "get_profile",
]
