"""Message-passing workloads (extension — the paper's §7 future work).

The paper's §3.1 taxonomy has three SPMD categories; message-passing is
named but never evaluated.  These workloads fill the gap: N ranked
processes with private address spaces exchange values through SEND/TRECV
channels each iteration, around a context-identical compute block.

Two communication patterns:

* ``ring``  — rank r sends to rank (r+1) mod N and receives from r-1
  (the classic halo/pipeline shape);
* ``pairs`` — rank r exchanges with rank r^1 (nearest-neighbour swap).

Receives are software spin loops over the polling TRECV instruction, so
any fair fetch interleaving terminates; each iteration sends exactly one
message per rank and receives exactly one, so channels are empty at HALT.
"""

from __future__ import annotations

import random

from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE, Program
from repro.pipeline.job import Job
from repro.workloads.dsl import ProgramBuilder

# Register plan.
R_CACC = (1, 2, 3, 4)  # common accumulators
R_PACC = 5  # private accumulator (the exchanged value)
R_RECVD = 6  # count of received messages
R_SHARED = 9
R_OUT = 12
R_T0, R_T1 = 14, 15
R_MSG = 16
R_I = 18
R_TRIPS = 19
R_TID = 20
R_NCTX = 21
R_DEST = 22
R_NEG1 = 25

SHARED_WORDS = 64
OUT_WORDS = 8

PATTERNS = ("ring", "pairs")


class MPWorkloadBuild:
    """A generated message-passing program and its job factory."""

    def __init__(self, name: str, nctx: int, program: Program) -> None:
        self.name = name
        self.nctx = nctx
        self.program = program

    def job(self) -> Job:
        return Job.message_passing(self.name, self.program, [{}] * self.nctx)

    def output_region(self, job: Job) -> list[list[int | float]]:
        base = self.program.symbol("out")
        return [space.read_array(base, OUT_WORDS) for space in job.address_spaces]


def build_mp_workload(
    nctx: int,
    pattern: str = "ring",
    iterations: int = 32,
    common_ops: int = 16,
    seed: int | None = None,
) -> MPWorkloadBuild:
    """Generate an N-rank message-passing workload."""
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; choose from {PATTERNS}")
    if nctx < 2:
        raise ValueError("message passing needs at least two ranks")
    if pattern == "pairs" and nctx % 2:
        raise ValueError("the 'pairs' pattern needs an even rank count")
    rng = random.Random(seed if seed is not None else hash(pattern) & 0xFFFF)

    b = ProgramBuilder(f"mp-{pattern}")
    b.array("shared_i", [rng.randrange(1, 1 << 16) for _ in range(SHARED_WORDS)])
    b.reserve("out", OUT_WORDS)

    b.inst(Opcode.TID, rd=R_TID)
    b.inst(Opcode.NCTX, rd=R_NCTX)
    if pattern == "ring":
        # dest = (tid + 1) mod nctx — branchless, as MPI rank arithmetic
        # is: a control divergence here would split the threads before the
        # common state is even initialised.
        b.alui(Opcode.ADDI, R_DEST, R_TID, 1)
        b.alu(Opcode.REM, R_DEST, R_DEST, R_NCTX)
    else:  # pairs: dest = tid ^ 1
        b.alui(Opcode.XORI, R_DEST, R_TID, 1)
    b.la(R_SHARED, "shared_i")
    b.la(R_OUT, "out")
    b.li(R_TRIPS, iterations)
    for index, reg in enumerate(R_CACC):
        b.li(reg, 11 + 5 * index)
    b.alui(Opcode.ADDI, R_PACC, R_TID, 13)  # rank-seeded payload
    b.li(R_RECVD, 0)
    b.li(R_NEG1, -1)
    b.li(R_T0, 3)
    b.li(R_I, 0)

    b.label("main_loop")
    # Context-identical compute: shared loads feeding common accumulators.
    for k in range(common_ops):
        if k % 5 == 0:
            b.alui(Opcode.ADDI, R_T1, R_I, rng.randrange(SHARED_WORDS))
            b.alui(Opcode.ANDI, R_T1, R_T1, SHARED_WORDS - 1)
            b.alui(Opcode.SLLI, R_T1, R_T1, 3)
            b.alu(Opcode.ADD, R_T1, R_T1, R_SHARED)
            b.load(R_T0, R_T1, disp=0)
        dst = R_CACC[k % len(R_CACC)]
        op = rng.choice((Opcode.ADD, Opcode.XOR, Opcode.OR, Opcode.SUB))
        b.alu(op, dst, dst, R_T0)

    # Exchange: send my payload, spin-receive my neighbour's.
    b.inst(Opcode.SEND, rs1=R_DEST, rs2=R_PACC)
    spin = b.fresh_label("recv_spin")
    b.label(spin)
    b.inst(Opcode.TRECV, rd=R_MSG, rs1=R_TID)
    b.branch(Opcode.BEQ, R_MSG, R_NEG1, spin)
    b.alu(Opcode.ADD, R_PACC, R_PACC, R_MSG)
    b.alui(Opcode.ANDI, R_PACC, R_PACC, (1 << 30) - 1)  # keep payloads bounded
    b.alui(Opcode.ADDI, R_RECVD, R_RECVD, 1)

    b.alui(Opcode.ADDI, R_I, R_I, 1)
    b.branch(Opcode.BLT, R_I, R_TRIPS, "main_loop")

    for offset, reg in enumerate(R_CACC + (R_PACC, R_RECVD)):
        b.store(reg, R_OUT, disp=offset * WORD_SIZE)
    b.halt()
    return MPWorkloadBuild(f"mp-{pattern}", nctx, b.build())
