"""Program builder DSL.

:class:`ProgramBuilder` assembles instruction lists programmatically with
forward label references and a managed data segment — the workload
generator uses it to synthesize the benchmark programs; tests use it for
targeted instruction sequences.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE, Program


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "generated", data_base: int = 0x1000) -> None:
        self.name = name
        self._pending: list[dict] = []
        self._labels: dict[str, int] = {}
        self._data: dict[int, int | float] = {}
        self._symbols: dict[str, int] = {}
        self._data_cursor = data_base

    # ------------------------------------------------------------------ code
    def label(self, name: str) -> str:
        """Define code label *name* at the current position."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._pending)
        return name

    def fresh_label(self, prefix: str = "L") -> str:
        """A unique, not-yet-placed label name."""
        index = 0
        while f"{prefix}{index}" in self._labels or any(
            p.get("target") == f"{prefix}{index}" for p in self._pending
        ):
            index += 1
        return f"{prefix}{index}"

    def inst(
        self,
        op: Opcode,
        rd: int | None = None,
        rs1: int | None = None,
        rs2: int | None = None,
        imm: int | float | None = None,
        target: str | int | None = None,
    ) -> "ProgramBuilder":
        """Append one instruction; *target* may be a label name."""
        self._pending.append(
            {"op": op, "rd": rd, "rs1": rs1, "rs2": rs2, "imm": imm, "target": target}
        )
        return self

    # Convenience emitters for the common shapes.
    def li(self, rd: int, imm: int | float) -> "ProgramBuilder":
        op = Opcode.FLI if isinstance(imm, float) else Opcode.LI
        return self.inst(op, rd=rd, imm=imm)

    def la(self, rd: int, symbol: str) -> "ProgramBuilder":
        return self.inst(Opcode.LI, rd=rd, imm=self._symbols[symbol])

    def alu(self, op: Opcode, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.inst(op, rd=rd, rs1=rs1, rs2=rs2)

    def alui(self, op: Opcode, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.inst(op, rd=rd, rs1=rs1, imm=imm)

    def load(self, rd: int, base: int, disp: int = 0, fp: bool = False):
        return self.inst(Opcode.FLW if fp else Opcode.LW, rd=rd, rs1=base, imm=disp)

    def store(self, rs: int, base: int, disp: int = 0, fp: bool = False):
        return self.inst(Opcode.FSW if fp else Opcode.SW, rs1=base, rs2=rs, imm=disp)

    def branch(self, op: Opcode, rs1: int, rs2: int, target: str):
        return self.inst(op, rs1=rs1, rs2=rs2, target=target)

    def jump(self, target: str) -> "ProgramBuilder":
        return self.inst(Opcode.J, target=target)

    def halt(self) -> "ProgramBuilder":
        return self.inst(Opcode.HALT)

    # ------------------------------------------------------------------ data
    def array(
        self,
        name: str,
        values: Iterable[int | float],
        base: int | None = None,
    ) -> int:
        """Place an array in the data segment; returns its byte address."""
        if name in self._symbols:
            raise ValueError(f"duplicate data symbol {name!r}")
        if base is None:
            base = self._data_cursor
        if base % WORD_SIZE:
            raise ValueError("array base must be word aligned")
        addr = base
        for value in values:
            self._data[addr] = value
            addr += WORD_SIZE
        self._symbols[name] = base
        self._data_cursor = max(self._data_cursor, addr)
        return base

    def reserve(self, name: str, words: int, base: int | None = None) -> int:
        """Reserve a zero-filled array."""
        return self.array(name, [0] * words, base=base)

    def symbol(self, name: str) -> int:
        return self._symbols[name]

    # ----------------------------------------------------------------- build
    def build(self) -> Program:
        """Resolve labels and produce the program."""
        instructions = []
        for pending in self._pending:
            target = pending["target"]
            if isinstance(target, str):
                if target not in self._labels:
                    raise ValueError(f"undefined label {target!r}")
                target = self._labels[target]
            instructions.append(
                Instruction(
                    pending["op"],
                    rd=pending["rd"],
                    rs1=pending["rs1"],
                    rs2=pending["rs2"],
                    imm=pending["imm"],
                    target=target,
                )
            )
        return Program(
            instructions,
            labels=dict(self._labels),
            data=dict(self._data),
            symbols=dict(self._symbols),
            name=self.name,
        )

    def __len__(self) -> int:
        return len(self._pending)
