"""Data-declared scenario suites (``scenarios/*.toml``).

A suite file declares simulation scenarios as data — workload name,
configuration list, thread counts, scale, seed, optional engine — and
expands to a flat :class:`~repro.harness.experiment.CampaignJob` list,
so campaigns over registry workloads are version-controlled documents
rather than ad-hoc flag soup::

    [suite]
    name = "smoke"

    [[scenario]]
    workload = "dyn-bursty"
    configs = ["Base", "MMT-FXR"]
    threads = [2, 4]
    scale = 0.2
    seed = 7

Workload names resolve through the engine registry (including
``trace:PATH`` recorded traces) or the paper application profiles.
Every structural problem — unparseable TOML, an empty suite, unknown
keys, an unknown workload or configuration, a thread count the workload
refuses, a Limit config over a message-passing workload — raises
:class:`SuiteError` carrying the file path and scenario index, so the
CLI reports a one-line diagnosis instead of a traceback.

Expansion content-addresses recorded traces: a replay scenario's jobs
carry the trace digest in their ``tag``, which is part of the campaign
cache key, so regenerating a trace file invalidates exactly the cached
results built from the old recording.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

_SUITE_KEYS = {"name", "description"}
_SCENARIO_KEYS = {
    "workload", "configs", "threads", "scale", "seed", "engine", "tag",
}


class SuiteError(ValueError):
    """A scenario suite file that cannot be loaded or expanded."""

    def __init__(
        self, path, reason: str, scenario: int | None = None
    ) -> None:
        where = str(path)
        if scenario is not None:
            where += f" [scenario {scenario + 1}]"
        super().__init__(f"{where}: {reason}")
        self.path = str(path)
        self.scenario = scenario
        self.reason = reason


@dataclass(frozen=True)
class Scenario:
    """One suite entry: a workload crossed with configs and thread counts."""

    workload: str
    configs: tuple[str, ...]
    threads: tuple[int, ...]
    scale: float = 1.0
    seed: int | None = None
    #: ``None`` defers to the expansion-time default engine.
    engine: str | None = None
    tag: str = ""


@dataclass(frozen=True)
class Suite:
    """A named, validated collection of scenarios."""

    name: str
    path: str
    scenarios: tuple[Scenario, ...] = field(default_factory=tuple)

    def job_count(self) -> int:
        return sum(
            len(s.configs) * len(s.threads) for s in self.scenarios
        )


def _require(condition: bool, path, reason: str, scenario=None) -> None:
    if not condition:
        raise SuiteError(path, reason, scenario=scenario)


def _resolve_workload(name: str, path, index: int):
    """Workload object for registry names, ``None`` for app profiles."""
    from repro.workloads.engine import (
        WorkloadRegistryError,
        get_workload,
        is_engine_workload,
    )
    from repro.workloads.profiles import PROFILES

    if is_engine_workload(name):
        try:
            return get_workload(name)
        except WorkloadRegistryError as exc:
            raise SuiteError(path, str(exc), scenario=index) from exc
    if name in PROFILES:
        return None
    known = sorted(PROFILES)
    from repro.workloads.engine import workload_names

    raise SuiteError(
        path,
        f"unknown workload {name!r}; registry workloads: "
        f"{', '.join(workload_names())}; app profiles: {', '.join(known)}",
        scenario=index,
    )


def load_suite(path: str | Path) -> Suite:
    """Parse and validate one ``scenarios/*.toml`` file."""
    from repro.core.config import WorkloadType
    from repro.harness.experiment import CONFIG_FACTORIES
    from repro.pipeline.fast import ENGINES

    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SuiteError(path, f"cannot read suite file: {exc}") from exc
    try:
        document = tomllib.loads(raw.decode("utf-8"))
    except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
        raise SuiteError(path, f"not valid TOML: {exc}") from exc

    head = document.get("suite", {})
    _require(isinstance(head, dict), path, "[suite] must be a table")
    unknown = set(head) - _SUITE_KEYS
    _require(
        not unknown, path,
        f"unknown [suite] key(s): {', '.join(sorted(unknown))}",
    )
    stray = set(document) - {"suite", "scenario"}
    _require(
        not stray, path,
        f"unknown top-level table(s): {', '.join(sorted(stray))}",
    )
    name = head.get("name", path.stem)
    _require(
        isinstance(name, str) and name != "",
        path, "[suite] name must be a non-empty string",
    )

    entries = document.get("scenario", [])
    _require(
        isinstance(entries, list) and len(entries) > 0,
        path, "suite declares no [[scenario]] entries",
    )

    scenarios: list[Scenario] = []
    for index, entry in enumerate(entries):
        _require(
            isinstance(entry, dict), path,
            "[[scenario]] must be a table", scenario=index,
        )
        unknown = set(entry) - _SCENARIO_KEYS
        _require(
            not unknown, path,
            f"unknown scenario key(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_SCENARIO_KEYS))})",
            scenario=index,
        )
        workload_name = entry.get("workload")
        _require(
            isinstance(workload_name, str) and workload_name != "",
            path, "scenario needs a 'workload' name", scenario=index,
        )
        workload = _resolve_workload(workload_name, path, index)

        configs = entry.get("configs", ["Base"])
        _require(
            isinstance(configs, list) and configs
            and all(isinstance(c, str) for c in configs),
            path, "'configs' must be a non-empty list of config names",
            scenario=index,
        )
        for config in configs:
            _require(
                config in CONFIG_FACTORIES, path,
                f"unknown config {config!r} "
                f"(known: {', '.join(CONFIG_FACTORIES)})",
                scenario=index,
            )
            if (
                workload is not None
                and CONFIG_FACTORIES[config]().limit_identical
                and workload.wtype is WorkloadType.MESSAGE_PASSING
            ):
                raise SuiteError(
                    path,
                    f"config {config!r} (limit study) cannot run "
                    f"message-passing workload {workload_name!r}: identical "
                    "clones would deadlock on rank-0 traffic",
                    scenario=index,
                )

        from repro.core.itid import MAX_THREADS

        threads = entry.get("threads", [2])
        _require(
            isinstance(threads, list) and threads
            and all(isinstance(t, int) and not isinstance(t, bool)
                    and 1 <= t <= MAX_THREADS for t in threads),
            path,
            f"'threads' must be a non-empty list of ints in "
            f"1..{MAX_THREADS}",
            scenario=index,
        )
        if workload is not None:
            for count in threads:
                _require(
                    workload.valid_nctx(count), path,
                    f"workload {workload_name!r} does not support "
                    f"nctx={count}",
                    scenario=index,
                )

        scale = entry.get("scale", 1.0)
        _require(
            isinstance(scale, (int, float)) and not isinstance(scale, bool)
            and scale > 0,
            path, "'scale' must be a positive number", scenario=index,
        )
        seed = entry.get("seed")
        _require(
            seed is None
            or (isinstance(seed, int) and not isinstance(seed, bool)),
            path, "'seed' must be an integer", scenario=index,
        )
        engine = entry.get("engine")
        _require(
            engine is None or engine in ENGINES,
            path,
            f"unknown engine {engine!r} (known: {', '.join(ENGINES)})",
            scenario=index,
        )
        tag = entry.get("tag", "")
        _require(
            isinstance(tag, str), path, "'tag' must be a string",
            scenario=index,
        )
        scenarios.append(Scenario(
            workload=workload_name,
            configs=tuple(configs),
            threads=tuple(threads),
            scale=float(scale),
            seed=seed,
            engine=engine,
            tag=tag,
        ))
    return Suite(name=name, path=str(path), scenarios=tuple(scenarios))


def expand_suite_jobs(suite: Suite, default_engine: str = "reference",
                      default_specialize: bool = True):
    """Expand *suite* to the flat :class:`CampaignJob` list it declares.

    Scenario ``engine`` keys win over *default_engine* (the CLI's
    ``--engine`` flag); *default_specialize* (the CLI's
    ``--no-specialize``) applies to every job, since specialization is a
    host-side execution strategy, not part of the scenario's meaning.
    Registry workloads contribute their
    :meth:`~repro.workloads.engine.Workload.cache_token` — the trace
    digest for replays — to each job's ``tag``, making suite results
    content-addressed in the campaign cache.
    """
    from repro.harness.experiment import CONFIG_FACTORIES, CampaignJob
    from repro.workloads.engine import get_workload, is_engine_workload

    jobs = []
    for scenario in suite.scenarios:
        token = ""
        if is_engine_workload(scenario.workload):
            token = get_workload(scenario.workload).cache_token()
        tag = "+".join(part for part in (token, scenario.tag) if part)
        for config in scenario.configs:
            for count in scenario.threads:
                jobs.append(CampaignJob(
                    app=scenario.workload,
                    config=CONFIG_FACTORIES[config](),
                    threads=count,
                    scale=scenario.scale,
                    seed=scenario.seed,
                    tag=tag,
                    engine=scenario.engine or default_engine,
                    specialize=default_specialize,
                ))
    return jobs
