"""repro — Minimal Multi-Threading (MMT), a MICRO 2010 reproduction.

A from-scratch, pure-Python implementation of the MMT micro-architecture
(Long, Franklin, Biswas, Ortiz, Oberg, Fan, Chong: *Minimal Multi-Threading:
Finding and Removing Redundant Instructions in Multi-Threaded Processors*)
together with every substrate the paper's evaluation depends on: a RISC ISA
and assembler, a value-accurate cycle-level SMT core, branch prediction, a
cache hierarchy, a Wattch-style energy model, synthetic SPMD workloads
standing in for the paper's benchmark suites, a trace profiler for the
motivation study, and a harness regenerating every table and figure.

Quick start::

    from repro import MMTConfig, MachineConfig, SMTCore, build_workload, get_profile

    build = build_workload(get_profile("ammp"), nctx=2)
    base = SMTCore(MachineConfig(num_threads=2), MMTConfig.base(), build.job())
    mmt = SMTCore(MachineConfig(num_threads=2), MMTConfig.mmt_fxr(), build.job())
    print(base.run().cycles / mmt.run().cycles)  # MMT speedup
"""

from repro.core.config import MMTConfig, WorkloadType
from repro.harness.experiment import geomean, run_app, speedup_over_base
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.pipeline.config import MachineConfig
from repro.pipeline.job import Job
from repro.pipeline.smt import SimulationInvariantError, SMTCore
from repro.workloads.generator import build_workload
from repro.workloads.profiles import APP_ORDER, PROFILES, get_profile

__version__ = "1.0.0"

__all__ = [
    "MMTConfig",
    "WorkloadType",
    "geomean",
    "run_app",
    "speedup_over_base",
    "assemble",
    "Program",
    "MachineConfig",
    "Job",
    "SimulationInvariantError",
    "SMTCore",
    "build_workload",
    "APP_ORDER",
    "PROFILES",
    "get_profile",
    "__version__",
]
