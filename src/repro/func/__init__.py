"""Functional execution: architectural state and the exact executor/oracle."""

from repro.func.executor import Executed, ExecutionError, FunctionalExecutor, to_s64
from repro.func.state import DEFAULT_STACK_TOP, STACK_STRIDE, ArchState

__all__ = [
    "Executed",
    "ExecutionError",
    "FunctionalExecutor",
    "to_s64",
    "ArchState",
    "DEFAULT_STACK_TOP",
    "STACK_STRIDE",
]
