"""Pre-decoded functional execution: the fast engine's instruction interpreter.

The reference :class:`~repro.func.executor.FunctionalExecutor` re-dispatches
every dynamic instruction through a ~50-way ``if op is ...`` chain.  The fast
engine instead *decodes once*: :func:`decode_program` walks the static
program and builds one specialized closure per PC with every decode-time
decision (opcode dispatch, source-register list, destination presence,
immediate normalization, fall-through PC) already taken.  Stepping is then
one list index plus one call.

:class:`FastExecutor` is a drop-in subclass of the reference executor and is
bit-identical to it by construction:

* every closure performs the same operations in the same order as the
  reference ``_dispatch`` arm, including the explicit guards (division by
  zero, negative square root) with the exact same :class:`ExecutionError`
  messages;
* any other invalid operation is wrapped in the same uniform
  ``invalid {OP} at pc {pc}`` message;
* a PC whose instruction cannot be specialized (e.g. a control instruction
  with no resolved target) simply keeps a ``None`` slot, and the step falls
  back to the reference interpreter for that instruction.

The differential fuzz suite (``tests/test_fastpath_differential.py``) pins
this equivalence on hundreds of generated programs.
"""

from __future__ import annotations

import math

from repro.func.executor import (
    Executed,
    ExecutionError,
    FunctionalExecutor,
    _int_div,
    _int_rem,
    to_s64,
)
from repro.isa.opcodes import Opcode

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63
_TWO64 = 1 << 64

_ERRS = (TypeError, ValueError, OverflowError, ZeroDivisionError)

#: Binary register-register integer ops, wrapped to signed 64-bit.
_INT2 = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 63),
    Opcode.SRL: lambda a, b: (a & _MASK64) >> (b & 63),
    Opcode.SRA: lambda a, b: a >> (b & 63),
}

#: Register-immediate integer ops, wrapped to signed 64-bit.
_INT_IMM = {
    Opcode.ADDI: lambda a, imm: a + imm,
    Opcode.ANDI: lambda a, imm: a & imm,
    Opcode.ORI: lambda a, imm: a | imm,
    Opcode.XORI: lambda a, imm: a ^ imm,
    Opcode.SLLI: lambda a, imm: a << (imm & 63),
    Opcode.SRLI: lambda a, imm: (a & _MASK64) >> (imm & 63),
}

#: Binary ops whose result is used as-is (no 64-bit wrap).
_GEN2 = {
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SEQ: lambda a, b: 1 if a == b else 0,
    Opcode.FADD: lambda a, b: float(a) + float(b),
    Opcode.FSUB: lambda a, b: float(a) - float(b),
    Opcode.FMUL: lambda a, b: float(a) * float(b),
    Opcode.FMIN: lambda a, b: min(float(a), float(b)),
    Opcode.FMAX: lambda a, b: max(float(a), float(b)),
    Opcode.FSLT: lambda a, b: 1 if float(a) < float(b) else 0,
    Opcode.FSEQ: lambda a, b: 1 if float(a) == float(b) else 0,
}

#: Unary ops whose result is used as-is.
_GEN1 = {
    Opcode.FNEG: lambda a: -float(a),
    Opcode.FABS: lambda a: abs(float(a)),
    Opcode.FCVT: lambda a: float(a),
    Opcode.FTOI: lambda a: to_s64(int(a)),
}

_BRANCH_COND = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}


def _src_reader(srcs):
    """Closure building ``tuple(regs[r] for r in srcs)`` for 0/1/2 sources."""
    if not srcs:
        return lambda regs: ()
    if len(srcs) == 1:
        s0 = srcs[0]
        return lambda regs: (regs[s0],)
    s0, s1 = srcs
    return lambda regs: (regs[s0], regs[s1])


def _compile(pc, inst):
    """Specialized step closure for *inst* at *pc*, or None to fall back.

    Each closure takes the :class:`~repro.func.state.ArchState`, applies the
    instruction exactly as the reference interpreter would, and returns the
    :class:`Executed` record.
    """
    op = inst.op
    npc = pc + 1
    rs1 = inst.rs1
    rs2 = inst.rs2
    imm = inst.imm
    dst = inst.dst
    target = inst.target
    read = _src_reader(inst.srcs)
    opname = op.name

    fn2 = _INT2.get(op)
    if fn2 is not None:
        def step_int2(state):
            regs = state.regs
            try:
                r = to_s64(fn2(regs[rs1], regs[rs2]))
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_int2

    fni = _INT_IMM.get(op)
    if fni is not None:
        def step_int_imm(state):
            regs = state.regs
            try:
                r = to_s64(fni(regs[rs1], imm))
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_int_imm

    fng = _GEN2.get(op)
    if fng is not None:
        def step_gen2(state):
            regs = state.regs
            try:
                r = fng(regs[rs1], regs[rs2])
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_gen2

    fnu = _GEN1.get(op)
    if fnu is not None:
        def step_gen1(state):
            regs = state.regs
            try:
                r = fnu(regs[rs1])
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_gen1

    if op is Opcode.SLTI:
        def step_slti(state):
            regs = state.regs
            try:
                r = 1 if regs[rs1] < imm else 0
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid SLTI at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_slti

    if op is Opcode.LI or op is Opcode.FLI:
        try:
            const = to_s64(imm) if op is Opcode.LI else float(imm)
        except _ERRS:
            return None  # reference path reproduces the runtime error
        def step_const(state):
            regs = state.regs
            if dst is not None:
                regs[dst] = const
            state.pc = npc
            return Executed(
                pc, inst, (), const, None, None, None, npc, state.tid
            )
        return step_const

    if op is Opcode.DIV or op is Opcode.REM:
        div = _int_div if op is Opcode.DIV else _int_rem
        kind = "division" if op is Opcode.DIV else "remainder"
        def step_idiv(state):
            regs = state.regs
            try:
                if regs[rs2] == 0:
                    raise ExecutionError(
                        f"context {state.tid}: integer {kind} by zero at pc {pc}"
                    )
                r = to_s64(div(regs[rs1], regs[rs2]))
            except ExecutionError:
                raise
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_idiv

    if op is Opcode.FDIV:
        def step_fdiv(state):
            regs = state.regs
            try:
                divisor = float(regs[rs2])
                if divisor == 0.0:
                    raise ExecutionError(
                        f"context {state.tid}: fp division by zero at pc {pc}"
                    )
                r = float(regs[rs1]) / divisor
            except ExecutionError:
                raise
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid FDIV at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_fdiv

    if op is Opcode.FSQRT:
        def step_fsqrt(state):
            regs = state.regs
            try:
                operand = float(regs[rs1])
                if operand < 0.0:
                    raise ExecutionError(
                        f"context {state.tid}: square root of negative value "
                        f"at pc {pc}"
                    )
                r = math.sqrt(operand)
            except ExecutionError:
                raise
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid FSQRT at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_fsqrt

    if op is Opcode.LW or op is Opcode.FLW:
        def step_load(state):
            regs = state.regs
            try:
                addr = to_s64(regs[rs1] + imm)
                r = state.memory.load(addr)
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, addr, None, None, npc, state.tid)
        return step_load

    if op is Opcode.SW or op is Opcode.FSW:
        def step_store(state):
            regs = state.regs
            try:
                addr = to_s64(regs[rs1] + imm)
                sval = regs[rs2]
                state.memory.store(addr, sval)
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            state.pc = npc
            return Executed(pc, inst, sv, None, addr, sval, None, npc, state.tid)
        return step_store

    cond = _BRANCH_COND.get(op)
    if cond is not None:
        if target is None:
            return None
        def step_branch(state):
            regs = state.regs
            try:
                taken = cond(regs[rs1], regs[rs2])
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid {opname} at pc {pc}: {exc}"
                ) from exc
            nxt = target if taken else npc
            sv = read(regs)
            state.pc = nxt
            return Executed(pc, inst, sv, None, None, None, taken, nxt, state.tid)
        return step_branch

    if op is Opcode.J or op is Opcode.JAL:
        if target is None:
            return None
        link = pc + 1 if op is Opcode.JAL else None
        def step_jump(state):
            regs = state.regs
            if dst is not None:
                regs[dst] = link
            state.pc = target
            return Executed(
                pc, inst, (), link, None, None, True, target, state.tid
            )
        return step_jump

    if op is Opcode.JR:
        def step_jr(state):
            regs = state.regs
            nxt = regs[rs1]
            sv = read(regs)
            state.pc = nxt
            return Executed(pc, inst, sv, None, None, None, True, nxt, state.tid)
        return step_jr

    if op is Opcode.SEND:
        def step_send(state):
            regs = state.regs
            try:
                if state.channels is None:
                    raise ExecutionError("SEND outside a message-passing job")
                state.channels.send(regs[rs1], regs[rs2])
            except ExecutionError:
                raise
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid SEND at pc {pc}: {exc}"
                ) from exc
            sv = read(regs)
            state.pc = npc
            return Executed(pc, inst, sv, None, None, None, None, npc, state.tid)
        return step_send

    if op is Opcode.TRECV:
        def step_trecv(state):
            regs = state.regs
            try:
                if state.channels is None:
                    raise ExecutionError("TRECV outside a message-passing job")
                message = state.channels.try_recv(regs[rs1])
            except ExecutionError:
                raise
            except _ERRS as exc:
                raise ExecutionError(
                    f"context {state.tid}: invalid TRECV at pc {pc}: {exc}"
                ) from exc
            r = -1 if message is None else message
            sv = read(regs)
            if dst is not None:
                regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, sv, r, None, None, None, npc, state.tid)
        return step_trecv

    if op is Opcode.TID or op is Opcode.NCTX:
        want_tid = op is Opcode.TID
        def step_sys(state):
            r = state.tid if want_tid else state.nctx
            if dst is not None:
                state.regs[dst] = r
            state.pc = npc
            return Executed(pc, inst, (), r, None, None, None, npc, state.tid)
        return step_sys

    if op is Opcode.NOP or op is Opcode.HINT:
        def step_nop(state):
            state.pc = npc
            return Executed(pc, inst, (), None, None, None, None, npc, state.tid)
        return step_nop

    if op is Opcode.HALT:
        def step_halt(state):
            state.halted = True
            return Executed(pc, inst, (), None, None, None, None, pc, state.tid)
        return step_halt

    return None


def decode_program(program):
    """One specialized step closure (or None) per PC of *program*."""
    return [_compile(pc, inst) for pc, inst in enumerate(program.instructions)]


class FastExecutor(FunctionalExecutor):
    """Reference-identical executor driven by a pre-decoded dispatch table."""

    def __init__(self, state, ops=None) -> None:
        super().__init__(state)
        self._ops = decode_program(state.program) if ops is None else ops

    def step(self) -> Executed:
        state = self.state
        if state.halted:
            raise ExecutionError(f"context {state.tid} stepped after HALT")
        pc = state.pc
        ops = self._ops
        if not 0 <= pc < len(ops):
            raise ExecutionError(f"context {state.tid}: PC {pc} out of range")
        fn = ops[pc]
        if fn is None:
            return FunctionalExecutor.step(self)
        record = fn(state)
        self.instret += 1
        return record
