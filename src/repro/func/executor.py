"""Functional (architecturally exact) execution of repro-ISA programs.

The :class:`FunctionalExecutor` advances one :class:`ArchState` one
instruction at a time and emits an :class:`Executed` record per step.  It is
used in three roles:

1. stand-alone, for trace capture and the profiling study (Figures 1 and 2);
2. as the per-thread *oracle* that the cycle-level pipeline runs at fetch to
   obtain the correct-path stream and true branch outcomes;
3. as a reference for the pipeline's built-in value self-check: the detailed
   machine asserts that values computed through (possibly merged) physical
   registers match the oracle's values.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.func.state import ArchState
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63


def to_s64(value: int) -> int:
    """Wrap *value* to signed 64-bit two's-complement."""
    value &= _MASK64
    return value - (1 << 64) if value & _SIGN64 else value


class ExecutionError(RuntimeError):
    """Raised when a program performs an architecturally invalid operation.

    Every invalid operation — division by zero, out-of-range or unaligned
    memory access, non-finite conversion, stepping past HALT — surfaces as
    this one type, so callers (the pipeline, the campaign runner, the
    differential tester) never have to catch bare ``ZeroDivisionError`` /
    ``ValueError`` leaking out of the interpreter.
    """


class Executed(NamedTuple):
    """Record of one dynamically executed instruction.

    A NamedTuple: records are immutable once emitted and constructed on the
    simulator's hottest path (one per thread per fetched instruction), so
    the C-level tuple constructor matters.
    """

    pc: int
    inst: Instruction
    src_vals: tuple
    result: object
    addr: int | None
    store_val: object
    taken: bool | None
    next_pc: int
    tid: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Executed t{self.tid} pc={self.pc} {self.inst!r} -> {self.result!r}>"


def _int_div(a: int, b: int) -> int:
    """Truncating signed division (caller guards b != 0)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _int_rem(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


class FunctionalExecutor:
    """Steps an :class:`ArchState` through its program."""

    def __init__(self, state: ArchState) -> None:
        self.state = state
        self.instret = 0

    def step(self) -> Executed:
        """Execute one instruction; returns its :class:`Executed` record."""
        state = self.state
        if state.halted:
            raise ExecutionError(f"context {state.tid} stepped after HALT")
        pc = state.pc
        program = state.program
        if not 0 <= pc < len(program):
            raise ExecutionError(f"context {state.tid}: PC {pc} out of range")
        inst = program.instructions[pc]
        regs = state.regs
        op = inst.op

        result = None
        addr: int | None = None
        store_val = None
        taken: bool | None = None
        next_pc = pc + 1

        try:
            result, addr, store_val, taken, next_pc = self._dispatch(
                state, pc, inst, regs, op, result, addr, store_val, taken,
                next_pc,
            )
        except ExecutionError:
            raise
        except (TypeError, ValueError, OverflowError, ZeroDivisionError) as exc:
            # Any invalid operation the explicit guards below don't name
            # (unaligned/negative memory addresses, non-finite conversions,
            # integer ops on fp values, ...) surfaces uniformly.
            raise ExecutionError(
                f"context {state.tid}: invalid {op.name} at pc {pc}: {exc}"
            ) from exc

        if taken and inst.is_branch:
            next_pc = inst.target

        src_vals = tuple(regs[r] for r in inst.srcs)
        if inst.dst is not None:
            regs[inst.dst] = result
        state.pc = next_pc
        self.instret += 1
        return Executed(
            pc, inst, src_vals, result, addr, store_val, taken, next_pc, state.tid
        )

    def _dispatch(
        self, state, pc, inst, regs, op, result, addr, store_val, taken, next_pc
    ):
        """Execute one opcode; returns (result, addr, store_val, taken,
        next_pc).  Split from :meth:`step` so the uniform invalid-op
        handling wraps exactly the semantic interpretation."""
        if op is Opcode.ADD:
            result = to_s64(regs[inst.rs1] + regs[inst.rs2])
        elif op is Opcode.ADDI:
            result = to_s64(regs[inst.rs1] + inst.imm)
        elif op is Opcode.SUB:
            result = to_s64(regs[inst.rs1] - regs[inst.rs2])
        elif op is Opcode.MUL:
            result = to_s64(regs[inst.rs1] * regs[inst.rs2])
        elif op is Opcode.DIV:
            if regs[inst.rs2] == 0:
                raise ExecutionError(
                    f"context {state.tid}: integer division by zero at pc {pc}"
                )
            result = to_s64(_int_div(regs[inst.rs1], regs[inst.rs2]))
        elif op is Opcode.REM:
            if regs[inst.rs2] == 0:
                raise ExecutionError(
                    f"context {state.tid}: integer remainder by zero at pc {pc}"
                )
            result = to_s64(_int_rem(regs[inst.rs1], regs[inst.rs2]))
        elif op is Opcode.AND:
            result = to_s64(regs[inst.rs1] & regs[inst.rs2])
        elif op is Opcode.ANDI:
            result = to_s64(regs[inst.rs1] & inst.imm)
        elif op is Opcode.OR:
            result = to_s64(regs[inst.rs1] | regs[inst.rs2])
        elif op is Opcode.ORI:
            result = to_s64(regs[inst.rs1] | inst.imm)
        elif op is Opcode.XOR:
            result = to_s64(regs[inst.rs1] ^ regs[inst.rs2])
        elif op is Opcode.XORI:
            result = to_s64(regs[inst.rs1] ^ inst.imm)
        elif op is Opcode.SLL:
            result = to_s64(regs[inst.rs1] << (regs[inst.rs2] & 63))
        elif op is Opcode.SLLI:
            result = to_s64(regs[inst.rs1] << (inst.imm & 63))
        elif op is Opcode.SRL:
            result = to_s64((regs[inst.rs1] & _MASK64) >> (regs[inst.rs2] & 63))
        elif op is Opcode.SRLI:
            result = to_s64((regs[inst.rs1] & _MASK64) >> (inst.imm & 63))
        elif op is Opcode.SRA:
            result = to_s64(regs[inst.rs1] >> (regs[inst.rs2] & 63))
        elif op is Opcode.SLT:
            result = 1 if regs[inst.rs1] < regs[inst.rs2] else 0
        elif op is Opcode.SLTI:
            result = 1 if regs[inst.rs1] < inst.imm else 0
        elif op is Opcode.SEQ:
            result = 1 if regs[inst.rs1] == regs[inst.rs2] else 0
        elif op is Opcode.LI:
            result = to_s64(inst.imm)
        elif op is Opcode.FLI:
            result = float(inst.imm)
        elif op is Opcode.FADD:
            result = float(regs[inst.rs1]) + float(regs[inst.rs2])
        elif op is Opcode.FSUB:
            result = float(regs[inst.rs1]) - float(regs[inst.rs2])
        elif op is Opcode.FMUL:
            result = float(regs[inst.rs1]) * float(regs[inst.rs2])
        elif op is Opcode.FDIV:
            divisor = float(regs[inst.rs2])
            if divisor == 0.0:
                raise ExecutionError(
                    f"context {state.tid}: fp division by zero at pc {pc}"
                )
            result = float(regs[inst.rs1]) / divisor
        elif op is Opcode.FSQRT:
            operand = float(regs[inst.rs1])
            if operand < 0.0:
                raise ExecutionError(
                    f"context {state.tid}: square root of negative value "
                    f"at pc {pc}"
                )
            result = math.sqrt(operand)
        elif op is Opcode.FNEG:
            result = -float(regs[inst.rs1])
        elif op is Opcode.FABS:
            result = abs(float(regs[inst.rs1]))
        elif op is Opcode.FMIN:
            result = min(float(regs[inst.rs1]), float(regs[inst.rs2]))
        elif op is Opcode.FMAX:
            result = max(float(regs[inst.rs1]), float(regs[inst.rs2]))
        elif op is Opcode.FCVT:
            result = float(regs[inst.rs1])
        elif op is Opcode.FTOI:
            result = to_s64(int(regs[inst.rs1]))
        elif op is Opcode.FSLT:
            result = 1 if float(regs[inst.rs1]) < float(regs[inst.rs2]) else 0
        elif op is Opcode.FSEQ:
            result = 1 if float(regs[inst.rs1]) == float(regs[inst.rs2]) else 0
        elif op is Opcode.LW or op is Opcode.FLW:
            addr = to_s64(regs[inst.rs1] + inst.imm)
            result = state.memory.load(addr)
        elif op is Opcode.SW or op is Opcode.FSW:
            addr = to_s64(regs[inst.rs1] + inst.imm)
            store_val = regs[inst.rs2]
            state.memory.store(addr, store_val)
        elif op is Opcode.BEQ:
            taken = regs[inst.rs1] == regs[inst.rs2]
        elif op is Opcode.BNE:
            taken = regs[inst.rs1] != regs[inst.rs2]
        elif op is Opcode.BLT:
            taken = regs[inst.rs1] < regs[inst.rs2]
        elif op is Opcode.BGE:
            taken = regs[inst.rs1] >= regs[inst.rs2]
        elif op is Opcode.J:
            taken = True
            next_pc = inst.target
        elif op is Opcode.JAL:
            taken = True
            result = pc + 1
            next_pc = inst.target
        elif op is Opcode.JR:
            taken = True
            next_pc = regs[inst.rs1]
        elif op is Opcode.SEND:
            if state.channels is None:
                raise ExecutionError("SEND outside a message-passing job")
            state.channels.send(regs[inst.rs1], regs[inst.rs2])
        elif op is Opcode.TRECV:
            if state.channels is None:
                raise ExecutionError("TRECV outside a message-passing job")
            message = state.channels.try_recv(regs[inst.rs1])
            result = -1 if message is None else message
        elif op is Opcode.TID:
            result = state.tid
        elif op is Opcode.NCTX:
            result = state.nctx
        elif op is Opcode.NOP or op is Opcode.HINT:
            pass
        elif op is Opcode.HALT:
            state.halted = True
            next_pc = pc
        else:  # pragma: no cover - exhaustive over Opcode
            raise ExecutionError(f"unimplemented opcode {op}")

        return result, addr, store_val, taken, next_pc

    def run(self, max_steps: int = 10_000_000) -> int:
        """Run until HALT (or *max_steps*); returns instructions retired."""
        start = self.instret
        while not self.state.halted:
            if self.instret - start >= max_steps:
                raise ExecutionError(
                    f"context {self.state.tid} exceeded {max_steps} steps"
                )
            self.step()
        return self.instret - start
