"""Per-context architectural state for functional execution."""

from __future__ import annotations

from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, SP
from repro.mem.memory import AddressSpace

#: Default stack top for context 0; each context's stack is offset below it.
DEFAULT_STACK_TOP = 0x8000_0000
#: Bytes of stack reserved per context in a shared address space.
STACK_STRIDE = 0x10_0000


class ArchState:
    """Architectural registers + PC for one hardware context.

    ``tid`` is the hardware context id (0..3); ``nctx`` the number of
    contexts in the job — both readable through the TID/NCTX instructions.
    """

    __slots__ = (
        "program", "memory", "regs", "pc", "halted", "tid", "nctx", "channels"
    )

    def __init__(
        self,
        program: Program,
        memory: AddressSpace,
        tid: int = 0,
        nctx: int = 1,
        stack_top: int | None = None,
        channels=None,
    ) -> None:
        self.program = program
        self.memory = memory
        self.regs: list[int | float] = [0] * NUM_ARCH_REGS
        if stack_top is None:
            stack_top = DEFAULT_STACK_TOP - tid * STACK_STRIDE
        self.regs[SP] = stack_top
        self.pc = program.entry
        self.halted = False
        self.tid = tid
        self.nctx = nctx
        #: Message network shared by the job (message-passing workloads).
        self.channels = channels

    def copy_registers_from(self, other: "ArchState") -> None:
        """Make this context's registers identical to *other*'s.

        Multi-execution workloads start all instances with identical register
        files (the inputs differ only in memory); the Limit configuration
        clones context 0 entirely.
        """
        self.regs = list(other.regs)
        self.pc = other.pc
