"""Trace profiling: the paper's motivation study (Figures 1 and 2)."""

from repro.profiling.divergence import (
    FIG2_BUCKETS,
    divergence_histogram,
    mean_gap_length_instructions,
)
from repro.profiling.sharing import (
    DivergentGap,
    PairSharing,
    analyze_job,
    analyze_pair,
)
from repro.profiling.tracing import capture_job_traces, taken_branch_count

__all__ = [
    "FIG2_BUCKETS",
    "divergence_histogram",
    "mean_gap_length_instructions",
    "DivergentGap",
    "PairSharing",
    "analyze_job",
    "analyze_pair",
    "capture_job_traces",
    "taken_branch_count",
]
