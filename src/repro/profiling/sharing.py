"""Instruction-sharing analysis (paper §3.2, Figure 1).

The paper profiles how many instructions of two execution contexts are
*fetch-identical* (the same static instruction at the same logical point,
allowing the paths to diverge and remerge) and how many of those are
*execute-identical* (identical operand values, so one execution would
serve both).  We follow the paper's methodology of finding the common
subtraces of the two dynamic traces:

1. each trace is compressed into its sequence of dynamic basic blocks;
2. the longest matching block structure is found (difflib's Ratcliff-
   Obershelp matcher — equivalent to finding common subtraces);
3. matched blocks expand into per-instruction matches, where operand (and,
   for loads, result) values decide execute-identity;
4. the unmatched gaps between common subtraces are the divergent path
   segments used by the Figure 2 histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher

from repro.core.regmerge import values_equal
from repro.func.executor import Executed


@dataclass
class DivergentGap:
    """One divergence: the two unmatched trace segments between matches."""

    a_instructions: int
    b_instructions: int
    a_taken_branches: int
    b_taken_branches: int

    @property
    def branch_length_difference(self) -> int:
        """|len(path_a) - len(path_b)| in taken branches (Figure 2)."""
        return abs(self.a_taken_branches - self.b_taken_branches)


@dataclass
class PairSharing:
    """Sharing statistics for one pair of contexts."""

    total_a: int = 0
    total_b: int = 0
    fetch_identical_pairs: int = 0
    execute_identical_pairs: int = 0
    gaps: list[DivergentGap] = field(default_factory=list)

    @property
    def total_pairs_possible(self) -> int:
        """Upper bound on matched pairs: the shorter trace's length."""
        return min(self.total_a, self.total_b)

    @property
    def fetch_identical_fraction(self) -> float:
        """Fraction of instructions fetchable together (includes X-id)."""
        denom = max(1, self.total_pairs_possible)
        return self.fetch_identical_pairs / denom

    @property
    def execute_identical_fraction(self) -> float:
        denom = max(1, self.total_pairs_possible)
        return self.execute_identical_pairs / denom

    @property
    def not_identical_fraction(self) -> float:
        return max(0.0, 1.0 - self.fetch_identical_fraction)


def _basic_blocks(trace: list[Executed]) -> list[tuple[int, int, int]]:
    """Decompose *trace* into (start_pc, length, start_index) blocks.

    A block ends after any taken control transfer (next_pc != pc+1).
    """
    blocks = []
    start_index = 0
    for index, rec in enumerate(trace):
        if rec.next_pc != rec.pc + 1 or index == len(trace) - 1:
            blocks.append(
                (trace[start_index].pc, index - start_index + 1, start_index)
            )
            start_index = index + 1
    if start_index < len(trace):
        blocks.append(
            (trace[start_index].pc, len(trace) - start_index, start_index)
        )
    return blocks


def _execute_identical(a: Executed, b: Executed) -> bool:
    """Identical operand values; loads additionally need identical data."""
    if len(a.src_vals) != len(b.src_vals):
        return False
    for va, vb in zip(a.src_vals, b.src_vals):
        if not values_equal(va, vb):
            return False
    if a.inst.is_load:
        return values_equal(a.result, b.result)
    return True


def analyze_pair(
    trace_a: list[Executed], trace_b: list[Executed]
) -> PairSharing:
    """Common-subtrace sharing analysis of two per-context traces.

    The matcher's tie-breaking between equally good common subtraces
    depends on argument order, which would make the *measurement*
    asymmetric; the traces are therefore analyzed in a canonical order
    (lexicographic over block keys) and the sides swapped back after.
    """
    keys_a = [(pc, length) for pc, length, _ in _basic_blocks(trace_a)]
    keys_b = [(pc, length) for pc, length, _ in _basic_blocks(trace_b)]
    if keys_b < keys_a:
        return _swap_sides(_analyze_ordered(trace_b, trace_a))
    return _analyze_ordered(trace_a, trace_b)


def _swap_sides(result: PairSharing) -> PairSharing:
    result.total_a, result.total_b = result.total_b, result.total_a
    for gap in result.gaps:
        gap.a_instructions, gap.b_instructions = (
            gap.b_instructions,
            gap.a_instructions,
        )
        gap.a_taken_branches, gap.b_taken_branches = (
            gap.b_taken_branches,
            gap.a_taken_branches,
        )
    return result


def _analyze_ordered(
    trace_a: list[Executed], trace_b: list[Executed]
) -> PairSharing:
    result = PairSharing(total_a=len(trace_a), total_b=len(trace_b))
    blocks_a = _basic_blocks(trace_a)
    blocks_b = _basic_blocks(trace_b)
    keys_a = [(pc, length) for pc, length, _ in blocks_a]
    keys_b = [(pc, length) for pc, length, _ in blocks_b]
    matcher = SequenceMatcher(None, keys_a, keys_b, autojunk=False)

    prev_end_a = 0  # instruction index after the last matched block in A
    prev_end_b = 0
    for match in matcher.get_matching_blocks():
        if match.size:
            gap_start_a = blocks_a[match.a][2]
            gap_start_b = blocks_b[match.b][2]
            if gap_start_a > prev_end_a or gap_start_b > prev_end_b:
                gap = _make_gap(
                    trace_a[prev_end_a:gap_start_a],
                    trace_b[prev_end_b:gap_start_b],
                    result,
                )
                if gap is not None:
                    result.gaps.append(gap)
        for offset in range(match.size):
            _, length, ia = blocks_a[match.a + offset]
            _, _, ib = blocks_b[match.b + offset]
            for k in range(length):
                rec_a = trace_a[ia + k]
                rec_b = trace_b[ib + k]
                result.fetch_identical_pairs += 1
                if _execute_identical(rec_a, rec_b):
                    result.execute_identical_pairs += 1
        if match.size:
            last_a = blocks_a[match.a + match.size - 1]
            last_b = blocks_b[match.b + match.size - 1]
            prev_end_a = last_a[2] + last_a[1]
            prev_end_b = last_b[2] + last_b[1]
    if prev_end_a < len(trace_a) or prev_end_b < len(trace_b):
        gap = _make_gap(trace_a[prev_end_a:], trace_b[prev_end_b:], result)
        if gap is not None:
            result.gaps.append(gap)
    return result


def _make_gap(
    seg_a: list[Executed], seg_b: list[Executed], result: PairSharing
) -> DivergentGap | None:
    """Build a divergence record, first peeling off the lockstep edges.

    Block-level matching is coarse at divergence boundaries: the two
    segments usually share a common prefix (up to the diverging branch) and
    sometimes a suffix.  Those instruction pairs are fetch-identical and
    are credited to *result*; only the true divergent middles form the gap.
    """
    lead = 0
    limit = min(len(seg_a), len(seg_b))
    while lead < limit and seg_a[lead].pc == seg_b[lead].pc:
        result.fetch_identical_pairs += 1
        if _execute_identical(seg_a[lead], seg_b[lead]):
            result.execute_identical_pairs += 1
        lead += 1
    trail = 0
    while (
        trail < limit - lead
        and seg_a[len(seg_a) - 1 - trail].pc == seg_b[len(seg_b) - 1 - trail].pc
    ):
        rec_a = seg_a[len(seg_a) - 1 - trail]
        rec_b = seg_b[len(seg_b) - 1 - trail]
        result.fetch_identical_pairs += 1
        if _execute_identical(rec_a, rec_b):
            result.execute_identical_pairs += 1
        trail += 1
    seg_a = seg_a[lead:len(seg_a) - trail]
    seg_b = seg_b[lead:len(seg_b) - trail]
    if not seg_a and not seg_b:
        return None
    return DivergentGap(
        a_instructions=len(seg_a),
        b_instructions=len(seg_b),
        a_taken_branches=sum(
            1 for rec in seg_a if rec.next_pc != rec.pc + 1 and rec.next_pc != rec.pc
        ),
        b_taken_branches=sum(
            1 for rec in seg_b if rec.next_pc != rec.pc + 1 and rec.next_pc != rec.pc
        ),
    )


def analyze_job(traces: list[list[Executed]]) -> PairSharing:
    """Average pairwise sharing across all context pairs of a job.

    With two contexts this is exactly the pair analysis; with more, the
    paper's per-application numbers correspond to the average potential
    between co-scheduled contexts.
    """
    pairs = [
        analyze_pair(traces[i], traces[j])
        for i in range(len(traces))
        for j in range(i + 1, len(traces))
    ]
    if len(pairs) == 1:
        return pairs[0]
    merged = PairSharing()
    for pair in pairs:
        merged.total_a += pair.total_a
        merged.total_b += pair.total_b
        merged.fetch_identical_pairs += pair.fetch_identical_pairs
        merged.execute_identical_pairs += pair.execute_identical_pairs
        merged.gaps.extend(pair.gaps)
    return merged
