"""Divergent-path-length histogram (paper §3.3, Figure 2).

For every divergence between common subtraces, the paper measures the
*difference* between the lengths of the two divergent paths, in taken
branches, and reports the cumulative fraction within 16, 32, 64, ... taken
branches.  A small difference means a short taken-branch history (the FHB)
suffices to detect the remerge point.
"""

from __future__ import annotations

from repro.profiling.sharing import DivergentGap

#: The Figure 2 bucket edges (cumulative "within N taken branches").
FIG2_BUCKETS = (16, 32, 64, 128, 256, 512)


def divergence_histogram(
    gaps: list[DivergentGap], buckets: tuple[int, ...] = FIG2_BUCKETS
) -> dict[int, float]:
    """Cumulative fraction of divergences within each bucket.

    Returns ``{bucket: fraction}``; a divergence counts toward bucket *b*
    when its taken-branch length difference is <= *b*.
    """
    if not gaps:
        return {bucket: 1.0 for bucket in buckets}
    total = len(gaps)
    histogram = {}
    for bucket in buckets:
        within = sum(
            1 for gap in gaps if gap.branch_length_difference <= bucket
        )
        histogram[bucket] = within / total
    return histogram


def mean_gap_length_instructions(gaps: list[DivergentGap]) -> float:
    """Average divergent-path length in instructions (both sides)."""
    if not gaps:
        return 0.0
    total = sum(gap.a_instructions + gap.b_instructions for gap in gaps)
    return total / (2 * len(gaps))
