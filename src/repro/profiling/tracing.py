"""Functional trace capture for the profiling study (§3.2, §3.3)."""

from __future__ import annotations

from repro.func.executor import Executed, FunctionalExecutor
from repro.pipeline.job import Job


def capture_job_traces(
    job: Job, max_steps_per_context: int = 2_000_000
) -> list[list[Executed]]:
    """Run every context of *job* functionally; returns per-context traces.

    Multi-threaded contexts share memory, so they are interleaved
    round-robin (one instruction each per turn) — the profiling study only
    needs per-thread instruction sequences, and our workloads keep
    cross-thread memory read-only, so any fair interleaving yields the same
    traces.
    """
    states = job.make_states()
    executors = [FunctionalExecutor(state) for state in states]
    traces: list[list[Executed]] = [[] for _ in states]
    live = True
    steps = 0
    budget = max_steps_per_context * len(states)
    while live:
        live = False
        for tid, executor in enumerate(executors):
            if executor.state.halted:
                continue
            traces[tid].append(executor.step())
            steps += 1
            live = True
        if steps > budget:
            raise RuntimeError("profiling trace capture exceeded step budget")
    return traces


def taken_branch_count(trace: list[Executed]) -> int:
    """Number of taken control transfers in *trace*."""
    return sum(1 for rec in trace if rec.next_pc != rec.pc + 1 and not _is_halt(rec))


def _is_halt(rec: Executed) -> bool:
    return rec.next_pc == rec.pc
