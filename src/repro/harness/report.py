"""Plain-text rendering of figure/table data in the paper's layout."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    rows: Sequence[dict],
    columns: Sequence[str],
    headers: Sequence[str] | None = None,
    float_format: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render *rows* (dicts) as an aligned ASCII table."""
    headers = [str(header) for header in (headers or columns)]
    rendered: list[list[str]] = [headers]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for index, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_pairs(
    pairs: Iterable[tuple[str, str]], title: str | None = None
) -> str:
    """Render key/value pairs (the paper's Table 4/5 style)."""
    pairs = list(pairs)
    width = max(len(key) for key, _ in pairs)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for key, value in pairs:
        lines.append(f"{key.ljust(width)}  {value}")
    return "\n".join(lines)


def format_stacked_bars(
    rows: Sequence[dict],
    label_key: str,
    part_keys: Sequence[str],
    width: int = 40,
    symbols: str = "#=.~",
    title: str | None = None,
) -> str:
    """Render stacked-fraction rows as ASCII bars (Figure 1/5(b)/5(d) style)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    label_width = max(len(str(row[label_key])) for row in rows)
    for row in rows:
        bar = ""
        for key, symbol in zip(part_keys, symbols):
            part = max(0.0, min(1.0, float(row.get(key, 0.0))))
            bar += symbol * int(round(part * width))
        bar = bar[:width].ljust(width)
        parts = " ".join(
            f"{key}={float(row.get(key, 0.0)):.2f}" for key in part_keys
        )
        lines.append(f"{str(row[label_key]).ljust(label_width)} |{bar}| {parts}")
    legend = "  ".join(
        f"{symbol}={key}" for key, symbol in zip(part_keys, symbols)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
