"""Parallel simulation campaigns with on-disk result caching.

A *campaign* is a batch of independent jobs — typically (workload,
configuration) simulation points — executed across all cores with:

* **content-addressed result caching** — each job is keyed by a stable
  hash of its specification, the runner that executes it, and a
  fingerprint of the simulator's source code, so re-running a sweep only
  executes points whose inputs actually changed;
* **deterministic per-job seeds** — derived from the campaign seed and
  the job key alone, so results never depend on worker count or
  scheduling order;
* **graceful degradation** — a hung or crashed job gets a per-job
  timeout plus a bounded number of retries and is *reported*, not fatal:
  a 100-point sweep with one bad point still yields 99 results;
* **streamed progress** — one line per job completion (hit/ok/failed/
  timeout) through a pluggable callback.

The runner is deliberately generic: any picklable job object plus a
module-level ``runner(job, seed) -> payload`` callable works, which is
what the differential/figure layers and the unit tests build on.
``repro.harness.experiment`` provides the standard simulation job type
(:class:`CampaignJob`) and runner.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import multiprocessing
import os
import pickle
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.runlog import RunLog

#: Distinguishes run-logs of campaigns started in the same process and
#: second (the default file name is stamp + pid + this sequence).
_RUNLOG_SEQ = itertools.count()

#: Default cache root (override with the REPRO_CACHE_DIR environment
#: variable or the ``cache_dir`` argument).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Extra attempts after the first failed/hung one.
DEFAULT_RETRIES = 1

_OK, _FAILED, _TIMEOUT = "ok", "failed", "timeout"


# ------------------------------------------------------------------ keying
def code_fingerprint() -> str:
    """Hash of the repro package's source code (cached per process).

    Campaign cache entries live under a directory named by this
    fingerprint, so editing the simulator invalidates every cached result
    without any manual cache management.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        override = os.environ.get("REPRO_CODE_FINGERPRINT")
        if override:
            _FINGERPRINT = override
        else:
            import repro

            digest = hashlib.sha256()
            root = Path(repro.__file__).parent
            for path in sorted(root.rglob("*.py")):
                digest.update(str(path.relative_to(root)).encode())
                digest.update(path.read_bytes())
            _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


_FINGERPRINT: str | None = None


def _canonical(value):
    """Reduce *value* to deterministic JSON-able primitives."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        # Sets iterate in hash order, which varies across processes for
        # str members (PYTHONHASHSEED); sort the canonical forms so the
        # cache key is reproducible — suite-expanded jobs cross process
        # boundaries and must hash identically everywhere.
        return sorted(
            (_canonical(item) for item in value),
            key=lambda item: json.dumps(item, sort_keys=True, default=repr),
        )
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def job_key(job, runner=None) -> str:
    """Stable content hash identifying one (job, runner) pair.

    Jobs may expose ``key_data()`` returning the specification to hash;
    dataclass jobs hash their canonicalised fields, anything else its
    ``repr``.  The runner's qualified name is mixed in so two runners
    interpreting the same job type never collide in the cache.
    """
    if hasattr(job, "key_data"):
        data = job.key_data()
    else:
        data = _canonical(job)
    runner_id = "" if runner is None else (
        f"{getattr(runner, '__module__', '')}.{getattr(runner, '__qualname__', repr(runner))}"
    )
    blob = json.dumps({"job": _canonical(data), "runner": runner_id},
                      sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def derive_seed(campaign_seed: int, key: str) -> int:
    """Deterministic per-job seed: a pure function of campaign seed and
    job key, independent of worker count and completion order."""
    digest = hashlib.sha256(f"{campaign_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ------------------------------------------------------------------- cache
class ResultCache:
    """Content-addressed on-disk store of pickled job payloads.

    Layout: ``<root>/<code-fingerprint>/<key[:2]>/<key>.pkl`` — one file
    per result, sharded by key prefix, partitioned by simulator version
    so stale results can never be served after a code change.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / code_fingerprint() / key[:2] / f"{key}.pkl"

    def load(self, key: str):
        """The cached entry for *key*, or None (corrupt entries are
        treated as misses and removed)."""
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def store(self, key: str, payload) -> Path:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write to a per-writer temp file, then rename: atomic, and two
        # campaigns storing the same key concurrently never collide.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle)
            os.replace(tmp, path)
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()


def _wrap_cache_entry(payload, wall_time: float, max_rss_bytes: int) -> dict:
    """Cache entries carry the run's cost next to its payload, so cache
    hits can still report wall-clock and peak RSS in campaign summaries."""
    return {
        "__campaign__": 1,
        "payload": payload,
        "wall_time": wall_time,
        "max_rss_bytes": max_rss_bytes,
    }


def _unwrap_cache_entry(entry) -> tuple[object, float, int]:
    """(payload, wall_time, max_rss_bytes) of a cache entry.

    Raw payloads (entries written before cost recording existed, or by
    hand) pass through with zero cost metadata.  Entries written while
    peak RSS was recorded in raw ``ru_maxrss`` units (the pre-bytes
    ``max_rss_kb`` key) are unreachable in practice — the code
    fingerprint that partitions the cache changed with this code — but
    normalize them anyway rather than misreport by 1024x.
    """
    if isinstance(entry, dict) and entry.get("__campaign__") == 1:
        rss = entry.get("max_rss_bytes")
        if rss is None:
            rss = entry.get("max_rss_kb", 0) * 1024
        return entry["payload"], entry.get("wall_time", 0.0), rss
    return entry, 0.0, 0


# ----------------------------------------------------------------- results
@dataclass
class JobOutcome:
    """What happened to one campaign job."""

    job: object
    key: str
    status: str  # "ok" | "failed" | "timeout"
    payload: object = None
    error: str | None = None
    attempts: int = 0
    wall_time: float = 0.0
    from_cache: bool = False
    seed: int = 0
    #: Worker peak RSS in **bytes** (``ru_maxrss`` normalized — Linux
    #: reports KiB, macOS bytes); for cache hits, the value recorded when
    #: the entry was produced.
    max_rss_bytes: int = 0
    #: Flight-recorder dump written by a failed/hung attempt, if any.
    dump_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == _OK


@dataclass
class CampaignResult:
    """All outcomes of one campaign, in input-job order, plus counters."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    wall_time: float = 0.0
    #: Path of the JSONL lifecycle run-log written for this campaign (see
    #: :mod:`repro.obs.runlog`), or None when logging was disabled.
    runlog_path: str | None = None
    #: Post-hoc validation failures attached at aggregation time (the
    #: campaign layer is validation-agnostic; see
    #: ``repro.harness.experiment.validate_campaign_result``, which checks
    #: every successful simulation against the static redundancy oracle).
    validation_failures: list = field(default_factory=list)

    @property
    def jobs(self) -> int:
        return len(self.outcomes)

    @property
    def completed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def payloads(self) -> list:
        """Payloads of successful jobs, in job order."""
        return [o.payload for o in self.outcomes if o.ok]

    def summary(self) -> dict:
        """Campaign-level aggregation (see results.summarize_campaign)."""
        from repro.harness.results import summarize_campaign

        return summarize_campaign(self)


# ------------------------------------------------------------------ worker
def _max_rss_bytes() -> int:
    """This process's peak RSS in bytes (0 where rusage is unavailable).

    ``ru_maxrss`` is reported in KiB on Linux but in bytes on macOS —
    normalize here, once, so every consumer downstream (cache entries,
    summaries, the run-log, the campaign table) sees bytes.
    """
    try:
        import resource

        raw = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX platform
        return 0
    if sys.platform == "darwin":  # pragma: no cover - macOS only
        return raw
    return raw * 1024


def _worker_entry(conn, runner, job, seed, dump_path=None) -> None:
    """Runs in the child process: execute one job, ship the result back.

    With *dump_path* set, the path is published to the runner (via
    ``repro.obs.set_failure_dump_path``) so simulation runners can attach
    a flight recorder and leave a dump behind when the run dies — and
    SIGTERM (the parent's timeout kill) is turned into an exception so an
    externally killed attempt gets the same dump during its grace period.
    """
    if dump_path is not None:
        from repro.obs import set_failure_dump_path

        set_failure_dump_path(dump_path)
        try:
            import signal

            def _on_term(signum, frame):
                raise KeyboardInterrupt("terminated by campaign timeout")

            signal.signal(signal.SIGTERM, _on_term)
        except Exception:  # pragma: no cover - restricted environment
            pass
    started = time.perf_counter()
    try:
        payload = runner(job, seed)
        conn.send(
            (_OK, payload, time.perf_counter() - started, _max_rss_bytes())
        )
    except BaseException as exc:  # noqa: BLE001 - reported, not fatal
        try:
            conn.send(
                (_FAILED, f"{type(exc).__name__}: {exc}",
                 time.perf_counter() - started, _max_rss_bytes())
            )
        except Exception:
            pass
    finally:
        conn.close()


class _Running:
    """Bookkeeping for one in-flight attempt."""

    __slots__ = ("index", "job", "key", "seed", "attempt", "proc", "conn",
                 "started", "dump_path")

    def __init__(
        self, index, job, key, seed, attempt, proc, conn, dump_path=None
    ) -> None:
        self.index = index
        self.job = job
        self.key = key
        self.seed = seed
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = time.perf_counter()
        self.dump_path = dump_path


def _terminate(proc) -> None:
    proc.terminate()
    proc.join(timeout=5)
    if proc.is_alive():  # pragma: no cover - stubborn child
        proc.kill()
        proc.join(timeout=5)


# ------------------------------------------------------------------ runner
def run_campaign(
    jobs,
    runner,
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = DEFAULT_RETRIES,
    cache: ResultCache | str | Path | None = None,
    use_cache: bool = True,
    campaign_seed: int = 0,
    progress=None,
    poll_interval: float = 0.02,
    failure_dump_dir: str | Path | None = None,
    runlog: RunLog | str | Path | bool | None = None,
) -> CampaignResult:
    """Execute *jobs* through *runner* across worker processes.

    * ``runner(job, seed) -> payload`` must be a module-level callable and
      the payload picklable.
    * ``workers`` defaults to the machine's core count (capped by the
      number of jobs); ``workers=0``/``1`` still uses one worker process,
      so a hung job can always be killed.
    * ``timeout`` is per attempt, in seconds; a timed-out or crashed
      attempt is retried up to *retries* more times, then reported as a
      failure without aborting the campaign.
    * ``cache`` may be a :class:`ResultCache`, a directory path, or None
      (meaning the default directory); ``use_cache=False`` disables both
      lookup and storage.
    * ``progress`` is an optional ``callable(str)`` receiving one line
      per job completion.
    * ``failure_dump_dir`` enables flight-recorder failure dumps: each
      worker gets a per-job dump path under the directory, and a failed
      or hung job whose runner left a dump behind has its
      :attr:`JobOutcome.dump_path` set to it.
    * ``runlog`` selects the JSONL lifecycle log: a :class:`RunLog` or a
      path to append to, ``None`` (the default) to write one next to the
      result cache (``<cache-root>/runlog/``) when caching is enabled, or
      ``False`` to disable logging outright.  The written path lands in
      :attr:`CampaignResult.runlog_path`.
    """
    jobs = list(jobs)
    result = CampaignResult(outcomes=[None] * len(jobs))
    if not jobs:
        return result
    if use_cache:
        if not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
    else:
        cache = None
    emit = progress if callable(progress) else (lambda line: None)

    log: RunLog | None = None
    close_log = False
    if isinstance(runlog, RunLog):
        log = runlog
    elif runlog is False:
        log = None
    elif runlog is not None:
        log = RunLog(runlog)
        close_log = True
    elif cache is not None:
        # Second-resolution stamps collide for back-to-back campaigns in
        # one process (tests, scripted sweeps); the per-process sequence
        # number keeps every campaign in its own file.
        stamp = time.strftime("%Y%m%d-%H%M%S")
        seq = next(_RUNLOG_SEQ)
        log = RunLog(
            cache.root / "runlog"
            / f"campaign-{stamp}-{os.getpid()}-{seq}.jsonl"
        )
        close_log = True
    if log is not None:
        result.runlog_path = str(log.path)
        log.emit("campaign_begin", jobs=len(jobs))

    started = time.perf_counter()
    done = 0
    total = len(jobs)

    def finish(index: int, outcome: JobOutcome) -> None:
        nonlocal done
        done += 1
        result.outcomes[index] = outcome
        tag = "hit " if outcome.from_cache else {
            _OK: "ok  ", _FAILED: "FAIL", _TIMEOUT: "HUNG"
        }[outcome.status]
        detail = f"{outcome.wall_time:6.2f}s"
        if outcome.error:
            detail += f"  {outcome.error}"
        if outcome.attempts > 1:
            detail += f"  (attempt {outcome.attempts})"
        emit(f"[{done:>{len(str(total))}}/{total}] {tag} "
             f"{job_label(outcome.job)}  {detail}")
        if log is None:
            return
        label = job_label(outcome.job)
        engine = getattr(outcome.job, "engine", None)
        if outcome.from_cache:
            log.emit(
                "job_cache_hit", job=label, key=outcome.key,
                wall_s=outcome.wall_time,
                max_rss_bytes=outcome.max_rss_bytes, engine=engine,
            )
        elif outcome.ok:
            log.emit(
                "job_finished", job=label, key=outcome.key,
                wall_s=outcome.wall_time,
                max_rss_bytes=outcome.max_rss_bytes, engine=engine,
                attempts=outcome.attempts,
            )
        else:
            log.emit(
                "job_failed", job=label, key=outcome.key,
                status=outcome.status, error=outcome.error,
                wall_s=outcome.wall_time, attempts=outcome.attempts,
                dump=outcome.dump_path,
            )

    # Phase 1: serve everything we can from the cache.
    pending: deque = deque()
    for index, job in enumerate(jobs):
        key = job_key(job, runner)
        seed = derive_seed(campaign_seed, key)
        cached = cache.load(key) if cache is not None else None
        if cached is not None:
            result.cache_hits += 1
            payload, cached_wall, cached_rss = _unwrap_cache_entry(cached)
            finish(index, JobOutcome(
                job=job, key=key, status=_OK, payload=payload,
                attempts=0, wall_time=cached_wall, from_cache=True,
                seed=seed, max_rss_bytes=cached_rss,
            ))
        else:
            if cache is not None:
                result.cache_misses += 1
            pending.append((index, job, key, seed, 1))

    # Phase 2: fan the rest out across worker processes.
    if pending:
        if workers is None:
            workers = os.cpu_count() or 1
        workers = max(1, min(workers, len(pending)))
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        running: list[_Running] = []
        try:
            while pending or running:
                while pending and len(running) < workers:
                    index, job, key, seed, attempt = pending.popleft()
                    dump_path = None
                    if failure_dump_dir is not None:
                        dump_path = str(
                            Path(failure_dump_dir) / f"{key[:16]}.flight.json"
                        )
                        # A dump left by an earlier attempt must not be
                        # attributed to this one.
                        Path(dump_path).unlink(missing_ok=True)
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_worker_entry,
                        args=(child_conn, runner, job, seed, dump_path),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    if log is not None:
                        log.emit(
                            "job_started", job=job_label(job), key=key,
                            attempt=attempt,
                        )
                    running.append(
                        _Running(index, job, key, seed, attempt, proc,
                                 parent_conn, dump_path)
                    )
                time.sleep(poll_interval)
                still: list[_Running] = []
                for entry in running:
                    status = error = payload = None
                    rss = 0
                    if entry.conn.poll():
                        kind, body, _child_wall, rss = entry.conn.recv()
                        entry.proc.join()
                        if kind == _OK:
                            status, payload = _OK, body
                        else:
                            status, error = _FAILED, body
                    elif not entry.proc.is_alive():
                        entry.proc.join()
                        status = _FAILED
                        error = f"worker died (exitcode {entry.proc.exitcode})"
                    elif (timeout is not None
                          and time.perf_counter() - entry.started > timeout):
                        _terminate(entry.proc)
                        status = _TIMEOUT
                        error = f"timed out after {timeout:g}s"
                    if status is None:
                        still.append(entry)
                        continue
                    entry.conn.close()
                    wall = time.perf_counter() - entry.started
                    if status == _OK:
                        if cache is not None:
                            cache.store(
                                entry.key,
                                _wrap_cache_entry(payload, wall, rss),
                            )
                        finish(entry.index, JobOutcome(
                            job=entry.job, key=entry.key, status=_OK,
                            payload=payload, attempts=entry.attempt,
                            wall_time=wall, seed=entry.seed,
                            max_rss_bytes=rss,
                        ))
                    elif entry.attempt <= retries:
                        result.retries += 1
                        emit(f"[retry] {job_label(entry.job)}  {error}"
                             f"  (attempt {entry.attempt} of "
                             f"{retries + 1})")
                        if log is not None:
                            log.emit(
                                "job_retried", job=job_label(entry.job),
                                key=entry.key, attempt=entry.attempt,
                                error=error,
                            )
                        pending.append(
                            (entry.index, entry.job, entry.key, entry.seed,
                             entry.attempt + 1)
                        )
                    else:
                        dump = None
                        if (entry.dump_path is not None
                                and Path(entry.dump_path).exists()):
                            dump = entry.dump_path
                        finish(entry.index, JobOutcome(
                            job=entry.job, key=entry.key, status=status,
                            error=error, attempts=entry.attempt,
                            wall_time=wall, seed=entry.seed,
                            max_rss_bytes=rss, dump_path=dump,
                        ))
                running = still
        finally:
            for entry in running:  # pragma: no cover - interrupted campaign
                _terminate(entry.proc)
    result.wall_time = time.perf_counter() - started
    if log is not None:
        # Aggregate speedup: serial job wall (cache hits contribute the
        # wall recorded when their entry was produced) over campaign wall.
        job_wall = sum(
            o.wall_time for o in result.outcomes if o is not None
        )
        log.emit(
            "campaign_end",
            wall_s=result.wall_time,
            ok=len(result.completed),
            failed=len(result.failures),
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            retries=result.retries,
            speedup=(
                round(job_wall / result.wall_time, 3)
                if result.wall_time > 0 else 0.0
            ),
        )
        if close_log:
            log.close()
    return result


def job_label(job) -> str:
    """One-line display label for a job (jobs may provide their own)."""
    label = getattr(job, "label", None)
    if callable(label):
        return label()
    if isinstance(label, str):
        return label
    return repr(job)
