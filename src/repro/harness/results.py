"""Result persistence: dump figure data as JSON for external tooling.

The figure regenerators return lists of plain dicts; this module writes
them to disk with a small metadata header (figure id, scale, app list) so
plotting pipelines and regression archives can consume the repository's
outputs without importing it.
"""

from __future__ import annotations

import json
from pathlib import Path


def _jsonable(value):
    """Make a figure row JSON-serialisable (drop private keys, stringify
    non-scalar keys like the integer FHB sizes)."""
    if isinstance(value, dict):
        return {
            str(key): _jsonable(sub)
            for key, sub in value.items()
            if not (isinstance(key, str) and key.startswith("_"))
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def dump_figure(
    figure_id: str,
    rows: list,
    path: str | Path,
    scale: float = 1.0,
    extra: dict | None = None,
) -> Path:
    """Write *rows* for *figure_id* to *path* as JSON; returns the path."""
    path = Path(path)
    payload = {
        "figure": figure_id,
        "paper": "Minimal Multi-Threading (MICRO 2010)",
        "scale": scale,
        "rows": _jsonable(rows),
    }
    if extra:
        payload.update(_jsonable(extra))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_figure(path: str | Path) -> dict:
    """Read a dumped figure back."""
    return json.loads(Path(path).read_text())
