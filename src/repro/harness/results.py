"""Result persistence: dump figure data as JSON for external tooling.

The figure regenerators return lists of plain dicts; this module writes
them to disk with a small metadata header (figure id, scale, app list) so
plotting pipelines and regression archives can consume the repository's
outputs without importing it.
"""

from __future__ import annotations

import json
from pathlib import Path


def _jsonable(value):
    """Make a figure row JSON-serialisable (drop private keys, stringify
    non-scalar keys like the integer FHB sizes)."""
    if isinstance(value, dict):
        return {
            str(key): _jsonable(sub)
            for key, sub in value.items()
            if not (isinstance(key, str) and key.startswith("_"))
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def dump_figure(
    figure_id: str,
    rows: list,
    path: str | Path,
    scale: float = 1.0,
    extra: dict | None = None,
) -> Path:
    """Write *rows* for *figure_id* to *path* as JSON; returns the path."""
    path = Path(path)
    payload = {
        "figure": figure_id,
        "paper": "Minimal Multi-Threading (MICRO 2010)",
        "scale": scale,
        "rows": _jsonable(rows),
    }
    if extra:
        payload.update(_jsonable(extra))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_figure(path: str | Path) -> dict:
    """Read a dumped figure back."""
    return json.loads(Path(path).read_text())


# ------------------------------------------------------------- campaigns
def summarize_campaign(result) -> dict:
    """Campaign-level aggregation of a :class:`~repro.harness.campaign.
    CampaignResult`: job counts by status, cache hit/miss counts, retry
    count, and wall-time statistics over the executed (non-cached) jobs.
    """
    outcomes = result.outcomes
    executed = [o for o in outcomes if not o.from_cache]
    # Failed/hung attempts cost wall time too — count them.
    walls = [o.wall_time for o in executed]
    rss = [o.max_rss_bytes for o in outcomes if o.max_rss_bytes > 0]
    summary = {
        "jobs": len(outcomes),
        "ok": sum(1 for o in outcomes if o.ok),
        "failed": sum(1 for o in outcomes if o.status == "failed"),
        "timeout": sum(1 for o in outcomes if o.status == "timeout"),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "hit_rate": (
            result.cache_hits / len(outcomes) if outcomes else 0.0
        ),
        "retries": result.retries,
        "wall_time": result.wall_time,
        "job_wall_total": sum(walls),
        "job_wall_mean": sum(walls) / len(walls) if walls else 0.0,
        "job_wall_max": max(walls) if walls else 0.0,
        # Peak worker RSS in bytes (cache hits report the value recorded
        # when their entry was produced; zeros are "not measured").
        "job_rss_max_bytes": max(rss) if rss else 0,
        "job_rss_mean_bytes": sum(rss) / len(rss) if rss else 0.0,
        # JSONL lifecycle log written for this campaign, if any.
        "runlog": getattr(result, "runlog_path", None),
        # Static-oracle disagreements attached at aggregation time (see
        # experiment.validate_campaign_result); non-zero means a
        # simulation contradicted a proven bound.
        "oracle_violations": len(
            getattr(result, "validation_failures", ()) or ()
        ),
    }
    return summary


def campaign_failure_rows(result) -> list[dict]:
    """One row per failed/hung job, for reporting."""
    from repro.harness.campaign import job_label

    return [
        {
            "job": job_label(outcome.job),
            "status": outcome.status,
            "attempts": outcome.attempts,
            "error": outcome.error or "",
            "dump": outcome.dump_path or "",
        }
        for outcome in result.outcomes
        if not outcome.ok
    ]


def campaign_violation_rows(result) -> list[dict]:
    """One row per static-oracle validation failure, for reporting."""
    return [
        {
            "job": violation.job,
            "workload": violation.workload,
            "config": violation.config,
            "problems": "; ".join(violation.problems),
        }
        for violation in getattr(result, "validation_failures", ()) or ()
    ]


def dump_campaign(result, path: str | Path, extra: dict | None = None) -> Path:
    """Write a campaign's summary + per-job records to *path* as JSON."""
    path = Path(path)
    jobs = []
    for outcome in result.outcomes:
        record = {
            "job": repr(outcome.job),
            "key": outcome.key,
            "status": outcome.status,
            "from_cache": outcome.from_cache,
            "attempts": outcome.attempts,
            "wall_time": outcome.wall_time,
            "max_rss_bytes": outcome.max_rss_bytes,
            "seed": outcome.seed,
        }
        if outcome.error:
            record["error"] = outcome.error
        if outcome.dump_path:
            record["dump"] = outcome.dump_path
        payload = outcome.payload
        if payload is not None and hasattr(payload, "stats"):
            record["cycles"] = payload.stats.cycles
            record["ipc"] = payload.stats.ipc()
        jobs.append(record)
    document = {"summary": _jsonable(summarize_campaign(result)),
                "jobs": _jsonable(jobs)}
    violations = campaign_violation_rows(result)
    if violations:
        document["oracle_violations"] = _jsonable(violations)
    if extra:
        document.update(_jsonable(extra))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def campaign_metrics(result, registry=None):
    """Populate a :class:`~repro.obs.registry.MetricsRegistry` from one
    campaign — the Prometheus-text summary the future campaign daemon will
    serve (computed post-hoc here; a live daemon updates the same metrics
    incrementally).

    Passing an existing *registry* accumulates across campaigns.
    """
    from repro.obs.registry import MetricsRegistry

    if registry is None:
        registry = MetricsRegistry()
    jobs = registry.counter(
        "repro_campaign_jobs_total",
        "Campaign jobs by status, engine, and source",
        ("status", "engine", "source"),
    )
    retries = registry.counter(
        "repro_campaign_retries_total", "Attempts beyond each job's first"
    )
    walls = registry.histogram(
        "repro_campaign_job_wall_seconds",
        "Per-job wall-clock (executed jobs only)",
        ("engine",),
    )
    rss = registry.gauge(
        "repro_campaign_job_rss_bytes",
        "Peak worker RSS over the campaign, bytes",
    )
    campaign_wall = registry.gauge(
        "repro_campaign_wall_seconds", "Whole-campaign wall-clock"
    )
    violations = registry.gauge(
        "repro_campaign_oracle_violations",
        "Runs contradicting a static oracle bound",
    )
    peak = 0
    for outcome in result.outcomes:
        engine = str(getattr(outcome.job, "engine", "") or "unknown")
        source = "cache" if outcome.from_cache else "run"
        jobs.inc(status=outcome.status, engine=engine, source=source)
        if not outcome.from_cache:
            walls.observe(outcome.wall_time, engine=engine)
        peak = max(peak, outcome.max_rss_bytes)
    retries.inc(result.retries)
    rss.set(peak)
    campaign_wall.set(result.wall_time)
    violations.set(len(getattr(result, "validation_failures", ()) or ()))
    return registry


# ----------------------------------------------------------------- traces
def dump_trace(
    run,
    observer,
    path: str | Path,
    extra: dict | None = None,
) -> Path:
    """Write a ``repro trace`` run — final stats plus the interval time
    series and event tally — to *path* as JSON."""
    path = Path(path)
    stats = run.stats
    document = {
        "app": run.app,
        "config": run.config.name,
        "threads": run.threads,
        "cycles": stats.cycles,
        "ipc": stats.ipc(),
        "mode_breakdown": stats.mode_breakdown(),
        "event_counts": (
            observer.sink.counts() if observer.sink is not None else {}
        ),
        "intervals": (
            observer.interval.rows() if observer.interval is not None else []
        ),
    }
    if extra:
        document.update(_jsonable(extra))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(_jsonable(document), indent=2, sort_keys=True) + "\n"
    )
    return path
