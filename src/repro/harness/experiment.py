"""Experiment runner: build workloads, run configurations, cache results.

Every figure regenerator goes through :func:`run_app`, which memoises
completed runs per (application, configuration, thread count, machine) so
that e.g. Figures 5(a), 5(b), 5(d) and 6 — which all need the same MMT-FXR
runs — simulate each point once per session.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import MMTConfig
from repro.pipeline.config import MachineConfig
from repro.pipeline.smt import SMTCore
from repro.pipeline.stats import SimStats
from repro.power.model import energy_of_run
from repro.power.params import EnergyBreakdown, EnergyParams
from repro.workloads.generator import WorkloadBuild, build_workload
from repro.workloads.profiles import APP_ORDER, get_profile


@dataclass
class RunResult:
    """One completed simulation."""

    app: str
    config: MMTConfig
    threads: int
    stats: SimStats
    energy: EnergyBreakdown
    sync_stats: object
    build: WorkloadBuild
    outputs: list = field(repr=False, default_factory=list)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


_CACHE: dict[tuple, RunResult] = {}


def clear_cache() -> None:
    """Drop all memoised runs (tests use this for isolation)."""
    _CACHE.clear()


def run_app(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
    strict: bool = True,
    use_cache: bool = True,
) -> RunResult:
    """Simulate *app* under *config* with *threads* hardware contexts."""
    machine = machine or MachineConfig(num_threads=threads)
    if machine.num_threads < threads:
        machine = machine.with_threads(threads)
    key = (app, config, threads, machine, scale, strict)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    build = build_workload(get_profile(app), threads, scale=scale)
    job = build.limit_job() if config.limit_identical else build.job()
    core = SMTCore(machine, config, job, strict=strict)
    stats = core.run()
    result = RunResult(
        app=app,
        config=config,
        threads=threads,
        stats=stats,
        energy=energy_of_run(core, EnergyParams()),
        sync_stats=core.sync.stats,
        build=build,
        outputs=build.output_region(job),
    )
    if use_cache:
        _CACHE[key] = result
    return result


def speedup_over_base(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
) -> float:
    """Cycles(Base) / cycles(*config*) at the same thread count."""
    base = run_app(app, MMTConfig.base(), threads, machine, scale)
    other = run_app(app, config, threads, machine, scale)
    return base.cycles / other.cycles


def geomean(values) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def default_apps() -> list[str]:
    """All sixteen applications in the paper's Table 1 order."""
    return list(APP_ORDER)
