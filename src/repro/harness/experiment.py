"""Experiment runner: build workloads, run configurations, cache results.

Every figure regenerator goes through :func:`run_app`, which memoises
completed runs per (application, configuration, thread count, machine) so
that e.g. Figures 5(a), 5(b), 5(d) and 6 — which all need the same MMT-FXR
runs — simulate each point once per session.

Batches of points go through :func:`run_points`, which fans them out
across worker processes via :mod:`repro.harness.campaign` (with on-disk
result caching and per-job timeout/retry) and then seeds the in-memory
memo, so the serial figure code downstream gets every simulation for
free.
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import MMTConfig
from repro.harness.campaign import (
    DEFAULT_CACHE_DIR,
    CampaignResult,
    run_campaign,
)
from repro.obs import (
    DEFAULT_WATCHDOG_CYCLES,
    FlightRecorder,
    IntervalMetrics,
    MemorySink,
    Observer,
    WatchdogError,
    campaign_observer,
    get_failure_dump_path,
    write_dump,
)
from repro.pipeline.config import MachineConfig
from repro.pipeline.fast import FastSMTCore, resolve_engine
from repro.pipeline.stats import SimStats
from repro.power.model import energy_of_run
from repro.power.params import EnergyBreakdown, EnergyParams
from repro.workloads.engine import (
    EngineBuild,
    build_engine_workload,
    is_engine_workload,
)
from repro.workloads.generator import WorkloadBuild, build_workload
from repro.workloads.profiles import APP_ORDER, get_profile

#: Config names accepted by the CLI and recorded in failure dumps; keys
#: equal ``MMTConfig.<factory>().name`` so a dump's ``config`` field maps
#: straight back to its factory at replay time.
CONFIG_FACTORIES = {
    "Base": MMTConfig.base,
    "MMT-F": MMTConfig.mmt_f,
    "MMT-FX": MMTConfig.mmt_fx,
    "MMT-FXR": MMTConfig.mmt_fxr,
    "MMT-FXR+H": MMTConfig.mmt_fxr_hints,
    "Limit": MMTConfig.limit,
}


@dataclass
class RunResult:
    """One completed simulation."""

    app: str
    config: MMTConfig
    threads: int
    stats: SimStats
    energy: EnergyBreakdown
    sync_stats: object
    build: WorkloadBuild
    outputs: list = field(repr=False, default_factory=list)

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass(frozen=True)
class CampaignJob:
    """One simulation point, as a picklable, hashable campaign job.

    ``machine=None`` means the default machine for the thread count, as
    in :func:`run_app`.  ``tag`` distinguishes otherwise-identical jobs
    (and is part of the cache key); runners that inject faults or extra
    behaviours key off it.  ``engine`` picks the simulation core
    (``"reference"`` or ``"fast"``, see :mod:`repro.pipeline.fast`); it
    is part of the cache key even though both engines are cycle-exact,
    so a fast-engine bug can never poison reference results (and the
    oracle gate cross-checks both populations independently).

    ``specialize`` toggles the fast engine's static specialization
    manifests (:mod:`repro.analysis.specialize`); the reference engine
    ignores it.  For specialized fast-engine jobs the manifest digests
    join the on-disk cache key (see :meth:`key_data`), so results
    simulated under one version of the specialization analysis can never
    be served to a run expecting another.
    """

    app: str
    config: MMTConfig
    threads: int
    machine: MachineConfig | None = None
    scale: float = 1.0
    strict: bool = True
    tag: str = ""
    engine: str = "reference"
    #: Workload-generation seed (``None`` = the workload's default).
    #: Paper profiles ignore it today; registry/engine workloads fold it
    #: into their phase schedules and request streams, so it is part of
    #: both the memo key and the on-disk cache key.
    seed: int | None = None
    #: Fast-engine static specialization toggle (manifest-driven
    #: guard-free batching, see ``docs/specialization.md``).
    specialize: bool = True

    def label(self) -> str:
        return f"{self.app}/{self.config.name}/{self.threads}t" + (
            f"[{self.tag}]" if self.tag else ""
        )

    def memo_key(self) -> tuple:
        """The in-memory memo key :func:`run_app` would use."""
        machine = _normalize_machine(self.machine, self.threads)
        return (self.app, self.config, self.threads, machine, self.scale,
                self.strict, self.engine, self.seed, self.specialize)

    def key_data(self) -> dict:
        """Specification hashed into the on-disk campaign cache key.

        Plain field canonicalisation, plus — for fast-engine jobs with
        specialization on — the content digests of the specialization
        manifests the engine will consume.  Joining the manifest digests
        means any change to the specialization analysis (schema bump,
        verdict change, superblock reshaping) transparently invalidates
        every cached result it could have influenced, while reference
        jobs keep analysis-independent keys.
        """
        data = dataclasses.asdict(self)
        if self.specialize and self.engine == "fast":
            data["specialization_manifests"] = specialization_digests(
                self.app,
                self.config,
                self.threads,
                machine=self.machine,
                scale=self.scale,
                seed=self.seed,
            )
        return data


_CACHE: dict[tuple, RunResult] = {}

_DEFAULT_ENGINE = "reference"


def clear_cache() -> None:
    """Drop all memoised runs (tests use this for isolation)."""
    _CACHE.clear()


def set_default_engine(name: str) -> str:
    """Select the engine used when a caller doesn't pass one explicitly.

    Validates *name* against the engine registry (raising on unknown
    names) and returns the previous default so callers can restore it.
    The CLI's ``--engine`` flag routes every serial figure regenerator
    through here; campaign jobs carry their engine explicitly, because
    they execute in worker processes that never see this module-level
    state.
    """
    global _DEFAULT_ENGINE
    resolve_engine(name)
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    return previous


def default_engine() -> str:
    """The engine used when a caller doesn't pass one explicitly."""
    return _DEFAULT_ENGINE


_DEFAULT_SPECIALIZE = True


def set_default_specialize(on: bool) -> bool:
    """Select the fast engine's specialization default for serial runs.

    Mirrors :func:`set_default_engine`: the CLI's ``--no-specialize``
    routes through here, campaign jobs carry the flag explicitly.
    Returns the previous default so callers can restore it.
    """
    global _DEFAULT_SPECIALIZE
    previous = _DEFAULT_SPECIALIZE
    _DEFAULT_SPECIALIZE = bool(on)
    return previous


def default_specialize() -> bool:
    """Whether fast-engine runs specialize when not told explicitly."""
    return _DEFAULT_SPECIALIZE


_SPECIALIZATION_KEY_MEMO: dict[tuple, list[str]] = {}


def specialization_digests(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
    seed: int | None = None,
) -> list[str]:
    """Manifest digests a specialized fast-engine run of this point uses.

    One sorted, de-duplicated digest per distinct per-context program —
    exactly the manifests :class:`~repro.pipeline.fast.FastSMTCore`
    computes at construction.  Memoised per point (the workload build
    dominates the cost; the analysis itself is memoised again inside the
    engine layer), because :meth:`CampaignJob.key_data` calls this for
    every specialized fast job a campaign dispatches.
    """
    from repro.pipeline.fast import manifest_for

    nctx = _normalize_machine(machine, threads).num_threads
    limit = config.limit_identical
    memo = (app, threads, scale, seed, nctx, limit)
    cached = _SPECIALIZATION_KEY_MEMO.get(memo)
    if cached is not None:
        return list(cached)
    build = build_point(app, threads, scale=scale, seed=seed)
    job = build.limit_job() if limit else build.job()
    digests: set[str] = set()
    seen: set[str] = set()
    for program in job.programs:
        key = program.digest()
        if key in seen:
            continue
        seen.add(key)
        digests.add(manifest_for(program, nctx).digest())
    result = sorted(digests)
    _SPECIALIZATION_KEY_MEMO[memo] = result
    return list(result)


def _normalize_machine(
    machine: MachineConfig | None, threads: int
) -> MachineConfig:
    machine = machine or MachineConfig(num_threads=threads)
    if machine.num_threads < threads:
        machine = machine.with_threads(threads)
    return machine


def build_point(
    app: str, threads: int, scale: float = 1.0, seed: int | None = None
) -> WorkloadBuild | EngineBuild:
    """Build the workload for one simulation point, whatever its origin.

    *app* is either a paper application profile (``fft``, ``ocean``, …)
    or a registry workload name — an engine-generated workload
    (``dyn-bursty``, ``reqstream-uniform``), a recorded-trace reference
    (``trace:PATH``), or anything registered via
    :func:`repro.workloads.engine.register_workload`.  Every harness path
    that turns a name into a program (simulation, lint gate, oracle,
    figures) resolves through here, so registry workloads are first-class
    campaign citizens.
    """
    if is_engine_workload(app):
        return build_engine_workload(app, threads, scale=scale, seed=seed)
    return build_workload(get_profile(app), threads, scale=scale, seed=seed)


def _simulate(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig,
    scale: float,
    strict: bool,
    obs: Observer | None = None,
    failure_dump: str | None = None,
    prepare=None,
    engine: str | None = None,
    seed: int | None = None,
    specialize: bool | None = None,
) -> RunResult:
    """Run one simulation point (no caching at this level).

    With *failure_dump* set (and an observer carrying a flight recorder),
    any exception escaping the run — watchdog, invariant violation, even
    the SIGTERM-turned-exception of a campaign timeout kill — leaves a
    flight-recorder dump at that path before propagating.  *prepare*, when
    given, is called with the constructed core before it runs (fault
    injection for tests and demos).
    """
    build = build_point(app, threads, scale=scale, seed=seed)
    job = build.limit_job() if config.limit_identical else build.job()
    core_cls = resolve_engine(engine or _DEFAULT_ENGINE)
    if specialize is None:
        specialize = _DEFAULT_SPECIALIZE
    if issubclass(core_cls, FastSMTCore):
        core = core_cls(
            machine, config, job, strict=strict, obs=obs,
            specialize=specialize,
        )
    else:
        core = core_cls(machine, config, job, strict=strict, obs=obs)
    if prepare is not None:
        prepare(core)
    try:
        stats = core.run()
    except BaseException as exc:
        if failure_dump and obs is not None and obs.recorder is not None:
            if isinstance(exc, WatchdogError) and exc.dump is not None:
                document = exc.dump
            else:
                document = obs.recorder.dump(
                    core, error=f"{type(exc).__name__}: {exc}"
                )
            # Embed the job specification so the dump is replayable
            # post-mortem (``repro replay`` / :func:`replay_dump`) without
            # guessing which point produced it.  Fault injections
            # (*prepare*) are deliberately not part of the spec: a replay
            # re-runs the *point*, not the injected fault.
            document["job"] = {
                "app": app,
                "config": config.name,
                "threads": threads,
                "scale": scale,
                "strict": strict,
                "engine": engine or _DEFAULT_ENGINE,
                "seed": seed,
                "specialize": specialize,
            }
            try:
                write_dump(document, failure_dump)
            except Exception:  # pragma: no cover - dump must not mask exc
                pass
        raise
    return RunResult(
        app=app,
        config=config,
        threads=threads,
        stats=stats,
        energy=energy_of_run(core, EnergyParams()),
        sync_stats=core.sync.stats,
        build=build,
        outputs=build.output_region(job),
    )


def run_app(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
    strict: bool = True,
    use_cache: bool = True,
    engine: str | None = None,
    seed: int | None = None,
    specialize: bool | None = None,
) -> RunResult:
    """Simulate *app* under *config* with *threads* hardware contexts."""
    machine = _normalize_machine(machine, threads)
    engine = engine or _DEFAULT_ENGINE
    if specialize is None:
        specialize = _DEFAULT_SPECIALIZE
    key = (app, config, threads, machine, scale, strict, engine, seed,
           specialize)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    result = _simulate(app, config, threads, machine, scale, strict,
                       engine=engine, seed=seed, specialize=specialize)
    if use_cache:
        _CACHE[key] = result
    return result


def simulate_job(job: CampaignJob, seed: int) -> RunResult:
    """Standard campaign runner: execute one :class:`CampaignJob`.

    Runs in a worker process; the returned :class:`RunResult` is shipped
    back (and disk-cached) by the campaign layer.  The derived *seed* is
    unused here — paper workloads are bit-deterministic by construction —
    but the signature keeps the runner drop-in compatible with stochastic
    runners.
    """
    del seed
    machine = _normalize_machine(job.machine, job.threads)
    dump_path = get_failure_dump_path()
    obs = campaign_observer() if dump_path else None
    return _simulate(
        job.app, job.config, job.threads, machine, job.scale, job.strict,
        obs=obs, failure_dump=dump_path, engine=job.engine, seed=job.seed,
        specialize=job.specialize,
    )


def _wedge_fetch(core) -> None:
    """Stall every context's fetch forever: an injected livelock."""
    core.fetch_stall_until = [core.config.max_cycles + 1] * core.num_threads


def simulate_job_faulty(job: CampaignJob, seed: int) -> RunResult:
    """Campaign runner honouring fault-injection tags (CLI demo, tests).

    ``tag="livelock"`` wedges every context's fetch before running: with
    failure dumps enabled the no-forward-progress watchdog fires (after a
    deliberately short fuse, so demos stay fast) and leaves a flight dump;
    any other tag behaves like :func:`simulate_job`.
    """
    del seed
    machine = _normalize_machine(job.machine, job.threads)
    dump_path = get_failure_dump_path()
    obs = (
        campaign_observer(watchdog_cycles=5_000) if dump_path else None
    )
    prepare = _wedge_fetch if job.tag == "livelock" else None
    return _simulate(
        job.app, job.config, job.threads, machine, job.scale, job.strict,
        obs=obs, failure_dump=dump_path, prepare=prepare, engine=job.engine,
        seed=job.seed, specialize=job.specialize,
    )


def trace_run(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
    interval: int = 1000,
    sink_capacity: int | None = None,
    strict: bool = True,
    engine: str | None = None,
    seed: int | None = None,
    specialize: bool | None = None,
) -> tuple[RunResult, Observer]:
    """Run one point with full observability attached (``repro trace``).

    Returns the run result plus the observer holding the collected events
    (``obs.sink``), the interval time series (``obs.interval``), and the
    flight recorder.
    """
    machine = _normalize_machine(machine, threads)
    obs = Observer(
        sink=MemorySink(sink_capacity),
        interval=IntervalMetrics(interval),
        recorder=FlightRecorder(),
        watchdog_cycles=DEFAULT_WATCHDOG_CYCLES,
    )
    result = _simulate(app, config, threads, machine, scale, strict, obs=obs,
                       engine=engine, seed=seed, specialize=specialize)
    return result, obs


def profile_run(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
    strict: bool = True,
    engine: str | None = None,
    record_slices: bool = False,
    seed: int | None = None,
    specialize: bool | None = None,
):
    """Run one point under the host self-profiler (``repro profile``).

    Returns ``(stats, profiler)``: the final :class:`SimStats` plus the
    :class:`~repro.obs.prof.HostProfiler` holding wall-clock attribution
    across the rare-path regions (and the fast-loop residual).  Pass
    ``record_slices=True`` to keep per-call slices for Perfetto export.
    """
    from repro.obs.prof import HostProfiler

    machine = _normalize_machine(machine, threads)
    build = build_point(app, threads, scale=scale, seed=seed)
    job = build.limit_job() if config.limit_identical else build.job()
    core_cls = resolve_engine(engine or _DEFAULT_ENGINE)
    if specialize is None:
        specialize = _DEFAULT_SPECIALIZE
    if issubclass(core_cls, FastSMTCore):
        core = core_cls(machine, config, job, strict=strict,
                        specialize=specialize)
    else:
        core = core_cls(machine, config, job, strict=strict)
    prof = HostProfiler(record_slices=record_slices)
    stats = prof.run(core)
    return stats, prof


@dataclass
class ReplayResult:
    """A post-mortem flight-dump replay, cross-checked against the oracle."""

    dump_path: str
    #: The job specification embedded in the dump.
    spec: dict
    #: The loaded dump document (ring events, core snapshot, error).
    dump: dict
    run: RunResult
    obs: Observer
    #: Static-oracle disagreements plus interval-reconciliation
    #: mismatches from the replayed run; empty means the replay is clean.
    problems: list[str]

    @property
    def ok(self) -> bool:
        return not self.problems


def replay_dump(
    path, *, validate: bool = True, interval: int = 1000
) -> ReplayResult:
    """Re-run the simulation point recorded in a flight dump.

    Loads the dump, rebuilds the point from its embedded ``job`` spec,
    and re-runs it under full observability (:func:`trace_run`).  Unless
    *validate* is disabled, the replay is held to the same gates as a
    campaign result: the static redundancy/value oracle
    (:func:`oracle_for_run` → ``validate_against``, which includes the
    per-site LVIP bounds) plus exact interval reconciliation — so a
    post-mortem replay that contradicts a proven bound is reported, not
    silently trusted.

    Injected faults (the ``--inject-livelock`` demo) are not part of the
    spec, so their replays run the *healthy* point; a dump from a genuine
    simulator bug reproduces it, exception and all.  Dumps written before
    specs were embedded raise ``ValueError``.
    """
    from repro.obs import load_dump

    document = load_dump(path)
    spec = document.get("job")
    if not isinstance(spec, dict) or "app" not in spec:
        raise ValueError(
            f"flight dump {path} carries no job spec (written by an older "
            "version?); cannot replay"
        )
    factory = CONFIG_FACTORIES.get(spec.get("config"))
    if factory is None:
        raise ValueError(
            f"flight dump {path} names unknown config {spec.get('config')!r}"
        )
    seed = spec.get("seed")
    specialize = spec.get("specialize")
    run, obs = trace_run(
        spec["app"],
        factory(),
        int(spec["threads"]),
        scale=float(spec.get("scale", 1.0)),
        strict=bool(spec.get("strict", True)),
        engine=spec.get("engine"),
        interval=interval,
        seed=None if seed is None else int(seed),
        specialize=None if specialize is None else bool(specialize),
    )
    problems: list[str] = []
    if validate:
        try:
            report = oracle_for_run(run)
            problems.extend(report.validate_against(run.stats))
        except Exception as exc:  # noqa: BLE001 - reported as a problem
            problems.append(
                f"oracle analysis failed: {type(exc).__name__}: {exc}"
            )
        problems.extend(
            f"interval {line}" for line in obs.interval.reconcile(run.stats)
        )
    return ReplayResult(
        dump_path=str(path), spec=spec, dump=document, run=run, obs=obs,
        problems=problems,
    )


@dataclass(frozen=True)
class OracleViolation:
    """One dynamic run that disagreed with its static oracle bounds.

    Either the workload violates the analysis assumptions or the
    simulator (or the oracle) has a bug — both are campaign-stopping
    findings, which is why aggregation surfaces them as structured
    failures instead of silently archiving the run.
    """

    job: str
    workload: str
    config: str
    problems: tuple[str, ...]

    def label(self) -> str:
        return self.job

    def __str__(self) -> str:
        lines = "; ".join(self.problems)
        return f"{self.job}: {lines}"


_ORACLE_MEMO: dict[tuple, object] = {}


def clear_oracle_memo() -> None:
    """Drop memoised oracle reports (tests use this for isolation)."""
    _ORACLE_MEMO.clear()


def oracle_for_run(run: RunResult):
    """The static :class:`~repro.analysis.redundancy.OracleReport`
    governing one completed run.

    Reports are memoised per (program digest, context count, limit-mode)
    so a campaign over many configurations analyses each distinct
    workload once.  Limit-study runs (``config.limit_identical``) execute
    identical clones with soft tid 0 and therefore get the dedicated
    limit analysis.
    """
    from repro.analysis.redundancy import analyze_build, analyze_limit_build
    from repro.workloads.engine import analyze_engine_build

    limit = run.config.limit_identical
    key = (run.build.program.digest(), run.build.nctx, limit)
    report = _ORACLE_MEMO.get(key)
    if report is None:
        if isinstance(run.build, EngineBuild):
            report = analyze_engine_build(run.build, limit=limit)
        else:
            report = (
                analyze_limit_build(run.build)
                if limit
                else analyze_build(run.build)
            )
        _ORACLE_MEMO[key] = report
    return report


def validate_campaign_result(result, progress=None) -> list[OracleViolation]:
    """Check every successful simulation against its static oracle.

    This is the campaign aggregation gate: each OK outcome whose payload
    is a :class:`RunResult` (including cache hits — stale cached results
    from a buggy simulator version are exactly what this catches) is
    cross-checked with :meth:`OracleReport.validate_against`.  Violations
    are appended to ``result.validation_failures`` and returned; a
    payload whose analysis itself fails (e.g. fixpoint divergence) is
    reported as a violation rather than skipped.

    Non-simulation payloads (custom runners) are skipped — the gate only
    claims what the oracle can actually check.
    """
    emit = progress if callable(progress) else (lambda line: None)
    violations: list[OracleViolation] = []
    for outcome in result.outcomes:
        payload = outcome.payload
        if not outcome.ok or not isinstance(payload, RunResult):
            continue
        job = job_label_of(outcome)
        try:
            report = oracle_for_run(payload)
            problems = report.validate_against(payload.stats)
        except Exception as exc:  # noqa: BLE001 - reported as a violation
            problems = [f"oracle analysis failed: {type(exc).__name__}: {exc}"]
        if problems:
            violation = OracleViolation(
                job=job,
                workload=payload.build.program.name,
                config=payload.config.name,
                problems=tuple(problems),
            )
            violations.append(violation)
            emit(f"[oracle] VIOLATION {violation}")
    result.validation_failures.extend(violations)
    return violations


def job_label_of(outcome) -> str:
    """Display label for one campaign outcome's job."""
    from repro.harness.campaign import job_label

    return job_label(outcome.job)


class WorkloadLintError(RuntimeError):
    """A campaign workload failed the pre-dispatch static lint."""

    def __init__(self, name: str, diagnostics: list) -> None:
        lines = "\n".join(f"  {d}" for d in diagnostics)
        super().__init__(
            f"workload {name!r} failed static lint "
            f"({len(diagnostics)} diagnostic(s)):\n{lines}"
        )
        self.name = name
        self.diagnostics = diagnostics


def lint_campaign_jobs(jobs, cache_dir=None, progress=None) -> int:
    """Statically lint every distinct workload a campaign will run.

    Each distinct ``(app, threads, scale, seed)`` tuple is built once
    (registry workloads included, via :func:`build_point`) and its
    program linted; a clean verdict is content-addressed on
    :meth:`~repro.isa.program.Program.digest` under ``<cache>/lint/`` so
    repeat campaigns skip the analysis entirely.  Any diagnostic aborts
    dispatch with :class:`WorkloadLintError` — a workload-generator bug
    should fail in milliseconds here, not wedge a fleet of simulations.

    Returns the number of programs actually linted (cache misses).
    Non-:class:`CampaignJob` entries (custom test jobs) are skipped.
    """
    from repro.analysis.lint import lint_program

    root = Path(
        cache_dir
        if cache_dir is not None
        else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    ) / "lint"
    emit = progress if callable(progress) else (lambda line: None)
    seen: set[tuple[str, int, float, int | None]] = set()
    fresh = 0
    for job in jobs:
        if not isinstance(job, CampaignJob):
            continue
        key = (job.app, job.threads, job.scale, job.seed)
        if key in seen:
            continue
        seen.add(key)
        build = build_point(job.app, job.threads, scale=job.scale,
                            seed=job.seed)
        marker = root / f"{build.program.digest()}.ok"
        if marker.exists():
            emit(f"lint {build.program.name}: cached ok")
            continue
        diagnostics = lint_program(build.program)
        if diagnostics:
            raise WorkloadLintError(build.program.name, diagnostics)
        fresh += 1
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text("ok\n")
        emit(f"lint {build.program.name}: ok")
    return fresh


def run_points(
    points,
    *,
    workers: int | None = None,
    timeout: float | None = None,
    retries: int = 1,
    cache=None,
    use_cache: bool = True,
    campaign_seed: int = 0,
    progress=None,
    failure_dump_dir=None,
    lint: bool = True,
    validate: bool = True,
) -> CampaignResult:
    """Run many simulation points in parallel and seed the in-memory memo.

    *points* is an iterable of :class:`CampaignJob` or of
    ``(app, config, threads[, machine[, scale[, strict]]])`` tuples.
    After this returns, a serial :func:`run_app` call for any successful
    point is a memo hit — which is how the figure regenerators and the
    benchmark drivers get their parallelism without restructuring.

    Unless *lint* is disabled, every distinct workload is statically
    linted (content-addressed, so effectively free after the first run)
    before any job dispatches; see :func:`lint_campaign_jobs`.  Unless
    *validate* is disabled, every successful result — fresh or served
    from the on-disk cache — is cross-checked against the static
    redundancy oracle at aggregation time; disagreements land in
    ``result.validation_failures`` (see :func:`validate_campaign_result`).
    """
    jobs = [
        point if isinstance(point, CampaignJob) else CampaignJob(*point)
        for point in points
    ]
    if lint:
        cache_root = getattr(cache, "root", None) if cache is not None else None
        lint_campaign_jobs(jobs, cache_dir=cache_root, progress=progress)
    result = run_campaign(
        jobs,
        simulate_job,
        workers=workers,
        timeout=timeout,
        retries=retries,
        cache=cache,
        use_cache=use_cache,
        campaign_seed=campaign_seed,
        progress=progress,
        failure_dump_dir=failure_dump_dir,
    )
    for outcome in result.outcomes:
        if outcome.ok:
            _CACHE[outcome.job.memo_key()] = outcome.payload
    if validate:
        validate_campaign_result(result, progress=progress)
    return result


def speedup_over_base(
    app: str,
    config: MMTConfig,
    threads: int,
    machine: MachineConfig | None = None,
    scale: float = 1.0,
) -> float:
    """Cycles(Base) / cycles(*config*) at the same thread count."""
    base = run_app(app, MMTConfig.base(), threads, machine, scale)
    other = run_app(app, config, threads, machine, scale)
    return base.cycles / other.cycles


def geomean(values) -> float:
    """Geometric mean (the paper's summary statistic)."""
    values = list(values)
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def default_apps() -> list[str]:
    """All sixteen applications in the paper's Table 1 order."""
    return list(APP_ORDER)
