"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig5a                # Figure 5(a), paper layout
    python -m repro fig6 --scale 0.5     # faster, smaller workloads
    python -m repro fig1 --apps ammp vpr
    python -m repro fig5a --workers 8    # parallel prefetch of the runs
    python -m repro campaign --apps ammp mcf --configs Base MMT-FXR \
        --threads 2 4 --workers 8       # batch sweep with result caching
    python -m repro trace --apps ammp --config MMT-FXR --interval 1000 \
        --chrome trace.json             # traced run + Perfetto export

Each figure target prints the same report the corresponding benchmark
emits, but without pytest in the loop — convenient for exploring one
result.  ``campaign`` runs an arbitrary (apps × configs × threads) sweep
through the parallel campaign runner: results are cached on disk (keyed
by configuration and code version), hung jobs are timed out and retried,
and a summary with cache hit/miss counts is printed at the end.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.host.selfcheck import JSON_SCHEMA_VERSION
from repro.core.config import MMTConfig
from repro.harness import experiment, figures, report, results
from repro.harness.experiment import CONFIG_FACTORIES
from repro.profiling.divergence import FIG2_BUCKETS

#: The ``src/`` root the host self-analysis reads; located from the
#: package itself so ``repro selfcheck`` works from any cwd.
_SRC_ROOT = Path(__file__).resolve().parent.parent.parent


def _fig1(args) -> str:
    rows = figures.fig1_sharing(apps=args.apps, scale=args.scale)
    return report.format_table(
        rows,
        columns=[
            "app", "execute_identical", "fetch_identical_only", "not_identical",
            "paper_execute_identical", "paper_fetch_identical",
        ],
        headers=["app", "exec-id", "fetch-only", "not-id", "paper exec",
                 "paper fetch"],
        title="Figure 1 — Instruction sharing characteristics",
    )


def _fig2(args) -> str:
    rows = figures.fig2_divergence(apps=args.apps, scale=args.scale)
    return report.format_table(
        rows,
        columns=["app"] + [f"<={b}" for b in FIG2_BUCKETS],
        float_format="{:.2f}",
        title="Figure 2 — Divergent path length difference (cumulative)",
    )


def _fig5(threads):
    def run(args) -> str:
        rows = figures.fig5_speedups(threads, apps=args.apps, scale=args.scale)
        label = "a" if threads == 2 else "c"
        return report.format_table(
            rows,
            columns=["app", "MMT-F", "MMT-FX", "MMT-FXR", "Limit"],
            title=f"Figure 5({label}) — Speedup over {threads}-thread SMT",
        )

    return run


def _fig5b(args) -> str:
    rows = figures.fig5b_identified(2, apps=args.apps, scale=args.scale)
    return report.format_stacked_bars(
        rows,
        "app",
        ["exec_identical", "exec_identical_regmerge", "fetch_identical",
         "not_identical"],
        title="Figure 5(b) — Identified identical instructions (MMT-FXR)",
    )


def _fig5d(args) -> str:
    rows = figures.fig5d_modes(2, apps=args.apps, scale=args.scale)
    return report.format_stacked_bars(
        rows,
        "app",
        ["merge", "detect", "catchup"],
        title="Figure 5(d) — Instruction breakdown by fetch mode (MMT-FXR)",
    )


def _fig6(args) -> str:
    rows = figures.fig6_energy(apps=args.apps, scale=args.scale)
    flat = []
    for row in rows:
        for label in ("SMT-2T", "MMT-2T", "SMT-4T", "MMT-4T"):
            bar = row[label]
            flat.append(
                {"app": row["app"], "bar": label, "cache": bar["cache"],
                 "overhead": bar["mmt_overhead"], "other": bar["other"],
                 "total": bar["total"]}
            )
    return report.format_table(
        flat,
        columns=["app", "bar", "cache", "overhead", "other", "total"],
        title="Figure 6 — Energy per job, normalised to SMT-2T",
    )


def _fig7a(args) -> str:
    rows = figures.fig7a_fhb_speedup(apps=args.apps, scale=args.scale)
    return report.format_table(
        rows,
        columns=["app"] + list(figures.FHB_SIZES),
        title="Figure 7(a) — Speedup vs FHB size",
    )


def _fig7b(args) -> str:
    rows = figures.fig7b_ports(apps=args.apps, scale=args.scale)
    return report.format_table(
        rows,
        columns=["ldst_ports", "geomean_speedup"],
        title="Figure 7(b) — Speedup vs load/store ports",
    )


def _fig7c(args) -> str:
    rows = figures.fig7c_fhb_modes(apps=args.apps, scale=args.scale)
    return report.format_table(
        rows,
        columns=["app", "fhb_size", "merge", "detect", "catchup"],
        float_format="{:.2f}",
        title="Figure 7(c) — Fetch modes vs FHB size",
    )


def _fig7d(args) -> str:
    rows = figures.fig7d_fetch_width(apps=args.apps, scale=args.scale)
    return report.format_table(
        rows,
        columns=["fetch_width", "geomean_speedup"],
        title="Figure 7(d) — Speedup vs fetch width",
    )


def _table3(args) -> str:
    return report.format_table(
        figures.table3_hardware(),
        columns=["component", "description", "area", "delay", "storage_bits"],
        title="Table 3 — Hardware requirements",
    )


def _table4(args) -> str:
    return report.format_pairs(
        figures.table4_configuration(), title="Table 4 — Simulator configuration"
    )


def _table5(args) -> str:
    return report.format_pairs(
        figures.table5_configurations(), title="Table 5 — Configurations"
    )


# ------------------------------------------------------------------- trace
def _trace(args) -> int:
    """One observed run: interval table, reconciliation, optional exports."""
    apps = args.apps or experiment.default_apps()
    app = apps[0]
    threads = args.threads[0]
    if args.config not in CONFIG_FACTORIES:
        known = ", ".join(sorted(CONFIG_FACTORIES))
        print(f"unknown config {args.config!r}; choose from: {known}")
        return 2
    config = CONFIG_FACTORIES[args.config]()
    run, obs = experiment.trace_run(
        app, config, threads, scale=args.scale, interval=args.interval,
        engine=args.engine, specialize=args.specialize,
    )
    stats = run.stats
    rows = [
        {
            "cycles": f"{s.start_cycle}..{s.end_cycle}",
            "ipc": s.ipc(),
            "merge": s.mode_share().get("merge", 0.0),
            "rob": s.rob_occupancy,
            "iq": s.iq_occupancy,
            "lsq": s.lsq_occupancy,
            "mshr": s.mshr_outstanding,
            "fhb_hit": s.fhb_hit_rate(),
            "rst": s.rst_sharing,
        }
        for s in obs.interval.samples
    ]
    print(report.format_table(
        rows,
        columns=["cycles", "ipc", "merge", "rob", "iq", "lsq", "mshr",
                 "fhb_hit", "rst"],
        title=(f"Trace — {app}/{config.name}/{threads}t, "
               f"interval {args.interval} cycles"),
    ))
    counts = obs.sink.counts()
    print(report.format_pairs(
        sorted(counts.items()),
        title=f"Events ({sum(counts.values())} total)",
    ))
    mismatches = obs.interval.reconcile(stats)
    if mismatches:
        print("RECONCILIATION FAILED:")
        for line in mismatches:
            print(f"  {line}")
    else:
        print(f"\nfinal: {stats.cycles} cycles, IPC {stats.ipc():.3f} — "
              "interval sums reconcile exactly with final stats")
    if args.json:
        results.dump_trace(run, obs, args.json, extra={"scale": args.scale})
        print(f"[trace time series written to {args.json}]")
    if args.chrome:
        from repro.obs import write_chrome_trace

        write_chrome_trace(
            args.chrome, obs.sink.events, obs.interval.samples,
            metadata={"app": app, "config": config.name,
                      "threads": threads},
        )
        print(f"[Chrome trace for Perfetto written to {args.chrome}]")
    return 0 if not mismatches else 1


# ----------------------------------------------------------------- analyze
def _analyze(args) -> int:
    """Static analysis of guest workloads: lint + redundancy oracle."""
    from repro.analysis import lint_program
    from repro.analysis.redundancy import analyze_build, analyze_mp_build
    from repro.workloads.engine import (
        WorkloadRegistryError,
        analyze_engine_build,
        build_engine_workload,
        get_workload,
        is_engine_workload,
        workload_names,
    )
    from repro.workloads.generator import build_workload
    from repro.workloads.message_passing import PATTERNS, build_mp_workload
    from repro.workloads.profiles import APP_ORDER, get_profile

    apps = list(APP_ORDER) if args.all_workloads else (
        args.apps or list(APP_ORDER)
    )
    suppress = tuple(args.suppress or ())
    thread_counts = args.threads
    targets = []  # (label, threads, build, oracle_fn)
    for app in apps:
        if is_engine_workload(app):
            workload = get_workload(app)
            for threads in thread_counts:
                if not workload.valid_nctx(threads):
                    continue
                targets.append(
                    (f"{app}/{threads}t", threads,
                     build_engine_workload(app, threads, scale=args.scale),
                     analyze_engine_build)
                )
            continue
        try:
            profile = get_profile(app)
        except KeyError as exc:
            print(f"error: {exc.args[0]}")
            return 2
        for threads in thread_counts:
            targets.append(
                (f"{app}/{threads}t", threads,
                 build_workload(profile, threads, scale=args.scale),
                 analyze_build)
            )
    if args.all_workloads:
        for pattern in PATTERNS:
            for threads in thread_counts:
                if threads < 2:
                    continue
                targets.append(
                    (f"mp-{pattern}/{threads}t", threads,
                     build_mp_workload(threads, pattern=pattern),
                     analyze_mp_build)
                )
        # Registry workloads (the engine-generated families).
        for name in workload_names():
            workload = get_workload(name)
            for threads in thread_counts:
                if not workload.valid_nctx(threads):
                    continue
                try:
                    build = build_engine_workload(
                        name, threads, scale=args.scale
                    )
                except WorkloadRegistryError as exc:
                    print(f"error: {exc}")
                    return 2
                targets.append(
                    (f"{name}/{threads}t", threads, build,
                     analyze_engine_build)
                )

    rows = []
    all_diags = []
    for label, _threads, build, oracle_fn in targets:
        try:
            diags = lint_program(build.program, suppress=suppress)
        except ValueError as exc:  # unknown suppression rule
            print(f"error: {exc}")
            return 2
        oracle = oracle_fn(build)
        row = {
            "workload": label,
            "insts": len(build.program),
            "diags": len(diags),
            "identical": oracle.identical_fraction,
            "input_div": oracle.input_divergent_fraction,
            "control_div": oracle.control_divergent_fraction,
            "merge_ub": oracle.merge_upper_bound,
            "rst_ub": oracle.rst_upper_bound,
        }
        if args.values:
            row.update({
                "lvip_ub": oracle.lvip_hit_rate_upper_bound,
                "must_id": oracle.lvip_must_identical_fraction,
                "widened": oracle.widened_loop_headers,
            })
        rows.append(row)
        all_diags.extend((label, d) for d in diags)

    # Specialization section (--specialize): the per-PC rare-path
    # verdicts and superblock manifests the fast engine consumes, via
    # the same memoised entry point (repro.pipeline.fast.manifest_for),
    # so what is reported here is byte-for-byte what a run would use.
    spec_on = bool(
        getattr(args, "specialize_explicit", False) and args.specialize
    )
    spec_rows: list[dict] = []
    spec_docs: list[dict] = []
    spec_manifests = []
    if spec_on:
        from repro.analysis.specialize import RARE_PATHS
        from repro.pipeline.fast import manifest_for

        for label, threads, build, _oracle_fn in targets:
            manifest = manifest_for(build.program, threads)
            summary = manifest.summary()
            counts = summary["impossible_counts"]
            spec_rows.append({
                "workload": label,
                "pcs": summary["num_pcs"],
                "reach": summary["reachable_pcs"],
                "plain": summary["plain_pcs"],
                "sblocks": summary["num_superblocks"],
                "max_run": summary["longest_guard_free_run"],
                **{path: counts[path] for path in RARE_PATHS},
                "digest": manifest.digest()[:12],
            })
            spec_docs.append(
                {"workload": label, "manifest": manifest.to_document()}
            )
            spec_manifests.append((label, manifest))

    # With the JSON document going to stdout, suppress the human-readable
    # report so consumers can parse the output directly.
    human_output = args.json != "-"
    columns = ["workload", "insts", "diags", "identical", "input_div",
               "control_div", "merge_ub", "rst_ub"]
    if args.values:
        columns += ["lvip_ub", "must_id", "widened"]
    if human_output:
        print(report.format_table(
            rows,
            columns=columns,
            title=f"Static analysis — {len(targets)} workload(s)"
                  + (f", suppressed: {', '.join(suppress)}"
                     if suppress else ""),
        ))
        for label, diag in all_diags:
            print(f"{label}: {diag}")
    if spec_on and human_output:
        from repro.analysis.specialize import RARE_PATHS

        print()
        print(report.format_table(
            spec_rows,
            columns=["workload", "pcs", "reach", "plain", "sblocks",
                     "max_run", *RARE_PATHS, "digest"],
            title=(f"Specialization — statically-impossible rare paths "
                   f"(counts over reachable PCs), "
                   f"{len(spec_rows)} manifest(s)"),
        ))
        # With a single workload the full per-PC verdict table fits.
        if len(spec_manifests) == 1:
            label, manifest = spec_manifests[0]
            verdict_rows = [
                {
                    "pc": v.pc,
                    "op": v.op,
                    "reach": "y" if v.reachable else "-",
                    "plain_run": v.plain_run,
                    "impossible": ",".join(sorted(v.impossible)) or "-",
                }
                for v in manifest.verdicts
            ]
            print()
            print(report.format_table(
                verdict_rows,
                columns=["pc", "op", "reach", "plain_run", "impossible"],
                title=f"Per-PC verdicts — {label}",
            ))
    if args.json:
        document = {
            "tool": "repro-analyze",
            "schema_version": JSON_SCHEMA_VERSION,
            "ok": not all_diags,
            "findings": [
                {
                    "workload": label,
                    "rule": diag.rule,
                    "severity": diag.severity,
                    "pc": diag.pc,
                    "block": diag.block,
                    "message": diag.message,
                }
                for label, diag in all_diags
            ],
            "summary": {
                "workloads": len(targets),
                "total": len(all_diags),
                "suppressed_rules": sorted(suppress),
            },
            "workloads": rows,
        }
        if spec_on:
            document["specialization"] = spec_docs
        _write_json_document(document, args.json)
    if all_diags:
        if human_output:
            print(f"\n{len(all_diags)} unsuppressed diagnostic(s)")
        return 1
    if human_output:
        print("\nall workloads lint clean")
    return 0


def _write_json_document(document, dest: str) -> None:
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if dest == "-":
        sys.stdout.write(text)
    else:
        Path(dest).write_text(text)
        print(f"[JSON report written to {dest}]")


# --------------------------------------------------------------- selfcheck
def _selfcheck(args) -> int:
    """Host self-analysis: fast/reference drift check + determinism lint
    over the simulator's own source."""
    from repro.analysis.host.selfcheck import run_selfcheck, write_baseline

    root = Path(args.root) if args.root else _SRC_ROOT
    baseline = Path(args.baseline) if args.baseline else None
    report = run_selfcheck(root, baseline=baseline)
    if args.update_baseline:
        if baseline is None:
            print("error: --update-baseline requires --baseline PATH")
            return 2
        write_baseline(report, baseline)
        print(
            f"[baseline with {len(report.findings)} finding(s) written "
            f"to {baseline}]"
        )
        return 0
    if args.json:
        _write_json_document(report.to_json(), args.json)
    else:
        print(report.format_table())
    return 0 if report.ok else 1


# ---------------------------------------------------------------- campaign
def _hang_forever() -> None:  # pragma: no cover - killed by the timeout
    while True:
        time.sleep(3600)


def demo_runner(job, seed):
    """Campaign runner used by ``repro campaign``: simulates the job,
    honouring fault-injection tags — ``inject-hang`` (the ``--inject-hang``
    demo) hangs until the per-job timeout kills it, ``livelock`` (the
    ``--inject-livelock`` demo) wedges fetch so the watchdog fires."""
    if getattr(job, "tag", "") == "inject-hang":
        _hang_forever()
    return experiment.simulate_job_faulty(job, seed)


def _campaign(args) -> int:
    from repro.harness.campaign import run_campaign

    apps = args.apps or experiment.default_apps()
    if args.suite:
        from repro.workloads.suites import SuiteError, expand_suite_jobs, load_suite

        # A scenario's own `engine` key wins; an explicit --engine is the
        # default for scenarios that don't pin one.
        default_engine = (
            args.engine if getattr(args, "engine_explicit", False)
            else "reference"
        )
        try:
            suite = load_suite(args.suite)
            jobs = expand_suite_jobs(suite, default_engine=default_engine,
                                     default_specialize=args.specialize)
        except SuiteError as exc:
            print(f"suite error: {exc}")
            return 2
        print(f"suite {suite.name!r}: {len(suite.scenarios)} scenario(s) "
              f"-> {len(jobs)} job(s)")
    else:
        unknown = [
            name for name in args.configs if name not in CONFIG_FACTORIES
        ]
        if unknown:
            known = ", ".join(sorted(CONFIG_FACTORIES))
            print(f"unknown config(s) {unknown}; choose from: {known}")
            return 2
        jobs = [
            experiment.CampaignJob(app, CONFIG_FACTORIES[name](), threads,
                                   scale=args.scale, engine=args.engine,
                                   specialize=args.specialize)
            for app in apps
            for name in args.configs
            for threads in args.threads
        ]
    if args.inject_hang:
        jobs.append(
            experiment.CampaignJob(apps[0], MMTConfig.base(),
                                   args.threads[0], scale=args.scale,
                                   tag="inject-hang")
        )
    if args.inject_livelock:
        jobs.append(
            experiment.CampaignJob(apps[0], MMTConfig.base(),
                                   args.threads[0], scale=args.scale,
                                   tag="livelock")
        )
    # Static lint gate: a broken workload fails here in milliseconds
    # instead of wedging a fleet of worker processes.
    try:
        experiment.lint_campaign_jobs(jobs, cache_dir=args.cache_dir,
                                      progress=print)
    except experiment.WorkloadLintError as exc:
        print(f"campaign aborted: {exc}")
        return 2
    result = run_campaign(
        jobs,
        demo_runner,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        cache=args.cache_dir,
        use_cache=not args.no_cache,
        campaign_seed=args.seed,
        progress=print,
        failure_dump_dir=args.dump_dir or None,
    )
    # Oracle gate: every successful result — including cache hits — is
    # cross-checked against the static redundancy/value analysis at
    # aggregation time.  A violation means the simulator contradicted a
    # proven bound; that fails the campaign.
    if not args.no_validate:
        experiment.validate_campaign_result(result, progress=print)
    rows = []
    for outcome in result.outcomes:
        job = outcome.job
        row = {
            "app": job.app + (f"[{job.tag}]" if job.tag else ""),
            "config": job.config.name,
            "threads": job.threads,
            "status": outcome.status,
            "source": "cache" if outcome.from_cache else "run",
            "wall_s": outcome.wall_time,
            "rss_mb": (
                outcome.max_rss_bytes / (1024 * 1024)
                if outcome.max_rss_bytes else "-"
            ),
            "cycles": outcome.payload.stats.cycles if outcome.ok else "-",
            "ipc": outcome.payload.stats.ipc() if outcome.ok else "-",
        }
        rows.append(row)
    print(report.format_table(
        rows,
        columns=["app", "config", "threads", "status", "source", "wall_s",
                 "rss_mb", "cycles", "ipc"],
        title=f"Campaign — {len(jobs)} jobs",
    ))
    summary = results.summarize_campaign(result)
    print(report.format_pairs(
        [(key, f"{value:.3f}" if isinstance(value, float) else str(value))
         for key, value in summary.items()],
        title="Campaign summary",
    ))
    failures = results.campaign_failure_rows(result)
    if failures:
        print(report.format_table(
            failures,
            columns=["job", "status", "attempts", "error", "dump"],
            title="Failed jobs (reported, not fatal)",
        ))
    violations = results.campaign_violation_rows(result)
    if violations:
        print(report.format_table(
            violations,
            columns=["job", "workload", "config", "problems"],
            title="Oracle violations (dynamic run contradicted a "
                  "static bound — FATAL)",
        ))
    if result.runlog_path:
        print(f"\n[campaign run-log written to {result.runlog_path}]")
    if args.json:
        results.dump_campaign(result, args.json)
        print(f"\n[campaign record written to {args.json}]")
    if args.metrics:
        from pathlib import Path

        path = Path(args.metrics)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(results.campaign_metrics(result).render())
        print(f"\n[Prometheus metrics written to {args.metrics}]")
    if violations:
        return 1
    # Partial failure is reported, not fatal; a sweep where *nothing*
    # succeeded is an error for scripting purposes.
    return 0 if (not jobs or result.completed) else 1


# ----------------------------------------------------------------- profile
def _profile(args) -> int:
    """Host self-profile of one point: where does the wall-clock go?"""
    apps = args.apps or experiment.default_apps()
    app = apps[0]
    threads = args.threads[0]
    if args.config not in CONFIG_FACTORIES:
        known = ", ".join(sorted(CONFIG_FACTORIES))
        print(f"unknown config {args.config!r}; choose from: {known}")
        return 2
    config = CONFIG_FACTORIES[args.config]()
    stats, prof = experiment.profile_run(
        app, config, threads, scale=args.scale, engine=args.engine,
        specialize=args.specialize, record_slices=bool(args.chrome),
    )
    rows = [
        {
            "region": row["region"],
            "calls": row["calls"],
            "self_ms": row["self_s"] * 1e3,
            "share": row["share"],
        }
        for row in prof.report_rows()
    ]
    print(report.format_table(
        rows,
        columns=["region", "calls", "self_ms", "share"],
        title=(f"Host profile — {app}/{config.name}/{threads}t, "
               f"engine {args.engine}"),
    ))
    committed = stats.committed_thread_insts
    pairs = [
        ("wall_s", f"{prof.total_wall:.3f}"),
        ("cycles", str(stats.cycles)),
        ("committed_insts", str(committed)),
        ("host_us_per_inst",
         f"{prof.total_wall * 1e6 / committed:.3f}" if committed else "-"),
        ("sim_cycles_per_host_s",
         f"{stats.cycles / prof.total_wall:.0f}" if prof.total_wall else "-"),
    ]
    print(report.format_pairs(pairs, title="Host totals"))
    if args.json:
        import json as _json
        from pathlib import Path

        document = prof.as_dict()
        document.update(
            {"app": app, "config": config.name, "threads": threads,
             "scale": args.scale, "engine": args.engine,
             "cycles": stats.cycles, "committed_insts": committed}
        )
        Path(args.json).write_text(
            _json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        print(f"[host profile written to {args.json}]")
    if args.chrome:
        prof.write_chrome_trace(args.chrome)
        print(f"[Chrome trace for Perfetto written to {args.chrome}]")
    return 0


# ------------------------------------------------------------------ replay
def _replay(args) -> int:
    """Post-mortem: re-run the point recorded in a flight dump."""
    if not args.dump:
        print("replay requires --dump PATH (a flight-recorder dump)")
        return 2
    try:
        replay = experiment.replay_dump(
            args.dump, validate=not args.no_validate, interval=args.interval
        )
    except (OSError, ValueError) as exc:
        print(f"replay failed: {exc}")
        return 2
    spec = replay.spec
    print(f"replaying {spec['app']}/{spec['config']}/{spec['threads']}t "
          f"(scale {spec.get('scale', 1.0)}, engine "
          f"{spec.get('engine', 'reference')}) from {args.dump}")
    original = replay.dump.get("error")
    if original:
        print(f"original failure: {original}")
    stats = replay.run.stats
    print(f"replay finished: {stats.cycles} cycles, IPC {stats.ipc():.3f}")
    if replay.problems:
        print("REPLAY VALIDATION FAILED:")
        for line in replay.problems:
            print(f"  {line}")
        return 1
    if not args.no_validate:
        print("replay clean — oracle bounds hold and interval sums "
              "reconcile exactly")
    return 0


def _record(args) -> int:
    """Record per-thread commit streams from one reference-core run and
    save them as a replayable trace workload (``trace:PATH``)."""
    from repro.workloads.record import record_trace

    apps = args.apps or experiment.default_apps()
    app = apps[0]
    threads = args.threads[0]
    if args.config not in CONFIG_FACTORIES:
        known = ", ".join(sorted(CONFIG_FACTORIES))
        print(f"unknown config {args.config!r}; choose from: {known}")
        return 2
    config = CONFIG_FACTORIES[args.config]()
    if config.limit_identical:
        print("cannot record under the Limit study (identical clones "
              "carry no per-thread structure); pick a real config")
        return 2
    out = args.out or f"{app}-{config.name}-{threads}t.trace.json"
    trace = record_trace(
        app, config, threads, scale=args.scale, window=args.window
    )
    path = trace.save(out)
    lengths = ", ".join(str(len(s)) for s in trace.tokens)
    print(f"recorded {app}/{config.name}/{threads}t (scale {args.scale}): "
          f"{trace.window_count} distinct {trace.window}-PC windows, "
          f"tokens per context: {lengths}")
    print(f"trace written to {path}")
    print(f"digest: {trace.digest()}")
    print(f"replay it with workload name 'trace:{path}' — e.g.\n"
          f"  [[scenario]]\n"
          f"  workload = \"trace:{path}\"\n"
          f"  threads = [{threads}]\n"
          f"in a scenario suite, or via repro analyze --apps trace:{path}")
    return 0


TARGETS = {
    "fig1": (_fig1, "instruction-sharing breakdown"),
    "fig2": (_fig2, "divergent-path-length histogram"),
    "fig5a": (_fig5(2), "speedups, 2 threads"),
    "fig5b": (_fig5b, "identified identical instructions"),
    "fig5c": (_fig5(4), "speedups, 4 threads"),
    "fig5d": (_fig5d, "fetch-mode breakdown"),
    "fig6": (_fig6, "energy per job"),
    "fig7a": (_fig7a, "FHB size sweep (speedup)"),
    "fig7b": (_fig7b, "load/store port sweep"),
    "fig7c": (_fig7c, "FHB size sweep (fetch modes)"),
    "fig7d": (_fig7d, "fetch width sweep"),
    "table3": (_table3, "hardware budget"),
    "table4": (_table4, "simulator configuration"),
    "table5": (_table5, "evaluated configurations"),
}


ROW_SOURCES = {
    "fig1": lambda a: figures.fig1_sharing(apps=a.apps, scale=a.scale),
    "fig2": lambda a: figures.fig2_divergence(apps=a.apps, scale=a.scale),
    "fig5a": lambda a: figures.fig5_speedups(2, apps=a.apps, scale=a.scale),
    "fig5b": lambda a: figures.fig5b_identified(2, apps=a.apps, scale=a.scale),
    "fig5c": lambda a: figures.fig5_speedups(4, apps=a.apps, scale=a.scale),
    "fig5d": lambda a: figures.fig5d_modes(2, apps=a.apps, scale=a.scale),
    "fig6": lambda a: figures.fig6_energy(apps=a.apps, scale=a.scale),
    "fig7a": lambda a: figures.fig7a_fhb_speedup(apps=a.apps, scale=a.scale),
    "fig7b": lambda a: figures.fig7b_ports(apps=a.apps, scale=a.scale),
    "fig7c": lambda a: figures.fig7c_fhb_modes(apps=a.apps, scale=a.scale),
    "fig7d": lambda a: figures.fig7d_fetch_width(apps=a.apps, scale=a.scale),
    "table3": lambda a: figures.table3_hardware(),
    "table4": lambda a: [list(pair) for pair in figures.table4_configuration()],
    "table5": lambda a: [list(pair) for pair in figures.table5_configurations()],
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures of the MMT paper (MICRO 2010).",
    )
    parser.add_argument(
        "target",
        choices=sorted(TARGETS)
        + ["analyze", "list", "campaign", "trace", "profile", "record",
           "replay", "selfcheck"],
        help="which table/figure to regenerate ('list' to enumerate; "
        "'campaign' runs a parallel batch sweep; 'trace' runs one point "
        "with event tracing and interval metrics; 'profile' runs one "
        "point under the host self-profiler; 'record' captures per-thread "
        "commit streams into a replayable trace workload; 'replay' re-runs "
        "a flight dump under the oracle gate; 'analyze' statically lints "
        "workloads and reports redundancy-oracle bounds; 'selfcheck' "
        "runs the host self-analysis: fast/reference drift check + "
        "determinism lint over the simulator's own source)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (default 1.0 = calibrated size)",
    )
    parser.add_argument(
        "--apps",
        nargs="*",
        default=None,
        help="restrict to these applications (default: all sixteen)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="additionally dump the figure's data rows as JSON to PATH",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="simulation core: 'reference' (the proven SMTCore) or 'fast' "
        "(the cycle-exact fast-path twin, see docs/fast-path.md); applies "
        "to figures, campaign jobs, traced and profiled runs (default: "
        "reference, except 'profile' which defaults to fast)",
    )
    parser.add_argument(
        "--specialize",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="let the fast engine consume static specialization manifests "
        "(per-PC rare-path verdicts, see docs/specialization.md); "
        "--no-specialize runs it guard-by-guard.  Also selects the "
        "specialization section of 'analyze' (default: on)",
    )
    parallel = parser.add_argument_group("parallel execution")
    parallel.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run simulations as a parallel campaign with this many "
        "worker processes (default for figures: serial; for campaign: "
        "all cores)",
    )
    parallel.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job timeout in seconds (timed-out jobs are retried, "
        "then reported)",
    )
    parallel.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts for failed or hung jobs (default 1)",
    )
    parallel.add_argument(
        "--cache-dir",
        default=None,
        help="campaign result cache directory (default .repro-cache, or "
        "$REPRO_CACHE_DIR)",
    )
    parallel.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parallel.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign seed (per-job seeds derive deterministically)",
    )
    campaign = parser.add_argument_group("campaign target")
    campaign.add_argument(
        "--configs",
        nargs="*",
        default=["Base", "MMT-FXR"],
        help=f"configurations to sweep ({', '.join(CONFIG_FACTORIES)})",
    )
    campaign.add_argument(
        "--threads",
        type=int,
        nargs="*",
        default=[2],
        help="hardware thread counts to sweep (default: 2)",
    )
    campaign.add_argument(
        "--inject-hang",
        action="store_true",
        help="append one deliberately hanging job (timeout/retry demo)",
    )
    campaign.add_argument(
        "--inject-livelock",
        action="store_true",
        help="append one livelocked job (watchdog + flight-dump demo)",
    )
    campaign.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the static-oracle validation gate at aggregation time",
    )
    campaign.add_argument(
        "--dump-dir",
        default=".repro-flight",
        metavar="DIR",
        help="directory for flight-recorder dumps of failed/hung jobs "
        "(default .repro-flight; pass '' to disable)",
    )
    campaign.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write campaign metrics in Prometheus text exposition "
        "format to PATH",
    )
    campaign.add_argument(
        "--suite",
        metavar="PATH",
        default=None,
        help="run the scenario suite declared in PATH (scenarios/*.toml) "
        "instead of the --apps/--configs/--threads cross product; "
        "scenario 'engine' keys win over --engine",
    )
    analyze = parser.add_argument_group("analyze target")
    analyze.add_argument(
        "--all-workloads",
        action="store_true",
        help="analyze every built-in app plus the message-passing patterns",
    )
    analyze.add_argument(
        "--values",
        action="store_true",
        help="include value-level oracle columns (static LVIP hit-rate "
        "upper bound, weighted must-identical load fraction, widened "
        "loop-header count)",
    )
    analyze.add_argument(
        "--suppress",
        nargs="*",
        default=None,
        metavar="RULE",
        help="lint rule ids to suppress (see docs/static-analysis.md)",
    )
    trace = parser.add_argument_group("trace target")
    trace.add_argument(
        "--config",
        default="MMT-FXR",
        help="configuration for the traced run (default MMT-FXR)",
    )
    trace.add_argument(
        "--interval",
        type=int,
        default=1000,
        help="interval-metrics sampling period in cycles (default 1000)",
    )
    trace.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="write a Chrome trace_event JSON (Perfetto-loadable) to PATH",
    )
    selfcheck = parser.add_argument_group("selfcheck target")
    selfcheck.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="accepted-findings baseline: findings pinned there do not "
        "fail the gate (missing file = empty baseline)",
    )
    selfcheck.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    selfcheck.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="src/ root to analyze (default: the installed package's own "
        "source tree)",
    )
    replay = parser.add_argument_group("replay target")
    replay.add_argument(
        "--dump",
        metavar="PATH",
        default=None,
        help="flight-recorder dump to replay (written to --dump-dir by a "
        "failed campaign job)",
    )
    record = parser.add_argument_group("record target")
    record.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="where to write the recorded trace (default "
        "<app>-<config>-<threads>t.trace.json)",
    )
    record.add_argument(
        "--window",
        type=int,
        default=32,
        help="committed-PC window length per trace token (default 32)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # The self-profiler exists to explain fast-loop wall-clock, so
    # `profile` defaults to the fast engine; everything else stays on
    # the reference core unless asked.  Suite expansion needs to know
    # whether --engine was the user's choice or this default.
    args.engine_explicit = args.engine is not None
    if args.engine is None:
        args.engine = "fast" if args.target == "profile" else "reference"
    try:
        experiment.set_default_engine(args.engine)
    except ValueError as exc:
        # resolve_engine's message already lists the registry keys.
        print(f"error: {exc}")
        return 2
    # Specialization defaults on (it is part of the fast engine's
    # contract, not an experiment knob); 'analyze' only prints its
    # specialization section when --specialize was asked for explicitly.
    args.specialize_explicit = args.specialize is not None
    if args.specialize is None:
        args.specialize = True
    experiment.set_default_specialize(args.specialize)
    if args.target == "list":
        width = max(len(name) for name in TARGETS)
        for name in sorted(TARGETS):
            print(f"{name.ljust(width)}  {TARGETS[name][1]}")
        print(f"{'campaign'.ljust(width)}  parallel batch sweep with "
              "result caching")
        print(f"{'trace'.ljust(width)}  one observed run: events, interval "
              "metrics, Perfetto export")
        print(f"{'profile'.ljust(width)}  host self-profile: wall-clock by "
              "rare-path region")
        print(f"{'record'.ljust(width)}  record per-thread commit streams "
              "into a replayable trace workload")
        print(f"{'replay'.ljust(width)}  re-run a flight dump under the "
              "oracle gate")
        print(f"{'analyze'.ljust(width)}  static workload lint + redundancy "
              "oracle bounds")
        print(f"{'selfcheck'.ljust(width)}  host self-analysis: drift check "
              "+ determinism lint")
        return 0
    if args.target == "campaign":
        return _campaign(args)
    if args.target == "trace":
        return _trace(args)
    if args.target == "profile":
        return _profile(args)
    if args.target == "record":
        return _record(args)
    if args.target == "replay":
        return _replay(args)
    if args.target == "analyze":
        return _analyze(args)
    if args.target == "selfcheck":
        return _selfcheck(args)
    if args.workers:
        figures.prefetch_figure(
            args.target, apps=args.apps, scale=args.scale,
            workers=args.workers, cache=args.cache_dir,
            use_cache=not args.no_cache, timeout=args.timeout,
            retries=args.retries, progress=print,
        )
    handler, _ = TARGETS[args.target]
    print(handler(args))
    if args.json:
        from repro.harness.results import dump_figure

        # Completed runs are memoised, so this re-invocation is cheap.
        dump_figure(
            args.target, ROW_SOURCES[args.target](args), args.json,
            scale=args.scale,
        )
        print(f"\n[rows written to {args.json}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
