"""Fast-engine benchmark: reference vs fast wall-clock on the fig5a sweep.

The benchmark measures ``core.run()`` wall-clock for the *same* simulation
point on both engines — workload construction, oracle decoding, and
result bookkeeping are excluded from both sides, so the ratio isolates
the engine.  Each measured point also asserts bit-identical final
statistics, because a fast number from a wrong simulation is worthless.

Results append to a ``BENCH_fastpath.json`` trajectory (one record per
recorded sweep, newest last) so regressions of the fast path show up as
a falling ``aggregate_speedup`` across commits; the CI gate fails when
the measured aggregate drops below a pinned threshold (see
``benchmarks/bench_fastpath.py``).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.core.config import MMTConfig
from repro.pipeline.config import MachineConfig
from repro.pipeline.fast import resolve_engine
from repro.workloads.generator import build_workload
from repro.workloads.profiles import get_profile

#: The fig5a sweep: two hardware threads, Base plus every paper config.
FIG5A_THREADS = 2
FIG5A_CONFIGS = (
    MMTConfig.base,
    MMTConfig.mmt_f,
    MMTConfig.mmt_fx,
    MMTConfig.mmt_fxr,
    MMTConfig.limit,
)

#: Smoke subset used by the CI gate (full sweep: pass apps=None).
SMOKE_APPS = ("ammp", "mcf", "lu", "fft")

#: Minimum fast/reference aggregate speedup the CI gate enforces.  Pinned
#: well below the recorded trajectory (~2.9x on an otherwise-idle
#: machine) so shared-runner noise cannot flake the gate, while still
#: catching any change that de-optimises the fast loop outright.
PINNED_MIN_SPEEDUP = 1.8

DEFAULT_TRAJECTORY = Path(__file__).resolve().parents[3] / "BENCH_fastpath.json"


def _measure_point(app: str, config: MMTConfig, threads: int, scale: float):
    """One (app, config) point on both engines; returns the row dict."""
    build = build_workload(get_profile(app), threads, scale=scale)
    machine = MachineConfig(num_threads=threads)
    results = {}
    for engine in ("reference", "fast"):
        job = build.limit_job() if config.limit_identical else build.job()
        core = resolve_engine(engine)(machine, config, job, strict=True)
        start = time.perf_counter()
        stats = core.run()
        wall = time.perf_counter() - start
        results[engine] = (wall, stats)
    ref_wall, ref_stats = results["reference"]
    fast_wall, fast_stats = results["fast"]
    if fast_stats.__dict__ != ref_stats.__dict__:
        raise AssertionError(
            f"{app}/{config.name}: fast engine diverged from reference — "
            f"benchmark aborted (a fast wrong answer is not a speedup)"
        )
    insts = ref_stats.committed_thread_insts
    return {
        "app": app,
        "config": config.name,
        "threads": threads,
        "committed_insts": insts,
        "cycles": ref_stats.cycles,
        "reference_wall_s": round(ref_wall, 4),
        "fast_wall_s": round(fast_wall, 4),
        "reference_ips": round(insts / ref_wall) if ref_wall > 0 else None,
        "fast_ips": round(insts / fast_wall) if fast_wall > 0 else None,
        "speedup": round(ref_wall / fast_wall, 3) if fast_wall > 0 else None,
    }


def run_fastpath_bench(
    apps=None, scale: float = 1.0, threads: int = FIG5A_THREADS, progress=None
) -> dict:
    """Measure the fig5a sweep on both engines; returns the record.

    The record carries per-point rows plus two summaries: the *aggregate*
    speedup (total reference wall over total fast wall — what a campaign
    actually saves) and the per-point min/max.
    """
    emit = progress if callable(progress) else (lambda line: None)
    apps = list(apps) if apps is not None else list(SMOKE_APPS)
    rows = []
    for app in apps:
        for factory in FIG5A_CONFIGS:
            row = _measure_point(app, factory(), threads, scale)
            rows.append(row)
            emit(
                f"{row['app']}/{row['config']}: "
                f"ref {row['reference_wall_s']}s, fast {row['fast_wall_s']}s "
                f"({row['speedup']}x)"
            )
    total_ref = sum(row["reference_wall_s"] for row in rows)
    total_fast = sum(row["fast_wall_s"] for row in rows)
    speedups = [row["speedup"] for row in rows if row["speedup"]]
    return {
        "bench": "fig5a-fastpath",
        "threads": threads,
        "scale": scale,
        "apps": apps,
        "python": platform.python_version(),
        "aggregate_speedup": (
            round(total_ref / total_fast, 3) if total_fast > 0 else None
        ),
        "min_speedup": min(speedups) if speedups else None,
        "max_speedup": max(speedups) if speedups else None,
        "total_reference_wall_s": round(total_ref, 3),
        "total_fast_wall_s": round(total_fast, 3),
        "points": rows,
    }


def append_trajectory(record: dict, path=DEFAULT_TRAJECTORY) -> Path:
    """Append *record* to the JSON trajectory at *path* (a list)."""
    path = Path(path)
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text())
        if not isinstance(trajectory, list):
            raise ValueError(f"{path} is not a JSON list trajectory")
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return path
