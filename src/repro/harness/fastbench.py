"""Fast-engine benchmark: reference vs fast wall-clock on the fig5a sweep.

The benchmark measures ``core.run()`` wall-clock for the *same* simulation
point on both engines — workload construction, oracle decoding, and
result bookkeeping are excluded from both sides, so the ratio isolates
the engine.  Each measured point also asserts bit-identical final
statistics, because a fast number from a wrong simulation is worthless.

Results append to a ``BENCH_fastpath.json`` trajectory (one record per
recorded sweep, newest last) so regressions of the fast path show up as
a falling ``aggregate_speedup`` across commits; the CI gate fails when
the measured aggregate drops below a pinned threshold (see
``benchmarks/bench_fastpath.py``).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.core.config import MMTConfig
from repro.pipeline.config import MachineConfig
from repro.pipeline.fast import resolve_engine
from repro.workloads.generator import build_workload
from repro.workloads.profiles import get_profile

#: The fig5a sweep: two hardware threads, Base plus every paper config.
FIG5A_THREADS = 2
FIG5A_CONFIGS = (
    MMTConfig.base,
    MMTConfig.mmt_f,
    MMTConfig.mmt_fx,
    MMTConfig.mmt_fxr,
    MMTConfig.limit,
)

#: Smoke subset used by the CI gate (full sweep: pass apps=None).
SMOKE_APPS = ("ammp", "mcf", "lu", "fft")

#: Minimum fast/reference aggregate speedup the CI gate enforces.  Pinned
#: well below the recorded trajectory (~2.9x on an otherwise-idle
#: machine) so shared-runner noise cannot flake the gate, while still
#: catching any change that de-optimises the fast loop outright.
PINNED_MIN_SPEEDUP = 1.8

DEFAULT_TRAJECTORY = Path(__file__).resolve().parents[3] / "BENCH_fastpath.json"


def _measure_point(app: str, config: MMTConfig, threads: int, scale: float,
                   specialize: bool = True):
    """One (app, config) point on both engines; returns the row dict.

    *specialize* selects whether the fast core consumes the static
    specialization manifests (the production default); the reference
    engine has no such knob.
    """
    build = build_workload(get_profile(app), threads, scale=scale)
    machine = MachineConfig(num_threads=threads)
    results = {}
    for engine in ("reference", "fast"):
        job = build.limit_job() if config.limit_identical else build.job()
        core_cls = resolve_engine(engine)
        if engine == "fast":
            core = core_cls(machine, config, job, strict=True,
                            specialize=specialize)
        else:
            core = core_cls(machine, config, job, strict=True)
        start = time.perf_counter()
        stats = core.run()
        wall = time.perf_counter() - start
        results[engine] = (wall, stats)
    ref_wall, ref_stats = results["reference"]
    fast_wall, fast_stats = results["fast"]
    if fast_stats.__dict__ != ref_stats.__dict__:
        raise AssertionError(
            f"{app}/{config.name}: fast engine diverged from reference — "
            f"benchmark aborted (a fast wrong answer is not a speedup)"
        )
    insts = ref_stats.committed_thread_insts
    return {
        "app": app,
        "config": config.name,
        "threads": threads,
        "committed_insts": insts,
        "cycles": ref_stats.cycles,
        "reference_wall_s": round(ref_wall, 4),
        "fast_wall_s": round(fast_wall, 4),
        "reference_ips": round(insts / ref_wall) if ref_wall > 0 else None,
        "fast_ips": round(insts / fast_wall) if fast_wall > 0 else None,
        "speedup": round(ref_wall / fast_wall, 3) if fast_wall > 0 else None,
    }


def run_fastpath_bench(
    apps=None, scale: float = 1.0, threads: int = FIG5A_THREADS,
    specialize: bool = True, progress=None,
) -> dict:
    """Measure the fig5a sweep on both engines; returns the record.

    The record carries per-point rows plus two summaries: the *aggregate*
    speedup (total reference wall over total fast wall — what a campaign
    actually saves) and the per-point min/max.
    """
    emit = progress if callable(progress) else (lambda line: None)
    apps = list(apps) if apps is not None else list(SMOKE_APPS)
    rows = []
    for app in apps:
        for factory in FIG5A_CONFIGS:
            row = _measure_point(app, factory(), threads, scale,
                                 specialize=specialize)
            rows.append(row)
            emit(
                f"{row['app']}/{row['config']}: "
                f"ref {row['reference_wall_s']}s, fast {row['fast_wall_s']}s "
                f"({row['speedup']}x)"
            )
    total_ref = sum(row["reference_wall_s"] for row in rows)
    total_fast = sum(row["fast_wall_s"] for row in rows)
    speedups = [row["speedup"] for row in rows if row["speedup"]]
    return {
        "bench": "fig5a-fastpath",
        "threads": threads,
        "scale": scale,
        "apps": apps,
        "specialize": specialize,
        "python": platform.python_version(),
        "aggregate_speedup": (
            round(total_ref / total_fast, 3) if total_fast > 0 else None
        ),
        "min_speedup": min(speedups) if speedups else None,
        "max_speedup": max(speedups) if speedups else None,
        "total_reference_wall_s": round(total_ref, 3),
        "total_fast_wall_s": round(total_fast, 3),
        "points": rows,
    }


#: Floor for the specialization on/off wall-clock ratio (off/on): the
#: manifests must never make the interpreted fast loop meaningfully
#: slower.  In pure Python the skipped guards are cheap compares, so the
#: measured ratio sits near 1.0 (the manifests' headline value is as the
#: front end for a compiled backend — see docs/specialization.md); the
#: floor catches a pathological regression, not a missed win.
MIN_SPECIALIZE_RATIO = 0.85


def run_specialize_bench(
    apps=None, scale: float = 1.0, threads: int = FIG5A_THREADS,
    repeats: int = 3, progress=None,
) -> dict:
    """Fast engine with vs without specialization on the fig5a sweep.

    Each point runs *repeats* on/off pairs on fresh cores from the same
    build, alternating which variant goes first so neither side always
    enjoys warm caches, and asserts bit-identical final statistics every
    pair (a specialization that changes the answer is a soundness bug,
    not a slow path).  Walls are best-of-*repeats*; ``ratio`` is
    off-best over on-best, so >1 means specialization pays.
    """
    emit = progress if callable(progress) else (lambda line: None)
    apps = list(apps) if apps is not None else list(SMOKE_APPS)
    machine = MachineConfig(num_threads=threads)
    fast_cls = resolve_engine("fast")
    rows = []
    for app in apps:
        build = build_workload(get_profile(app), threads, scale=scale)
        for factory in FIG5A_CONFIGS:
            config = factory()
            walls = {True: [], False: []}
            stats_by = {}
            for rep in range(repeats):
                order = (True, False) if rep % 2 == 0 else (False, True)
                for specialize in order:
                    job = (build.limit_job() if config.limit_identical
                           else build.job())
                    core = fast_cls(machine, config, job, strict=True,
                                    specialize=specialize)
                    start = time.perf_counter()
                    stats = core.run()
                    walls[specialize].append(time.perf_counter() - start)
                    stats_by[specialize] = stats
                if (stats_by[True].__dict__ != stats_by[False].__dict__):
                    raise AssertionError(
                        f"{app}/{config.name}: specialization changed the "
                        f"simulation — benchmark aborted"
                    )
            on_best = min(walls[True])
            off_best = min(walls[False])
            row = {
                "app": app,
                "config": config.name,
                "threads": threads,
                "committed_insts": stats_by[True].committed_thread_insts,
                "off_wall_s": round(off_best, 4),
                "on_wall_s": round(on_best, 4),
                "ratio": round(off_best / on_best, 3) if on_best > 0 else None,
            }
            rows.append(row)
            emit(
                f"{app}/{config.name}: off {row['off_wall_s']}s, "
                f"on {row['on_wall_s']}s ({row['ratio']}x)"
            )
    total_off = sum(row["off_wall_s"] for row in rows)
    total_on = sum(row["on_wall_s"] for row in rows)
    ratios = [row["ratio"] for row in rows if row["ratio"]]
    return {
        "bench": "fig5a-fastpath-specialize",
        "threads": threads,
        "scale": scale,
        "apps": apps,
        "repeats": repeats,
        "python": platform.python_version(),
        "aggregate_ratio": (
            round(total_off / total_on, 3) if total_on > 0 else None
        ),
        "min_ratio": min(ratios) if ratios else None,
        "max_ratio": max(ratios) if ratios else None,
        "total_off_wall_s": round(total_off, 3),
        "total_on_wall_s": round(total_on, 3),
        "points": rows,
    }


#: Maximum fast-loop slowdown the sampled-telemetry gate tolerates: a
#: SampledObserver with default-interval metrics must cost no more than
#: 10% of the unobserved fast loop (issue acceptance criterion).
MAX_SAMPLING_OVERHEAD = 1.10

#: Sampling interval the overhead bench measures (the trace default).
OVERHEAD_INTERVAL = 1000


def run_sampling_overhead_bench(
    app: str = "mcf",
    config: MMTConfig | None = None,
    threads: int = FIG5A_THREADS,
    scale: float = 1.0,
    interval: int = OVERHEAD_INTERVAL,
    repeats: int = 3,
    progress=None,
) -> dict:
    """Fast engine with vs without a :class:`SampledObserver` on one
    fig5a point; returns the record (newest-last trajectory material).

    Each repeat runs both variants on fresh cores from the same build and
    asserts bit-identical final statistics plus exact interval
    reconciliation — an overhead number from a perturbed simulation is
    worthless.  Walls are best-of-*repeats* to shed scheduler noise;
    ``overhead_ratio`` is sampled-best over plain-best.
    """
    from repro.obs import IntervalMetrics, SampledObserver

    emit = progress if callable(progress) else (lambda line: None)
    config = config or MMTConfig.mmt_fxr()
    build = build_workload(get_profile(app), threads, scale=scale)
    machine = MachineConfig(num_threads=threads)
    fast_cls = resolve_engine("fast")
    plain_walls, sampled_walls = [], []
    for _ in range(repeats):
        job = build.limit_job() if config.limit_identical else build.job()
        plain = fast_cls(machine, config, job, strict=True)
        start = time.perf_counter()
        plain_stats = plain.run()
        plain_walls.append(time.perf_counter() - start)

        job = build.limit_job() if config.limit_identical else build.job()
        metrics = IntervalMetrics(interval=interval)
        sampled = fast_cls(
            machine, config, job, strict=True,
            obs=SampledObserver(interval=metrics),
        )
        start = time.perf_counter()
        sampled_stats = sampled.run()
        sampled_walls.append(time.perf_counter() - start)

        if not sampled.ran_fast_loop:
            raise AssertionError(
                "sampled run fell back to the reference loop — the "
                "overhead bench measures nothing"
            )
        if sampled_stats.__dict__ != plain_stats.__dict__:
            raise AssertionError(
                f"{app}/{config.name}: sampling perturbed the simulation"
            )
        mismatches = metrics.reconcile(sampled_stats)
        if mismatches:
            raise AssertionError(
                f"{app}/{config.name}: interval sums failed to reconcile: "
                + "; ".join(mismatches)
            )
    plain_best = min(plain_walls)
    sampled_best = min(sampled_walls)
    ratio = round(sampled_best / plain_best, 4) if plain_best > 0 else None
    emit(
        f"{app}/{config.name}: plain {plain_best:.3f}s, "
        f"sampled {sampled_best:.3f}s (overhead {ratio}x)"
    )
    return {
        "bench": "fastpath-sampling-overhead",
        "app": app,
        "config": config.name,
        "threads": threads,
        "scale": scale,
        "interval": interval,
        "repeats": repeats,
        "python": platform.python_version(),
        "samples": (plain_stats.cycles + interval - 1) // interval,
        "plain_wall_s": round(plain_best, 4),
        "sampled_wall_s": round(sampled_best, 4),
        "overhead_ratio": ratio,
    }


def append_trajectory(record: dict, path=DEFAULT_TRAJECTORY) -> Path:
    """Append *record* to the JSON trajectory at *path* (a list)."""
    path = Path(path)
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text())
        if not isinstance(trajectory, list):
            raise ValueError(f"{path} is not a JSON list trajectory")
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return path
