"""Regenerators for every table and figure of the paper's evaluation.

Each function returns plain data structures (lists of dicts) so callers —
the benchmark harness, the examples, tests — can print, assert, or plot
them.  ``repro.harness.report`` renders them in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MMTConfig
from repro.core.sync import FetchMode
from repro.harness.campaign import run_campaign
from repro.harness.experiment import (
    CampaignJob,
    default_apps,
    default_engine,
    geomean,
    run_app,
    run_points,
    speedup_over_base,
)
from repro.pipeline.config import MachineConfig
from repro.power.budget import hardware_budget
from repro.profiling.divergence import divergence_histogram
from repro.profiling.sharing import analyze_job
from repro.profiling.tracing import capture_job_traces
from repro.workloads.profiles import get_profile

#: Thread count used for the motivation study (the paper profiles pairs).
PROFILE_CONTEXTS = 2


# ------------------------------------------------------------------ Figure 1
@dataclass(frozen=True)
class SharingPoint:
    """One profiling point of the Figure 1/2 motivation study."""

    app: str
    scale: float = 1.0

    def label(self) -> str:
        return f"{self.app}/sharing"


#: Memo of computed sharing rows, keyed by (app, scale).  Deterministic
#: (traces are seeded by app name), so campaign prefetch and the serial
#: path below fill it interchangeably.
_SHARING_ROWS: dict[tuple[str, float], dict] = {}


def sharing_row(point: SharingPoint, seed: int = 0) -> dict:
    """Campaign runner for one Figure 1 row (functional trace profiling).

    Registry workloads (engine-generated or ``trace:PATH`` replays) are
    accepted alongside paper apps; they have no paper reference columns,
    so those report as None.
    """
    del seed  # trace capture is deterministic per application
    from repro.harness.experiment import build_point

    try:
        profile = get_profile(point.app)
    except KeyError:
        profile = None  # registry workload: no paper reference numbers
    build = build_point(point.app, PROFILE_CONTEXTS, scale=point.scale)
    traces = capture_job_traces(build.job())
    sharing = analyze_job(traces)
    exec_frac = sharing.execute_identical_fraction
    fetch_frac = sharing.fetch_identical_fraction
    return {
        "app": point.app,
        "execute_identical": exec_frac,
        "fetch_identical_only": max(0.0, fetch_frac - exec_frac),
        "not_identical": max(0.0, 1.0 - fetch_frac),
        "paper_execute_identical": profile.fig1_exec if profile else None,
        "paper_fetch_identical": profile.fig1_fetch if profile else None,
        "_gaps": sharing.gaps,
    }


def fig1_sharing(apps=None, scale: float = 1.0) -> list[dict]:
    """Instruction-sharing breakdown per application (paper Figure 1)."""
    rows = []
    for app in apps or default_apps():
        memo = (app, scale)
        if memo not in _SHARING_ROWS:
            _SHARING_ROWS[memo] = sharing_row(SharingPoint(app, scale))
        rows.append(dict(_SHARING_ROWS[memo]))
    avg = {
        "app": "average",
        "execute_identical": sum(r["execute_identical"] for r in rows) / len(rows),
        "fetch_identical_only": sum(r["fetch_identical_only"] for r in rows)
        / len(rows),
        "not_identical": sum(r["not_identical"] for r in rows) / len(rows),
        "paper_execute_identical": 0.35,
        "paper_fetch_identical": 0.88,
        "_gaps": [],
    }
    rows.append(avg)
    return rows


# ------------------------------------------------------------------ Figure 2
def fig2_divergence(apps=None, scale: float = 1.0) -> list[dict]:
    """Divergent-path length-difference histogram (paper Figure 2)."""
    rows = []
    for row in fig1_sharing(apps, scale=scale):
        if row["app"] == "average":
            continue
        histogram = divergence_histogram(row["_gaps"])
        rows.append({"app": row["app"], **{f"<={b}": v for b, v in histogram.items()}})
    return rows


# ----------------------------------------------------------- Figures 5(a)/(c)
def fig5_speedups(
    threads: int, apps=None, scale: float = 1.0, machine: MachineConfig | None = None
) -> list[dict]:
    """Per-application speedups over same-thread-count Base (Fig 5(a)/(c))."""
    configs = [
        MMTConfig.mmt_f(),
        MMTConfig.mmt_fx(),
        MMTConfig.mmt_fxr(),
        MMTConfig.limit(),
    ]
    rows = []
    for app in apps or default_apps():
        row = {"app": app}
        for config in configs:
            row[config.name] = speedup_over_base(app, config, threads, machine, scale)
        rows.append(row)
    rows.append(
        {
            "app": "geomean",
            **{
                config.name: geomean(row[config.name] for row in rows)
                for config in configs
            },
        }
    )
    return rows


# ------------------------------------------------------------- Figure 5(b)
def fig5b_identified(threads: int = 2, apps=None, scale: float = 1.0) -> list[dict]:
    """Identified fetch/execute-identical fractions under MMT-FXR."""
    rows = []
    for app in apps or default_apps():
        result = run_app(app, MMTConfig.mmt_fxr(), threads, scale=scale)
        breakdown = result.stats.identified_breakdown()
        rows.append({"app": app, **breakdown})
    return rows


# ------------------------------------------------------------- Figure 5(d)
def fig5d_modes(threads: int = 2, apps=None, scale: float = 1.0) -> list[dict]:
    """Fetched-instruction breakdown by fetch mode under MMT-FXR."""
    rows = []
    for app in apps or default_apps():
        result = run_app(app, MMTConfig.mmt_fxr(), threads, scale=scale)
        modes = result.stats.mode_breakdown()
        rows.append(
            {
                "app": app,
                "merge": modes[FetchMode.MERGE.value],
                "detect": modes[FetchMode.DETECT.value],
                "catchup": modes[FetchMode.CATCHUP.value],
                "remerge_within_512": result.sync_stats.remerge_within(512),
            }
        )
    return rows


# ------------------------------------------------------------------ Figure 6
def fig6_energy(apps=None, scale: float = 1.0) -> list[dict]:
    """Energy per job, normalised to SMT with 2 threads (paper Figure 6).

    Four bars per application: SMT-2T, MMT-2T, SMT-4T, MMT-4T, each split
    into cache / MMT-overhead / other.  Multi-execution doubles the work
    when doubling threads, multi-threaded splits the same work, so energy
    is normalised *per job* (per committed thread-instruction).
    """
    rows = []
    for app in apps or default_apps():
        bars = {}
        reference = None
        for threads, config in [
            (2, MMTConfig.base()),
            (2, MMTConfig.mmt_fxr()),
            (4, MMTConfig.base()),
            (4, MMTConfig.mmt_fxr()),
        ]:
            result = run_app(app, config, threads, scale=scale)
            work = max(1, result.stats.committed_thread_insts)
            per_job = {
                "cache": result.energy.cache / work,
                "mmt_overhead": result.energy.mmt_overhead / work,
                "other": result.energy.other / work,
            }
            per_job["total"] = sum(per_job.values())
            label = f"{'SMT' if config.name == 'Base' else 'MMT'}-{threads}T"
            bars[label] = per_job
            if reference is None:
                reference = per_job["total"]
        for bar in bars.values():
            for key in ("cache", "mmt_overhead", "other", "total"):
                bar[key] /= reference
        rows.append({"app": app, **bars})
    means = {}
    for label in ("SMT-2T", "MMT-2T", "SMT-4T", "MMT-4T"):
        means[label] = {
            "total": geomean(row[label]["total"] for row in rows),
            "cache": 0.0,
            "mmt_overhead": 0.0,
            "other": 0.0,
        }
    rows.append({"app": "geomean", **means})
    return rows


# ------------------------------------------------------- Figures 7(a)/(c)
FHB_SIZES = (8, 16, 32, 64, 128)


def fig7a_fhb_speedup(
    sizes=FHB_SIZES, threads: int = 2, apps=None, scale: float = 1.0
) -> list[dict]:
    """Speedup (MMT-FXR over Base) as the FHB size varies (Fig 7(a))."""
    rows = []
    for app in apps or default_apps():
        row = {"app": app}
        for size in sizes:
            config = MMTConfig.mmt_fxr().with_fhb_size(size)
            row[size] = speedup_over_base(app, config, threads, scale=scale)
        rows.append(row)
    rows.append(
        {
            "app": "geomean",
            **{size: geomean(row[size] for row in rows) for size in sizes},
        }
    )
    return rows


def fig7c_fhb_modes(
    sizes=FHB_SIZES, threads: int = 2, apps=None, scale: float = 1.0
) -> list[dict]:
    """Fetch-mode breakdown as the FHB size varies (Fig 7(c))."""
    rows = []
    for app in apps or default_apps():
        for size in sizes:
            config = MMTConfig.mmt_fxr().with_fhb_size(size)
            result = run_app(app, config, threads, scale=scale)
            modes = result.stats.mode_breakdown()
            rows.append(
                {
                    "app": app,
                    "fhb_size": size,
                    "merge": modes[FetchMode.MERGE.value],
                    "detect": modes[FetchMode.DETECT.value],
                    "catchup": modes[FetchMode.CATCHUP.value],
                }
            )
    return rows


# ------------------------------------------------------------- Figure 7(b)
LDST_PORT_COUNTS = (2, 4, 6, 8, 12)


def fig7b_ports(
    ports=LDST_PORT_COUNTS, threads: int = 4, apps=None, scale: float = 1.0
) -> list[dict]:
    """Geomean speedup as load/store ports (and MSHRs) vary (Fig 7(b))."""
    apps = apps or default_apps()
    rows = []
    for count in ports:
        machine = MachineConfig(num_threads=threads).with_ldst_ports(count)
        speeds = [
            speedup_over_base(app, MMTConfig.mmt_fxr(), threads, machine, scale)
            for app in apps
        ]
        rows.append({"ldst_ports": count, "geomean_speedup": geomean(speeds)})
    return rows


# ------------------------------------------------------------- Figure 7(d)
FETCH_WIDTHS = (4, 8, 16, 32)


def fig7d_fetch_width(
    widths=FETCH_WIDTHS, threads: int = 4, apps=None, scale: float = 1.0
) -> list[dict]:
    """Geomean speedup as the fetch width varies (Fig 7(d))."""
    apps = apps or default_apps()
    rows = []
    for width in widths:
        machine = MachineConfig(num_threads=threads).with_fetch_width(width)
        speeds = [
            speedup_over_base(app, MMTConfig.mmt_fxr(), threads, machine, scale)
            for app in apps
        ]
        rows.append({"fetch_width": width, "geomean_speedup": geomean(speeds)})
    return rows


# -------------------------------------------------------------------- Tables
def table3_hardware() -> list[dict]:
    """The MMT hardware budget (paper Table 3)."""
    return [
        {
            "component": row.component,
            "description": row.description,
            "area": row.area,
            "delay": row.delay,
            "storage_bits": row.storage_bits,
        }
        for row in hardware_budget()
    ]


def table4_configuration(machine: MachineConfig | None = None) -> list[tuple[str, str]]:
    """The simulator configuration (paper Table 4)."""
    return (machine or MachineConfig()).table4_rows()


def table5_configurations() -> list[tuple[str, str]]:
    """The evaluated MMT configurations (paper Table 5)."""
    return MMTConfig.table5_rows()


# ------------------------------------------------- campaign prefetching
def figure_points(
    fig_id: str, apps=None, scale: float = 1.0
) -> list[CampaignJob]:
    """Every simulation point *fig_id* needs, as campaign jobs.

    Speedup figures include the Base runs their numerators divide by.
    Returns [] for figures that do not run the cycle-level simulator
    (fig1/fig2 profile functional traces; tables need no runs at all).
    """
    apps = list(apps or default_apps())
    points: list[CampaignJob] = []
    # Jobs ship to worker processes, so the session's default engine is
    # pinned onto each one; the serial memo keys then line up with what
    # the figure regenerators will ask for.
    engine = default_engine()

    def add(config, threads, machine=None):
        points.extend(
            CampaignJob(app, config, threads, machine=machine, scale=scale,
                        engine=engine)
            for app in apps
        )

    if fig_id in ("fig5a", "fig5c"):
        threads = 2 if fig_id == "fig5a" else 4
        for config in MMTConfig.all_paper_configs():
            add(config, threads)
    elif fig_id in ("fig5b", "fig5d"):
        add(MMTConfig.mmt_fxr(), 2)
    elif fig_id == "fig6":
        for threads in (2, 4):
            add(MMTConfig.base(), threads)
            add(MMTConfig.mmt_fxr(), threads)
    elif fig_id == "fig7a":
        add(MMTConfig.base(), 2)
        for size in FHB_SIZES:
            add(MMTConfig.mmt_fxr().with_fhb_size(size), 2)
    elif fig_id == "fig7c":
        for size in FHB_SIZES:
            add(MMTConfig.mmt_fxr().with_fhb_size(size), 2)
    elif fig_id == "fig7b":
        for count in LDST_PORT_COUNTS:
            machine = MachineConfig(num_threads=4).with_ldst_ports(count)
            add(MMTConfig.base(), 4, machine)
            add(MMTConfig.mmt_fxr(), 4, machine)
    elif fig_id == "fig7d":
        for width in FETCH_WIDTHS:
            machine = MachineConfig(num_threads=4).with_fetch_width(width)
            add(MMTConfig.base(), 4, machine)
            add(MMTConfig.mmt_fxr(), 4, machine)
    else:
        return []
    return points


def prefetch_figure(
    fig_id: str,
    apps=None,
    scale: float = 1.0,
    *,
    workers: int | None = None,
    cache=None,
    use_cache: bool = True,
    timeout: float | None = None,
    retries: int = 1,
    progress=None,
):
    """Run all of *fig_id*'s simulations as a parallel campaign.

    Successful results are seeded into the serial memo caches, so the
    figure regenerators afterwards reuse them without re-simulating.
    Returns the :class:`~repro.harness.campaign.CampaignResult` (or None
    for figures with nothing to prefetch).  Failed points are simply left
    to the serial path — prefetching is an accelerator, never a gate.
    """
    if fig_id in ("fig1", "fig2"):
        jobs = [
            SharingPoint(app, scale) for app in (apps or default_apps())
            if (app, scale) not in _SHARING_ROWS
        ]
        result = run_campaign(
            jobs, sharing_row, workers=workers, cache=cache,
            use_cache=use_cache, timeout=timeout, retries=retries,
            progress=progress,
        )
        for outcome in result.outcomes:
            if outcome.ok:
                _SHARING_ROWS[(outcome.job.app, outcome.job.scale)] = (
                    outcome.payload
                )
        return result
    points = figure_points(fig_id, apps=apps, scale=scale)
    if not points:
        return None
    return run_points(
        points, workers=workers, cache=cache, use_cache=use_cache,
        timeout=timeout, retries=retries, progress=progress,
    )
