"""``python -m repro`` — regenerate paper tables/figures from the shell."""

import sys

from repro.harness.cli import main

if __name__ == "__main__":
    sys.exit(main())
