"""The repro RISC ISA: opcodes, registers, instructions, programs, assembler."""

from repro.isa.assembler import AssemblerError, AssemblyError, assemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass, Opcode, op_class
from repro.isa.program import INST_BYTES, WORD_SIZE, Program
from repro.isa.registers import (
    FP_BASE,
    GP,
    NUM_ARCH_REGS,
    NUM_FP_REGS,
    NUM_INT_REGS,
    RA,
    SP,
    ZERO,
    fp_reg,
    parse_reg,
    reg_name,
)

__all__ = [
    "AssemblerError",
    "AssemblyError",
    "assemble",
    "Instruction",
    "OpClass",
    "Opcode",
    "op_class",
    "INST_BYTES",
    "WORD_SIZE",
    "Program",
    "FP_BASE",
    "GP",
    "NUM_ARCH_REGS",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "RA",
    "SP",
    "ZERO",
    "fp_reg",
    "parse_reg",
    "reg_name",
]
