"""Instruction opcodes and operation classes for the repro RISC ISA.

The ISA is a small load/store RISC machine: 32 integer registers, 16
floating-point registers, word-addressed memory (8-byte words addressed in
bytes), and a conventional set of ALU / FPU / memory / control operations.
It is deliberately close to the Alpha/MIPS-style ISAs targeted by
SimpleScalar, which the paper's infrastructure was built on.

Each opcode carries an :class:`OpClass` that the timing model uses to pick a
functional unit and latency, and a small set of boolean predicates
(:func:`is_branch`, :func:`is_load`, ...) used throughout the pipeline.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional-unit class of an operation (selects FU pool + latency)."""

    ALU = "alu"  # simple integer ops, 1 cycle
    IMUL = "imul"  # integer multiply
    IDIV = "idiv"  # integer divide / remainder
    FADD = "fadd"  # fp add/sub/compare/convert
    FMUL = "fmul"  # fp multiply
    FDIV = "fdiv"  # fp divide / sqrt
    LOAD = "load"  # memory read
    STORE = "store"  # memory write
    BRANCH = "branch"  # conditional branches
    JUMP = "jump"  # unconditional control flow
    SYS = "sys"  # HALT / NOP / TID and other special ops
    MSG = "msg"  # SEND / TRECV message-network operations


class Opcode(enum.Enum):
    """All opcodes of the repro ISA."""

    # Integer register-register ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SEQ = "seq"

    # Integer register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SLTI = "slti"
    LI = "li"  # load immediate (materialise a constant)

    # Floating point (operate on f-registers).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FNEG = "fneg"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FLI = "fli"  # fp load immediate
    FCVT = "fcvt"  # int reg -> fp reg
    FTOI = "ftoi"  # fp reg -> int reg (truncate)
    FSLT = "fslt"  # fp compare, int reg result
    FSEQ = "fseq"  # fp equality compare, int reg result

    # Memory. Integer loads/stores use int regs; FLW/FSW move fp regs.
    LW = "lw"
    SW = "sw"
    FLW = "flw"
    FSW = "fsw"

    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    J = "j"
    JAL = "jal"
    JR = "jr"

    # Message passing (the paper's third SPMD category, §3.1): SEND
    # appends a register value to a FIFO channel; TRECV polls a channel,
    # returning the oldest message or -1 when empty (blocking receives are
    # software spin loops over TRECV).
    SEND = "send"  # channel <- rs1, value <- rs2
    TRECV = "trecv"  # rd <- message or -1, channel <- rs1

    # Special.
    TID = "tid"  # rd <- hardware thread/context id
    NCTX = "nctx"  # rd <- number of contexts in the job
    NOP = "nop"
    HALT = "halt"
    # Software remerge hint (Thread Fusion [36] style): architecturally a
    # NOP; with MMTConfig.use_hints the fetch unit treats its PC as an
    # explicit rendezvous where diverged threads wait (bounded) to remerge.
    HINT = "hint"


#: Opcode -> functional-unit class.
OP_CLASS: dict[Opcode, OpClass] = {
    Opcode.ADD: OpClass.ALU,
    Opcode.SUB: OpClass.ALU,
    Opcode.MUL: OpClass.IMUL,
    Opcode.DIV: OpClass.IDIV,
    Opcode.REM: OpClass.IDIV,
    Opcode.AND: OpClass.ALU,
    Opcode.OR: OpClass.ALU,
    Opcode.XOR: OpClass.ALU,
    Opcode.SLL: OpClass.ALU,
    Opcode.SRL: OpClass.ALU,
    Opcode.SRA: OpClass.ALU,
    Opcode.SLT: OpClass.ALU,
    Opcode.SEQ: OpClass.ALU,
    Opcode.ADDI: OpClass.ALU,
    Opcode.ANDI: OpClass.ALU,
    Opcode.ORI: OpClass.ALU,
    Opcode.XORI: OpClass.ALU,
    Opcode.SLLI: OpClass.ALU,
    Opcode.SRLI: OpClass.ALU,
    Opcode.SLTI: OpClass.ALU,
    Opcode.LI: OpClass.ALU,
    Opcode.FADD: OpClass.FADD,
    Opcode.FSUB: OpClass.FADD,
    Opcode.FMUL: OpClass.FMUL,
    Opcode.FDIV: OpClass.FDIV,
    Opcode.FSQRT: OpClass.FDIV,
    Opcode.FNEG: OpClass.FADD,
    Opcode.FABS: OpClass.FADD,
    Opcode.FMIN: OpClass.FADD,
    Opcode.FMAX: OpClass.FADD,
    Opcode.FLI: OpClass.FADD,
    Opcode.FCVT: OpClass.FADD,
    Opcode.FTOI: OpClass.FADD,
    Opcode.FSLT: OpClass.FADD,
    Opcode.FSEQ: OpClass.FADD,
    Opcode.LW: OpClass.LOAD,
    Opcode.FLW: OpClass.LOAD,
    Opcode.SW: OpClass.STORE,
    Opcode.FSW: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH,
    Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH,
    Opcode.BGE: OpClass.BRANCH,
    Opcode.J: OpClass.JUMP,
    Opcode.JAL: OpClass.JUMP,
    Opcode.JR: OpClass.JUMP,
    Opcode.SEND: OpClass.MSG,
    Opcode.TRECV: OpClass.MSG,
    Opcode.TID: OpClass.SYS,
    Opcode.NCTX: OpClass.SYS,
    Opcode.NOP: OpClass.SYS,
    Opcode.HALT: OpClass.SYS,
    Opcode.HINT: OpClass.SYS,
}

#: Execution latency (cycles in a functional unit) per class.
DEFAULT_LATENCY: dict[OpClass, int] = {
    OpClass.ALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 12,
    OpClass.FADD: 2,
    OpClass.FMUL: 4,
    OpClass.FDIV: 12,
    OpClass.LOAD: 1,  # address generation; memory latency added by the LSQ
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.SYS: 1,
    OpClass.MSG: 3,  # network-hop latency for SEND/TRECV
}

_BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
_JUMP_OPS = frozenset({Opcode.J, Opcode.JAL, Opcode.JR})
_LOAD_OPS = frozenset({Opcode.LW, Opcode.FLW})
_STORE_OPS = frozenset({Opcode.SW, Opcode.FSW})


def op_class(op: Opcode) -> OpClass:
    """Return the functional-unit class for *op*."""
    return OP_CLASS[op]


def is_branch(op: Opcode) -> bool:
    """True for conditional branches."""
    return op in _BRANCH_OPS


def is_jump(op: Opcode) -> bool:
    """True for unconditional control flow (J/JAL/JR)."""
    return op in _JUMP_OPS


def is_control(op: Opcode) -> bool:
    """True for any instruction that can change the PC."""
    return op in _BRANCH_OPS or op in _JUMP_OPS


def is_load(op: Opcode) -> bool:
    """True for memory loads."""
    return op in _LOAD_OPS


def is_store(op: Opcode) -> bool:
    """True for memory stores."""
    return op in _STORE_OPS


def is_mem(op: Opcode) -> bool:
    """True for loads and stores."""
    return op in _LOAD_OPS or op in _STORE_OPS
