"""Architected register file layout.

The machine has 48 architected registers: 32 integer (``r0``–``r31``) and 16
floating point (``f0``–``f15``).  They live in a single flat architected
index space 0..47 so that structures like the Register Sharing Table (RST)
and the Register Alias Table (RAT) can be indexed uniformly — the paper's
Table 3 sizes the RST for ~50 architected registers for the same reason.

Conventions (used by the assembler's pseudo-ops and the workload builder):

====== ===== =======================================
name   index role
====== ===== =======================================
r0     0     hardwired zero
r1-r27       general purpose
sp/r28 28    stack pointer (differs across MT threads)
gp/r29 29    global data pointer
fp/r30 30    frame pointer
ra/r31 31    return address (written by JAL)
f0-f15 32-47 floating point
====== ===== =======================================
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 16
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

ZERO = 0
SP = 28
GP = 29
FP = 30
RA = 31

FP_BASE = NUM_INT_REGS  # architected index of f0

_ALIASES = {"sp": SP, "gp": GP, "fp": FP, "ra": RA, "zero": ZERO}


def is_int_reg(index: int) -> bool:
    """True if *index* names an integer architected register."""
    return 0 <= index < NUM_INT_REGS


def is_fp_reg(index: int) -> bool:
    """True if *index* names a floating-point architected register."""
    return FP_BASE <= index < NUM_ARCH_REGS


def fp_reg(n: int) -> int:
    """Architected index of floating-point register ``f<n>``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"no such fp register f{n}")
    return FP_BASE + n


def parse_reg(name: str) -> int:
    """Parse a register name (``r7``, ``f3``, ``sp``, ...) to its index."""
    name = name.strip().lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        idx = int(name[1:])
        if is_int_reg(idx):
            return idx
    if name.startswith("f") and name[1:].isdigit():
        n = int(name[1:])
        if 0 <= n < NUM_FP_REGS:
            return FP_BASE + n
    raise ValueError(f"unknown register name: {name!r}")


def reg_name(index: int) -> str:
    """Human-readable name of architected register *index*."""
    if is_int_reg(index):
        return f"r{index}"
    if is_fp_reg(index):
        return f"f{index - FP_BASE}"
    raise ValueError(f"register index out of range: {index}")
