"""Two-pass assembler for the repro ISA.

The assembler accepts a conventional textual assembly syntax and produces a
linked :class:`~repro.isa.program.Program`.  It exists mainly for examples,
tests, and hand-written kernels; the bulk workloads are generated through
:mod:`repro.workloads.dsl`, which builds instruction lists directly.

Syntax overview::

    # comment                 ; comment
    label:  addi r1, r1, -1
            bne  r1, r0, label
            lw   r2, 8(r5)          # displacement(base)
            li   r3, 0x40           # immediates: decimal, hex, char
            la   r4, table          # pseudo: load address of data symbol
            fadd f0, f1, f2
            halt

    .data 0x1000                    # switch to data mode at byte address
    table: .word 1 2 3 4            # place 8-byte words
    vec:   .float 1.5 -2.0
           .space 8                 # reserve N words (zero-filled)

Directives must appear after the code unless addresses are given explicitly;
data labels become *symbols* resolvable by ``la`` and by host code.
"""

from __future__ import annotations

import re

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE, Program
from repro.isa.registers import RA, parse_reg

_MEM_RE = re.compile(r"^(?P<disp>[-+]?(?:0x[0-9a-fA-F]+|\d+))?\((?P<base>\w+)\)$")

# op -> (operand pattern). Patterns: R=reg, I=imm, M=mem operand, L=label/target.
_FORMATS: dict[Opcode, str] = {
    Opcode.ADD: "RRR",
    Opcode.SUB: "RRR",
    Opcode.MUL: "RRR",
    Opcode.DIV: "RRR",
    Opcode.REM: "RRR",
    Opcode.AND: "RRR",
    Opcode.OR: "RRR",
    Opcode.XOR: "RRR",
    Opcode.SLL: "RRR",
    Opcode.SRL: "RRR",
    Opcode.SRA: "RRR",
    Opcode.SLT: "RRR",
    Opcode.SEQ: "RRR",
    Opcode.ADDI: "RRI",
    Opcode.ANDI: "RRI",
    Opcode.ORI: "RRI",
    Opcode.XORI: "RRI",
    Opcode.SLLI: "RRI",
    Opcode.SRLI: "RRI",
    Opcode.SLTI: "RRI",
    Opcode.LI: "RI",
    Opcode.FADD: "RRR",
    Opcode.FSUB: "RRR",
    Opcode.FMUL: "RRR",
    Opcode.FDIV: "RRR",
    Opcode.FSQRT: "RR",
    Opcode.FNEG: "RR",
    Opcode.FABS: "RR",
    Opcode.FMIN: "RRR",
    Opcode.FMAX: "RRR",
    Opcode.FLI: "RI",
    Opcode.FCVT: "RR",
    Opcode.FTOI: "RR",
    Opcode.FSLT: "RRR",
    Opcode.FSEQ: "RRR",
    Opcode.LW: "RM",
    Opcode.FLW: "RM",
    Opcode.SW: "RM",  # sw value, disp(base)
    Opcode.FSW: "RM",
    Opcode.BEQ: "RRL",
    Opcode.BNE: "RRL",
    Opcode.BLT: "RRL",
    Opcode.BGE: "RRL",
    Opcode.J: "L",
    Opcode.JAL: "L",
    Opcode.JR: "R",
    Opcode.SEND: "RR",
    Opcode.TRECV: "RR",
    Opcode.TID: "R",
    Opcode.NCTX: "R",
    Opcode.NOP: "",
    Opcode.HALT: "",
    Opcode.HINT: "",
}


class AssemblerError(ValueError):
    """Raised on malformed assembly input, with line context."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


class AssemblyError(AssemblerError):
    """A symbol-resolution failure: undefined or duplicated label.

    Carries the offending ``symbol`` in addition to the line number so
    callers (and tests) can react structurally instead of parsing the
    message.
    """

    def __init__(self, lineno: int, symbol: str, message: str) -> None:
        super().__init__(lineno, message)
        self.symbol = symbol


def _parse_int(text: str, lineno: int) -> int:
    text = text.strip()
    lowered = text.lower()
    try:
        if lowered.startswith("0x") or lowered.startswith("-0x"):
            return int(text, 16)
        if lowered.startswith("0b") or lowered.startswith("-0b"):
            return int(text, 2)
        return int(text, 10)
    except ValueError:
        raise AssemblerError(lineno, f"bad integer literal {text!r}") from None


def _parse_number(text: str, lineno: int) -> int | float:
    text = text.strip()
    if "." in text or "e" in text.lower() and not text.lower().startswith("0x"):
        try:
            return float(text)
        except ValueError:
            raise AssemblerError(lineno, f"bad float literal {text!r}") from None
    return _parse_int(text, lineno)


def _strip(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


class _Pending:
    """A code line awaiting label resolution in pass two."""

    __slots__ = ("lineno", "mnemonic", "operands")

    def __init__(self, lineno: int, mnemonic: str, operands: list[str]) -> None:
        self.lineno = lineno
        self.mnemonic = mnemonic
        self.operands = operands


def assemble(source: str, name: str = "program") -> Program:
    """Assemble *source* text into a linked :class:`Program`."""
    labels: dict[str, int] = {}
    symbols: dict[str, int] = {}
    data: dict[int, int | float] = {}
    pending: list[_Pending] = []
    in_data = False
    data_cursor = 0

    # Pass one: collect labels/symbols, data image, and raw code lines.
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        if not line:
            continue
        while True:
            match = re.match(r"^(\w+):\s*", line)
            if not match:
                break
            label = match.group(1)
            if label in labels or label in symbols:
                raise AssemblyError(lineno, label, f"duplicate label {label!r}")
            if in_data:
                symbols[label] = data_cursor
            else:
                labels[label] = len(pending)
            line = line[match.end():]
        if not line:
            continue

        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".data":
                if len(parts) != 2:
                    raise AssemblerError(lineno, ".data requires an address")
                in_data = True
                data_cursor = _parse_int(parts[1], lineno)
                if data_cursor % WORD_SIZE:
                    raise AssemblerError(lineno, ".data address must be word aligned")
            elif directive == ".word":
                if not in_data:
                    raise AssemblerError(lineno, ".word outside .data section")
                for token in parts[1:]:
                    data[data_cursor] = _parse_int(token, lineno)
                    data_cursor += WORD_SIZE
            elif directive == ".float":
                if not in_data:
                    raise AssemblerError(lineno, ".float outside .data section")
                for token in parts[1:]:
                    data[data_cursor] = float(token)
                    data_cursor += WORD_SIZE
            elif directive == ".space":
                if not in_data:
                    raise AssemblerError(lineno, ".space outside .data section")
                count = _parse_int(parts[1], lineno)
                for _ in range(count):
                    data[data_cursor] = 0
                    data_cursor += WORD_SIZE
            else:
                raise AssemblerError(lineno, f"unknown directive {directive!r}")
            continue

        if in_data:
            raise AssemblerError(lineno, "instruction inside .data section")
        mnemonic, _, rest = line.partition(" ")
        operands = [tok.strip() for tok in rest.split(",") if tok.strip()] if rest else []
        pending.append(_Pending(lineno, mnemonic.lower(), operands))

    # Pass two: encode instructions with labels resolved.
    instructions = [_encode(entry, labels, symbols) for entry in pending]
    return Program(
        instructions, labels=labels, data=data, symbols=symbols, name=name
    )


def _resolve_imm(
    token: str, lineno: int, symbols: dict[str, int]
) -> int | float:
    if token in symbols:
        return symbols[token]
    return _parse_number(token, lineno)


def _encode(
    entry: _Pending, labels: dict[str, int], symbols: dict[str, int]
) -> Instruction:
    lineno, mnemonic, operands = entry.lineno, entry.mnemonic, entry.operands

    # Pseudo-instructions.
    if mnemonic == "la":
        if len(operands) != 2:
            raise AssemblerError(lineno, "la expects: la rX, data_symbol")
        if operands[1] not in symbols:
            raise AssemblyError(
                lineno, operands[1], f"undefined data symbol {operands[1]!r}"
            )
        return Instruction(Opcode.LI, rd=parse_reg(operands[0]), imm=symbols[operands[1]])
    if mnemonic == "mv":
        if len(operands) != 2:
            raise AssemblerError(lineno, "mv expects: mv rX, rY")
        return Instruction(
            Opcode.ADDI, rd=parse_reg(operands[0]), rs1=parse_reg(operands[1]), imm=0
        )
    if mnemonic == "call":
        if len(operands) != 1:
            raise AssemblerError(lineno, "call expects a code label")
        if operands[0] not in labels:
            raise AssemblyError(
                lineno, operands[0], f"undefined label {operands[0]!r}"
            )
        return Instruction(Opcode.JAL, rd=RA, target=labels[operands[0]])
    if mnemonic == "ret":
        return Instruction(Opcode.JR, rs1=RA)

    try:
        op = Opcode(mnemonic)
    except ValueError:
        raise AssemblerError(lineno, f"unknown mnemonic {mnemonic!r}") from None
    fmt = _FORMATS[op]
    if op in (Opcode.J, Opcode.JAL):
        if len(operands) != 1:
            raise AssemblerError(lineno, f"{mnemonic} expects a code label")
        if operands[0] not in labels:
            raise AssemblyError(
                lineno, operands[0], f"undefined label {operands[0]!r}"
            )
        rd = RA if op is Opcode.JAL else None
        return Instruction(op, rd=rd, target=labels[operands[0]])

    if len(operands) != len(fmt):
        raise AssemblerError(
            lineno, f"{mnemonic} expects {len(fmt)} operands, got {len(operands)}"
        )

    rd = rs1 = rs2 = None
    imm: int | float | None = None
    target = None
    regs: list[int] = []
    for kind, token in zip(fmt, operands):
        if kind == "R":
            regs.append(parse_reg(token))
        elif kind == "I":
            imm = _resolve_imm(token, lineno, symbols)
        elif kind == "M":
            match = _MEM_RE.match(token.replace(" ", ""))
            if not match:
                raise AssemblerError(lineno, f"bad memory operand {token!r}")
            imm = _parse_int(match.group("disp") or "0", lineno)
            regs.append(parse_reg(match.group("base")))
        elif kind == "L":
            if token not in labels:
                raise AssemblyError(lineno, token, f"undefined label {token!r}")
            target = labels[token]

    if op in (Opcode.SW, Opcode.FSW):
        # sw value, disp(base): value and base are both sources.
        rs2, rs1 = regs[0], regs[1]
    elif op is Opcode.SEND:
        # send channel, value: both operands are sources.
        rs1, rs2 = regs[0], regs[1]
    elif op is Opcode.TRECV:
        # trecv rd, channel.
        rd, rs1 = regs[0], regs[1]
    elif op.value in ("beq", "bne", "blt", "bge"):
        rs1, rs2 = regs[0], regs[1]
    elif op is Opcode.JR:
        rs1 = regs[0]
    else:
        if regs:
            rd = regs[0]
        if len(regs) > 1:
            rs1 = regs[1]
        if len(regs) > 2:
            rs2 = regs[2]
    return Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target)
