"""Static instruction representation.

An :class:`Instruction` is one decoded static instruction of a program.
Source and destination architected registers are precomputed at construction
so that the hot pipeline loops never re-derive them.

PCs are instruction indices (the I-cache model multiplies by 4 to obtain a
byte address).  Branch/jump targets are therefore instruction indices too;
the assembler resolves labels into the ``target`` field.
"""

from __future__ import annotations

from repro.isa.opcodes import (
    OpClass,
    Opcode,
    is_branch,
    is_control,
    is_jump,
    is_load,
    is_mem,
    is_store,
    op_class,
)
from repro.isa.registers import ZERO, reg_name


class Instruction:
    """One static instruction.

    Parameters mirror a classic three-operand RISC encoding:

    * ``rd`` — destination architected register (or ``None``).
    * ``rs1``/``rs2`` — source architected registers (or ``None``).
    * ``imm`` — immediate (ALU immediate, memory displacement, LI constant).
    * ``target`` — control-flow target as an instruction index.
    """

    __slots__ = (
        "op",
        "rd",
        "rs1",
        "rs2",
        "imm",
        "target",
        "klass",
        "srcs",
        "dst",
        "is_branch",
        "is_jump",
        "is_control",
        "is_load",
        "is_store",
        "is_mem",
    )

    def __init__(
        self,
        op: Opcode,
        rd: int | None = None,
        rs1: int | None = None,
        rs2: int | None = None,
        imm: int | float | None = None,
        target: int | None = None,
    ) -> None:
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        self.klass: OpClass = op_class(op)
        self.is_branch = is_branch(op)
        self.is_jump = is_jump(op)
        self.is_control = is_control(op)
        self.is_load = is_load(op)
        self.is_store = is_store(op)
        self.is_mem = is_mem(op)

        srcs = []
        if rs1 is not None and rs1 != ZERO:
            srcs.append(rs1)
        if rs2 is not None and rs2 != ZERO and rs2 != rs1:
            srcs.append(rs2)
        # Reads of r0 are constant and never create dependences, so they are
        # dropped from the source list (they also never split a merged
        # instruction: the zero register trivially holds identical values).
        self.srcs: tuple[int, ...] = tuple(srcs)
        # Writes to r0 are discarded.
        self.dst: int | None = rd if (rd is not None and rd != ZERO) else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.rd is not None:
            parts.append(reg_name(self.rd))
        if self.rs1 is not None:
            parts.append(reg_name(self.rs1))
        if self.rs2 is not None:
            parts.append(reg_name(self.rs2))
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return f"<{' '.join(parts)}>"
