"""Program images.

A :class:`Program` is the linked output of the assembler (or of the workload
builder DSL): a flat list of :class:`~repro.isa.instruction.Instruction`
objects, resolved code labels, an initial data image, and data symbols.

The data image maps byte addresses (multiples of :data:`WORD_SIZE`) to
values; the memory model is value-level, one Python scalar per 8-byte word.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping

from repro.isa.instruction import Instruction

#: Bytes per memory word; all loads/stores are word aligned.
WORD_SIZE = 8

#: Bytes per instruction slot for I-cache address purposes.
INST_BYTES = 4


class Program:
    """An executable program image."""

    def __init__(
        self,
        instructions: Iterable[Instruction],
        labels: Mapping[str, int] | None = None,
        data: Mapping[int, int | float] | None = None,
        symbols: Mapping[str, int] | None = None,
        entry: int = 0,
        name: str = "program",
    ) -> None:
        self.instructions: list[Instruction] = list(instructions)
        self.labels: dict[str, int] = dict(labels or {})
        self.data: dict[int, int | float] = dict(data or {})
        self.symbols: dict[str, int] = dict(symbols or {})
        self.entry = entry
        self.name = name
        self._digest: str | None = None
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for pc, inst in enumerate(self.instructions):
            if inst.target is not None and not 0 <= inst.target < n:
                raise ValueError(
                    f"{self.name}: instruction {pc} ({inst!r}) targets "
                    f"{inst.target}, outside program of {n} instructions"
                )
        for addr in self.data:
            if addr % WORD_SIZE != 0:
                raise ValueError(f"{self.name}: unaligned data address {addr:#x}")
        if self.instructions and not 0 <= self.entry < n:
            raise ValueError(f"{self.name}: entry {self.entry} out of range")

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def label(self, name: str) -> int:
        """PC of code label *name*."""
        return self.labels[name]

    def symbol(self, name: str) -> int:
        """Byte address of data symbol *name*."""
        return self.symbols[name]

    def digest(self) -> str:
        """Content hash of the full image (code, data, entry).

        Two programs with the same digest are behaviourally identical, so
        per-program artefacts (lint verdicts, analysis reports) can be
        content-addressed on it, independent of the program *name*.

        The hash is computed once and cached: every consumer that keys on
        it (lint gate, oracle memo, specialization manifests, campaign
        cache) treats the image as immutable once built, so mutating a
        program after its first ``digest()`` call is already a
        content-addressing violation.
        """
        if self._digest is not None:
            return self._digest
        h = hashlib.sha256()
        for inst in self.instructions:
            h.update(
                repr(
                    (inst.op.value, inst.rd, inst.rs1, inst.rs2, inst.imm, inst.target)
                ).encode()
            )
        h.update(repr(sorted(self.data.items())).encode())
        h.update(repr(self.entry).encode())
        self._digest = h.hexdigest()
        return self._digest

    def with_data(self, extra: Mapping[int, int | float]) -> "Program":
        """Return a copy of this program with *extra* merged into the data image.

        Used by multi-execution workloads to stamp per-instance input values
        into otherwise identical program images.
        """
        data = dict(self.data)
        data.update(extra)
        return Program(
            self.instructions,
            labels=self.labels,
            data=data,
            symbols=self.symbols,
            entry=self.entry,
            name=self.name,
        )
