"""Physical register file with reference-counted free list.

A physical register may be mapped by several (thread, architected-register)
RAT entries at once — that is exactly how MMT shares one execution result
between threads.  A register is freed when its last mapping claim dies
*and* no in-flight instruction still lists it as a source:

* a mapping claim is created per thread at rename (or at machine reset for
  the initial architectural state) and dies when the overwriting
  instruction for that (thread, register) commits, or when the claim is
  undone by a squash;
* source claims are taken at rename and released when the consumer commits
  or is squashed.
"""

from __future__ import annotations


class OutOfPhysRegs(RuntimeError):
    """No free physical registers (rename must stall before this is raised)."""


class PhysRegFile:
    """Values, ready bits, and reference counts for physical registers."""

    def __init__(self, num_regs: int) -> None:
        self.num_regs = num_regs
        self.value: list = [0] * num_regs
        self.ready: list[bool] = [True] * num_regs
        self._map_refs = [0] * num_regs
        self._src_refs = [0] * num_regs
        self._free: list[int] = list(range(num_regs - 1, -1, -1))
        self.allocations = 0
        self.high_water = 0

    # ------------------------------------------------------------ allocation
    def free_count(self) -> int:
        return len(self._free)

    def alloc(self, map_claims: int) -> int:
        """Allocate a register with *map_claims* initial mapping claims."""
        if not self._free:
            raise OutOfPhysRegs("physical register file exhausted")
        preg = self._free.pop()  # simlint: ignore — free list is a list
        self._map_refs[preg] = map_claims
        self._src_refs[preg] = 0
        self.ready[preg] = False
        self.value[preg] = None
        self.allocations += 1
        in_use = self.num_regs - len(self._free)
        if in_use > self.high_water:
            self.high_water = in_use
        return preg

    def _maybe_free(self, preg: int) -> None:
        if self._map_refs[preg] == 0 and self._src_refs[preg] == 0:
            self._free.append(preg)

    # ------------------------------------------------------------ refcounting
    def add_map_claim(self, preg: int) -> None:
        """A new (thread, arch reg) mapping now references *preg*."""
        self._map_refs[preg] += 1

    def drop_map_claim(self, preg: int) -> None:
        """A mapping claim on *preg* died (overwriter committed, or squash)."""
        self._map_refs[preg] -= 1
        if self._map_refs[preg] < 0:
            raise RuntimeError(f"negative map refcount on p{preg}")
        self._maybe_free(preg)

    def add_src_claim(self, preg: int) -> None:
        """An in-flight consumer references *preg* as a source."""
        self._src_refs[preg] += 1

    def drop_src_claim(self, preg: int) -> None:
        """A consumer of *preg* committed or was squashed."""
        self._src_refs[preg] -= 1
        if self._src_refs[preg] < 0:
            raise RuntimeError(f"negative source refcount on p{preg}")
        self._maybe_free(preg)

    # ----------------------------------------------------------------- values
    def write(self, preg: int, value) -> None:
        """Write back a result and mark the register ready."""
        self.value[preg] = value
        self.ready[preg] = True

    def set_initial(self, preg: int, value) -> None:
        """Install an initial architectural value (machine reset)."""
        self.value[preg] = value
        self.ready[preg] = True

    def refs(self, preg: int) -> tuple[int, int]:
        """(map_refs, src_refs) — for tests and invariant checks."""
        return self._map_refs[preg], self._src_refs[preg]
