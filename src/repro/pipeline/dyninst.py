"""Dynamic (in-flight) instructions."""

from __future__ import annotations

import enum

from repro.core.itid import popcount, threads_of
from repro.core.sync import FetchMode
from repro.func.executor import Executed
from repro.isa.instruction import Instruction


class InstState(enum.Enum):
    """Lifecycle of a dynamic instruction in the window."""

    DECODED = "decoded"  # in the decode buffer, pre-split/rename
    WAITING = "waiting"  # in the issue queue, sources not all ready
    ISSUED = "issued"  # sent to a functional unit
    WAITING_MEM = "waiting_mem"  # load waiting for LSQ/port/MSHR/forwarding
    DONE = "done"  # result written back
    COMMITTED = "committed"


class DynInst:
    """One instruction-window entry.

    A DynInst may be owned by several threads (``itid``): it then occupies a
    single slot in every pipeline structure and, unless split, executes once
    for all owners.  ``execs`` maps each owning thread to its functional
    oracle record, carrying the true operand values, result, memory address,
    and next PC for that thread.

    Deliberately *not* ``__slots__``: the fast engine initialises entries by
    installing a prototype ``__dict__`` copy, which needs a plain instance
    dict.
    """

    def __init__(
        self,
        seq: int,
        pc: int,
        inst: Instruction,
        itid: int,
        execs: dict[int, Executed],
        fetch_mode: FetchMode,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.itid = itid
        self.execs = execs
        self.fetch_mode = fetch_mode
        #: Number of threads the instruction was fetched for (before splits).
        self.fetch_merged_width = popcount(itid)
        self.state = InstState.DECODED
        #: Physical source registers, aligned with ``inst.srcs``.
        self.psrcs: list[int] = []
        #: Physical destination (merged case) or None.
        self.pdst: int | None = None
        #: Per-thread destinations after an LVIP-triggered split, else None.
        self.pdst_by_tid: dict[int, int] | None = None
        #: Rename undo log: tid -> previous physical mapping of inst.dst.
        self.prev_map: dict[int, int] = {}
        #: True when the splitter kept this merged only thanks to RST bits
        #: that were set by commit-time register merging (Figure 5(b)).
        self.merged_via_regmerge = False
        #: True when the instruction executes once for >=2 threads.
        self.is_exec_merged = False
        self.complete_cycle: int | None = None
        self.pred_taken: bool | None = None
        self.pred_target: int | None = None
        self.mispredicted = False
        self.lvip_predicted_identical: bool | None = None
        #: Per-thread outstanding memory accesses (ME loads/stores split).
        self.mem_pending: dict[int, int] | None = None
        self.mem_done_count = 0
        self.store_committed_count = 0
        self.lsq_index: int | None = None
        self.halt = inst.op.value == "halt"
        #: Set when every owning thread has been squashed away.
        self.dead = False
        #: Set when this merged ME load's LVIP verification failed.
        self.lvip_mispredicted = False

    # --------------------------------------------------------------- helpers
    @property
    def num_threads(self) -> int:
        return popcount(self.itid)

    def threads(self) -> list[int]:
        return threads_of(self.itid)

    def leader(self) -> int:
        return min(self.execs)

    def any_exec(self) -> Executed:
        """An arbitrary owning thread's oracle record (they agree on the
        static instruction; values may differ per thread)."""
        return self.execs[min(self.execs)]

    def dest_phys_for(self, tid: int) -> int | None:
        """Physical destination register for thread *tid*."""
        if self.pdst_by_tid is not None:
            return self.pdst_by_tid.get(tid, self.pdst)
        return self.pdst

    def result_for(self, tid: int):
        """The architectural result value for thread *tid*."""
        return self.execs[tid].result

    def clone_for(self, eid: int) -> "DynInst":
        """A split piece of this fetched instruction owning only *eid*.

        The clone keeps the fetch sequence number and mode; per-thread
        uniqueness is preserved because split pieces partition the ITID.
        """
        execs = {t: self.execs[t] for t in threads_of(eid)}
        piece = DynInst(self.seq, self.pc, self.inst, eid, execs, self.fetch_mode)
        piece.fetch_merged_width = self.fetch_merged_width
        piece.pred_taken = self.pred_taken
        piece.pred_target = self.pred_target
        piece.mispredicted = self.mispredicted
        return piece

    def drop_thread(self, tid: int) -> None:
        """Remove *tid* from this instruction's ownership (squash path)."""
        self.itid &= ~(1 << tid)
        self.execs.pop(tid, None)
        if self.pdst_by_tid is not None:
            self.pdst_by_tid.pop(tid, None)
        if self.mem_pending is not None:
            self.mem_pending.pop(tid, None)
            if not self.mem_pending and self.itid:
                # The unit-owning thread left but others remain (merged MT
                # load): restart the access under the new leader.
                new_leader = (self.itid & -self.itid).bit_length() - 1
                self.mem_pending[new_leader] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DynInst #{self.seq} pc={self.pc} itid={self.itid:04b} "
            f"{self.inst.op.value} {self.state.value}>"
        )
