"""The declared fast/reference engine boundary.

:class:`~repro.pipeline.fast.FastSMTCore` replicates the reference
stages of :meth:`SMTCore.step` inside one inlined loop and *delegates*
the rare, divergence-sensitive paths back to the reference
implementation.  This module is the machine-readable statement of that
contract: which reference methods the fast loop is allowed to call
instead of replicating, which state paths only the fast engine writes,
and how the two engines' calls into opaque components correspond.

``repro selfcheck`` (:mod:`repro.analysis.host.driftcheck`) enforces the
spec both ways: a reference-stage state write that is neither replicated
in the fast loop nor reachable through a delegation listed here is drift
(DRIFT001), a fast call into reference code *not* listed here is a
boundary bypass (DRIFT003), and an entry here that no longer matches the
source is staleness (DRIFT005).  Keep this file in sync with
``docs/fast-path.md``'s fallback-rule section.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DelegationPoint:
    """One reference entry point the fast loop may call.

    ``covers`` says whether the writes reachable through the target
    count as fast-path coverage for the drift check.  The whole-run
    fallback (``SMTCore.run``) is declared so calling it is not a
    boundary bypass, but it must **not** cover anything: it only runs
    when the fast loop is abandoned entirely, so counting it would let
    every dropped fast-loop effect hide behind the fallback.
    """

    target: str  # "self.<method>" or "<Class>.<method>" as called
    reason: str
    covers: bool = True


#: Reference methods the fast loop calls instead of replicating.  Every
#: state path these reach counts as covered for the drift check.
DELEGATIONS: tuple[DelegationPoint, ...] = (
    DelegationPoint(
        "self._split",
        "rename-time group splitting: divergence bookkeeping and RST "
        "taint propagation are rare and subtle",
    ),
    DelegationPoint(
        "self._handle_control",
        "control instructions: prediction, RAS, divergence detection, "
        "and the sync-FSM transitions",
    ),
    DelegationPoint(
        "self._handle_hint",
        "software hint park/release of fetch groups",
    ),
    DelegationPoint(
        "self._verify_lvip",
        "LVIP verification: mispredict squash, per-class register "
        "splitting, RST pair clearing",
    ),
    DelegationPoint(
        "self._final_checks",
        "end-of-run invariant sweep, shared with the reference engine",
    ),
    DelegationPoint(
        "SMTCore.run",
        "full reference-loop fallback when a non-fast-capable observer "
        "is attached",
        covers=False,
    ),
)

#: State paths the fast loop must replicate **itself**, even though the
#: declared delegations also reach them.  The delegations touch these
#: only on rare paths (splits, mispredicts, control); the per-group
#: hot-path update lives in the fast loop, so losing the inline write is
#: drift that path-level delegation coverage would otherwise mask.
REPLICATED_PATHS: dict[str, str] = {
    "rst._bits": "per-group RST sharing-word update at rename",
    "rst._taint": "taint propagation alongside every sharing update",
    "rst.updates": "RST update counter (sharing telemetry)",
    "lvip.predictions": "per-load LVIP prediction counter at rename",
    "lvip.predicted_identical": "per-load identical-prediction counter",
    "lvip.site_checks": "per-site LVIP check counter at verification",
}

#: State paths only the fast engine writes (its private bookkeeping).
#: Anything else the fast loop writes must also be written by a
#: reference stage.
FAST_ONLY_PATHS: dict[str, str] = {
    "_pos": "cursor into the pre-decoded functional record stream",
    "ran_fast_loop": "telemetry flag proving the fast loop was used",
    "trace": "optional per-cycle fetch/commit trace sink",
    "obs.now": "keeps flight-recorder timestamps current in-loop",
    "paranoid_checks": (
        "count of passed REPRO_SPECIALIZE_PARANOID rare-path assertions"
    ),
}

#: Opaque-component calls the fast loop makes through a different entry
#: point than the reference: reference callee -> fast callees that
#: implement it.
CALL_REPLICATIONS: dict[str, tuple[str, ...]] = {
    # The reference ticks the whole hierarchy; the fast loop hoists the
    # MSHR and ticks it directly (the only per-cycle hierarchy work).
    "hierarchy.tick": ("hierarchy.mshr.tick",),
}

#: Component roots whose opaque calls are matched call-for-call between
#: the engines (their source is outside the analyzed module set).
COMPONENT_CALL_ROOTS: tuple[str, ...] = (
    "hierarchy",
    "bpred",
    "btb",
    "oracles",
    "trace_model",
)

#: Section markers inside ``FastSMTCore._run_fast``: stage name -> the
#: text of the ``# ---- <text>`` banner that opens its inlined section.
#: The drift check requires the banners to appear in reference stage
#: order and each stage's distinctive writes to land in its own section.
STAGE_SECTION_MARKERS: dict[str, str] = {
    "commit_stage": "commit",
    "writeback_stage": "writeback",
    "lsq.process_loads": "LSQ load phase",
    "issue_stage": "issue",
    "rename_stage": "rename",
    "fetch_stage": "fetch",
}
