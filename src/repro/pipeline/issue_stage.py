"""Issue, execute, and writeback.

Issue selects ready instructions from the issue queue oldest-first, bounded
by the issue width and the ALU/FPU pools (fully pipelined; latency per
operation class).  Loads issue their address generation, then hand over to
the LSQ's memory phase; everything else completes after its FU latency.

Writeback enforces the repository's core correctness invariant: an
instruction executed once for several threads must produce the per-thread
oracle's value for *every* owning thread.  Source operands are likewise
checked against the oracle at issue.  Any bug in the RST, splitter, LVIP,
or register-merging machinery trips :class:`SimulationInvariantError`.

Merged multi-execution loads verify their LVIP prediction here: when the
per-thread accesses return different values, the disagreeing threads are
squashed back to the load (paper §4.2.5) and the load's destination is
split into per-value-class physical registers.
"""

from __future__ import annotations

from repro.core.itid import first_thread, threads_of
from repro.core.regmerge import values_equal
from repro.isa.opcodes import DEFAULT_LATENCY, OpClass
from repro.obs.events import EventKind
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.squash import squash_thread

_FPU_CLASSES = (OpClass.FADD, OpClass.FMUL, OpClass.FDIV)


class SimulationInvariantError(RuntimeError):
    """The detailed machine's values diverged from the functional oracle."""


class IssueStageMixin:
    """Issue/execute/writeback logic for :class:`~repro.pipeline.smt.SMTCore`."""

    # ----------------------------------------------------------------- issue
    def issue_stage(self) -> None:
        """Issue ready instructions oldest-first, bounded by issue width
        and ALU/FPU slots, scheduling completion/agen wakeups.

        Effects:
            writes: _agen_events, _complete_events, iq, stats
        """
        cfg = self.config
        alu_slots = cfg.num_alu
        fpu_slots = cfg.num_fpu
        issued = 0
        ready = self.regfile.ready
        tracing = self.obs.tracing
        for di in list(self.iq):
            if issued >= cfg.issue_width:
                break
            if di.dead:
                self.iq.remove(di)
                continue
            if not all(ready[p] for p in di.psrcs):
                continue
            is_fpu = di.inst.klass in _FPU_CLASSES
            if is_fpu:
                if fpu_slots <= 0:
                    self.stats.fu_contention_stalls += 1
                    continue
                fpu_slots -= 1
            else:
                if alu_slots <= 0:
                    self.stats.fu_contention_stalls += 1
                    continue
                alu_slots -= 1
            self.iq.remove(di)
            if self.strict:
                self._verify_sources(di)
            self.stats.regfile_reads += len(di.psrcs)
            latency = DEFAULT_LATENCY[di.inst.klass]
            di.state = InstState.ISSUED
            if di.inst.is_load:
                self._schedule_agen(di, self.cycle + latency)
            else:
                self.schedule_completion(di, self.cycle + latency)
            issued += 1
            self.stats.issued_entries += 1
            if is_fpu:
                self.stats.issued_fpu_entries += 1
            if tracing:
                self.obs.emit(
                    EventKind.ISSUE,
                    self.cycle,
                    tid=first_thread(di.itid),
                    pc=di.pc,
                    seq=di.seq,
                    itid=di.itid,
                    op=di.inst.op.value,
                )

    def _verify_sources(self, di: DynInst) -> None:
        """Check operand values against every owning thread's oracle record."""
        values = [self.regfile.value[p] for p in di.psrcs]
        for tid in threads_of(di.itid):
            expected = di.execs[tid].src_vals
            for got, want in zip(values, expected):
                if not values_equal(got, want):
                    raise SimulationInvariantError(
                        f"t{tid} {di!r}: operand {got!r} != oracle {want!r}"
                    )

    # ------------------------------------------------------------ scheduling
    def schedule_completion(self, di: DynInst, cycle: int) -> None:
        """Queue *di*'s writeback for *cycle* (at least next cycle)."""
        cycle = max(cycle, self.cycle + 1)
        self._complete_events.setdefault(cycle, []).append(di)

    def _schedule_agen(self, di: DynInst, cycle: int) -> None:
        cycle = max(cycle, self.cycle + 1)
        self._agen_events.setdefault(cycle, []).append(di)

    # ------------------------------------------------------------- writeback
    def writeback_stage(self) -> None:
        """Drain this cycle's agen/complete events: wake dependents,
        verify LVIP uses, resolve control, update the RST.

        Effects:
            writes: _agen_events, _complete_events, decode_buffer,
                fetch_stall_until, icount, iq, lsq, lvip, rat, regfile,
                replay, rob, rst, stalled_on_branch, stats, sync,
                thread_queues
        """
        now = self.cycle
        for di in self._agen_events.pop(now, ()):  # loads: address generated
            if di.dead:
                continue
            di.state = InstState.WAITING_MEM
            self.lsq.init_load_units(di, self.job.wtype)
        for di in self._complete_events.pop(now, ()):
            if di.dead:
                continue
            self._complete(di)

    def _complete(self, di: DynInst) -> None:
        inst = di.inst
        if (
            inst.is_load
            and di.lvip_predicted_identical
            and di.num_threads >= 2
            and di.pdst_by_tid is None
        ):
            self._verify_lvip(di)
        if inst.dst is not None:
            self._write_results(di)
        di.state = InstState.DONE
        di.complete_cycle = self.cycle
        self.stats.executed_entries += 1
        if di.mispredicted:
            self._resolve_branch(di)

    def _write_results(self, di: DynInst) -> None:
        if di.pdst_by_tid is not None:
            written = set()
            for tid, preg in di.pdst_by_tid.items():
                if preg not in written:
                    self.regfile.write(preg, di.execs[tid].result)
                    self.stats.regfile_writes += 1
                    written.add(preg)
            return
        results = [di.execs[tid].result for tid in threads_of(di.itid)]
        if self.strict and di.num_threads >= 2:
            head = results[0]
            for value in results[1:]:
                if not values_equal(head, value):
                    raise SimulationInvariantError(
                        f"merged {di!r} produced differing results {results!r}"
                    )
        self.regfile.write(di.pdst, results[0])
        self.stats.regfile_writes += 1

    def _resolve_branch(self, di: DynInst) -> None:
        """A mispredicted control instruction resolved: release its waiters."""
        resume = self.cycle + self.config.mispredict_penalty
        for tid in range(self.num_threads):
            if self.stalled_on_branch[tid] is di:
                self.stalled_on_branch[tid] = None
                self.fetch_stall_until[tid] = max(
                    self.fetch_stall_until[tid], resume
                )
        self.stats.fetch_stall_mispredict_cycles += self.config.mispredict_penalty

    # ------------------------------------------------------------------ LVIP
    def _verify_lvip(self, di: DynInst) -> None:
        """Compare the per-thread values of a merged ME load (paper §4.2.5)."""
        classes: list[list[int]] = []
        for tid in threads_of(di.itid):
            value = di.execs[tid].result
            for group in classes:
                if values_equal(di.execs[group[0]].result, value):
                    group.append(tid)
                    break
            else:
                classes.append([tid])
        if len(classes) == 1:
            self.lvip.record_identical(di.pc)
            return

        # Misprediction: keep the leader's class on the allocated register,
        # squash the disagreeing threads back to the load, and give every
        # other value class its own destination register.
        self.lvip.record_mispredict(di.pc)
        self.stats.lvip_mispredicts += 1
        di.lvip_mispredicted = True
        dst = di.inst.dst
        leader = first_thread(di.itid)
        keep = next(group for group in classes if leader in group)
        di.pdst_by_tid = {tid: di.pdst for tid in keep}
        for group in classes:
            if group is keep:
                continue
            for tid in group:
                squash_thread(self, tid, after_seq=di.seq)
            if dst is not None:
                new_preg = self.regfile.alloc(map_claims=len(group))
                for tid in group:
                    if not self.rat.mapping_valid(tid, dst, di.pdst):
                        raise RuntimeError("LVIP split found stale mapping")
                    self.rat.set(tid, dst, new_preg)
                    self.regfile.drop_map_claim(di.pdst)
                    di.pdst_by_tid[tid] = new_preg
        if dst is not None:
            for a_index, group_a in enumerate(classes):
                for group_b in classes[a_index + 1:]:
                    for t in group_a:
                        for u in group_b:
                            self.rst.set_pair(dst, t, u, False)
