"""The SMT/MMT core: construction, reset, and the per-cycle loop.

:class:`SMTCore` composes the stage mixins into the paper's machine:

* ``Base``     — a traditional SMT (sync controller disabled, no ITIDs);
* ``MMT-F``    — merged fetch, always split at the splitter;
* ``MMT-FX``   — merged fetch + RST-driven merged execution;
* ``MMT-FXR``  — MMT-FX + commit-time register merging;
* ``Limit``    — MMT-FXR over identical cloned contexts.

The machine is *value-accurate*: physical registers hold real values and a
per-thread functional oracle (stepped at fetch) provides the correct-path
stream.  With ``strict=True`` (the default) every issue and writeback is
checked against the oracle, so an incorrect merge anywhere in the MMT
machinery raises :class:`SimulationInvariantError` instead of silently
producing wrong timing.
"""

from __future__ import annotations

from collections import deque

from repro.branch.btb import BTB
from repro.branch.predictor import TwoLevelPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.trace_cache import TraceCacheModel
from repro.core.config import MMTConfig, WorkloadType
from repro.core.itid import MAX_THREADS
from repro.core.lvip import LoadValuesIdenticalPredictor
from repro.core.regmerge import RegisterMergeUnit
from repro.core.rst import RegisterSharingTable
from repro.core.sync import SyncController
from repro.func.executor import FunctionalExecutor
from repro.isa.registers import NUM_ARCH_REGS
from repro.mem.hierarchy import MemoryHierarchy
from repro.obs.observer import NULL_OBS, Observer
from repro.pipeline.commit_stage import CommitStageMixin
from repro.pipeline.config import MachineConfig
from repro.pipeline.dyninst import DynInst
from repro.pipeline.fetch_stage import FetchStageMixin
from repro.pipeline.issue_stage import IssueStageMixin, SimulationInvariantError
from repro.pipeline.job import Job
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rat import RegisterAliasTable
from repro.pipeline.regfile import PhysRegFile
from repro.pipeline.rename_stage import RenameStageMixin
from repro.pipeline.stats import SimStats

__all__ = ["SMTCore", "SimulationInvariantError"]


class SMTCore(
    FetchStageMixin, RenameStageMixin, IssueStageMixin, CommitStageMixin
):
    """Cycle-level SMT processor with the MMT extensions."""

    def __init__(
        self,
        machine: MachineConfig,
        mmt: MMTConfig,
        job: Job,
        strict: bool = True,
        warm_caches: bool = True,
        start_delays: list[int] | None = None,
        obs: Observer | None = None,
    ) -> None:
        if job.num_contexts > machine.num_threads:
            raise ValueError(
                f"job has {job.num_contexts} contexts but the machine only "
                f"{machine.num_threads} hardware threads"
            )
        if job.num_contexts > MAX_THREADS:
            raise ValueError(f"at most {MAX_THREADS} hardware threads")
        self.config = machine
        self.mmt = mmt
        self.job = job
        self.strict = strict
        self.num_threads = job.num_contexts

        # Substrates.
        self.hierarchy = MemoryHierarchy(machine.memory)
        self.bpred = TwoLevelPredictor(
            machine.bpred_pht_entries,
            machine.bpred_history_length,
            self.num_threads,
        )
        self.btb = BTB(machine.btb_entries)
        self.ras = [
            ReturnAddressStack(machine.ras_depth) for _ in range(self.num_threads)
        ]
        self.trace_model = TraceCacheModel(
            machine.trace_cache_enabled, machine.trace_cache_blocks
        )

        # MMT structures.
        if job.wtype is WorkloadType.MULTI_THREADED:
            self.rst = RegisterSharingTable.for_multi_threaded()
        else:
            self.rst = RegisterSharingTable.for_multi_execution()
        self.lvip = LoadValuesIdenticalPredictor(mmt.lvip_entries)
        self.regmerge = RegisterMergeUnit(self.num_threads, mmt.merge_read_ports)
        self.sync = SyncController(
            self.num_threads,
            fhb_size=mmt.fhb_size,
            enabled=mmt.shared_fetch,
            max_catchup_branches=mmt.max_catchup_branches,
        )

        # Contexts and oracles.
        self.states = job.make_states()
        self.oracles = [FunctionalExecutor(state) for state in self.states]
        self.asids = [space.asid for space in job.address_spaces]

        # Rename state.
        self.regfile = PhysRegFile(machine.phys_regs)
        self.rat = RegisterAliasTable(self.num_threads)
        self._install_initial_mappings()

        # Window structures.
        self.rob: list[DynInst] = []
        self.iq: list[DynInst] = []
        self.lsq = LoadStoreQueue(machine.lsq_size)
        self.decode_buffer: list[DynInst] = []
        self.thread_queues = [deque() for _ in range(self.num_threads)]

        # Per-thread fetch state.  Optional start delays model scheduling
        # skew (§4.4: the OS should gang-schedule MMT threads; this knob
        # measures what imperfect gang scheduling costs).
        self.replay = [deque() for _ in range(self.num_threads)]
        if start_delays is not None and len(start_delays) != self.num_threads:
            raise ValueError("one start delay per context required")
        self.fetch_stall_until = list(start_delays or [0] * self.num_threads)
        self.stalled_on_branch: list[DynInst | None] = [None] * self.num_threads
        self.fetch_done = [False] * self.num_threads
        self.finished = [False] * self.num_threads
        self.icount = [0] * self.num_threads

        # Event wheels.
        self._agen_events: dict[int, list[DynInst]] = {}
        self._complete_events: dict[int, list[DynInst]] = {}
        # Software remerge hints: hint PC -> (parked member tids, deadline).
        self._hint_parked: dict[int, tuple[list[int], int]] = {}

        if start_delays and mmt.shared_fetch:
            # Delayed threads cannot fetch in lockstep with on-time ones:
            # they start isolated and resynchronize through the normal
            # FHB/PC-equality machinery once they are running.
            for tid, delay in enumerate(start_delays):
                if delay > 0:
                    self.sync.isolate(tid)

        self.cycle = 0
        self._seq = 0
        self._commit_rr = 0
        self.ldst_ports_left = machine.ldst_ports
        self.stats = SimStats()
        if warm_caches:
            self._warm_caches()
        # Observability: attached after warming so warm-up accesses (whose
        # counters are reset anyway) never reach the sink.
        self.obs = obs or NULL_OBS
        self.sync.obs = self.obs
        self.hierarchy.obs = self.obs

    def _warm_caches(self) -> None:
        """Pre-touch program text and initial data images.

        The paper simulates regions of long-running benchmarks (hundreds of
        millions of instructions), where cold compulsory misses are noise;
        our synthetic workloads are short, so we model the warmed steady
        state explicitly.  Warming happens before statistics matter — the
        cache counters are reset afterwards so energy accounting only sees
        real activity.
        """
        from repro.isa.program import INST_BYTES

        line = self.config.memory.line_bytes
        for program in {id(p): p for p in self.job.programs}.values():
            for byte in range(0, len(program) * INST_BYTES, line):
                key = self.hierarchy.l1i.line_key(0, byte)
                self.hierarchy.l1i.access(key)
                self.hierarchy.l2.access(key)
            break  # identical text across contexts; one pass warms the PCs
        # Data warms into the L2 only: a long-running workload's working set
        # lives in the L2 at steady state, while L1 contents churn — first
        # touches and capacity misses in the L1 are real, DRAM cold misses
        # are not.
        seen = set()
        for space in self.job.address_spaces:
            if id(space) in seen:
                continue
            seen.add(id(space))
            for addr in space.snapshot():
                key = self.hierarchy.l2.line_key(space.asid, addr)
                self.hierarchy.l2.access(key)
        for cache in (self.hierarchy.l1i, self.hierarchy.l1d, self.hierarchy.l2):
            cache.stats.accesses = 0
            cache.stats.hits = 0
            cache.stats.misses = 0
            cache.stats.writebacks = 0
        self.hierarchy.dram_accesses = 0

    # ------------------------------------------------------------------ init
    def _install_initial_mappings(self) -> None:
        """Map the initial architectural state into physical registers.

        With shared execution, registers whose initial values are identical
        across contexts share one physical register (paper §4.2.6: in a
        multi-execution workload all architected registers start mapped to
        the same physical registers; multi-threaded workloads differ only
        in the stack pointer).  Otherwise each context gets its own copy.
        """
        share_initial = self.mmt.shared_execute and self.num_threads > 1
        for arch in range(NUM_ARCH_REGS):
            values = [state.regs[arch] for state in self.states]
            identical = all(v == values[0] for v in values[1:])
            if share_initial and identical:
                preg = self.regfile.alloc(map_claims=self.num_threads)
                self.regfile.set_initial(preg, values[0])
                for tid in range(self.num_threads):
                    self.rat.set(tid, arch, preg)
            else:
                for tid in range(self.num_threads):
                    preg = self.regfile.alloc(map_claims=1)
                    self.regfile.set_initial(preg, values[tid])
                    self.rat.set(tid, arch, preg)
                if self.mmt.shared_fetch:
                    # Distinct physical registers: the RST may still mark
                    # the values identical when they are (value semantics).
                    for t in range(self.num_threads):
                        for u in range(t + 1, self.num_threads):
                            self.rst.set_pair(arch, t, u, identical)

    # ------------------------------------------------------------------ run
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def done(self) -> bool:
        """All contexts have committed their HALT."""
        return all(self.finished)

    def step(self) -> None:
        """Advance the machine one clock cycle."""
        self.cycle += 1
        obs = self.obs
        if obs.active:
            obs.begin_cycle(self.cycle)
        self.hierarchy.tick(self.cycle)
        self.regmerge.new_cycle()
        self.ldst_ports_left = self.config.ldst_ports
        self.commit_stage()
        self.writeback_stage()
        self.lsq.process_loads(self)
        self.issue_stage()
        self.rename_stage()
        self.fetch_stage()
        self.stats.cycles = self.cycle
        if obs.active:
            # Interval sampling plus the no-forward-progress watchdog
            # (raises WatchdogError on livelock, with a flight dump).
            obs.end_cycle(self)

    def run(self) -> SimStats:
        """Run to completion; returns the statistics object."""
        limit = self.config.max_cycles
        while not self.done():
            if self.cycle >= limit:
                raise RuntimeError(
                    f"simulation exceeded {limit} cycles "
                    f"(finished={self.finished}, cycle={self.cycle})"
                )
            self.step()
        if self.obs.active:
            self.obs.finalize(self)
        # Snapshot predictor-local and RST-local state into the stats
        # object so post-hoc validation (campaign aggregation) can run
        # without the live core.
        self.stats.lvip_site_checks = dict(self.lvip.site_checks)
        self.stats.lvip_site_mispredicts = dict(self.lvip.site_mispredicts)
        if self.mmt.shared_fetch:
            # The RST only tracks values when merged fetch runs it (its
            # update sites are all gated on shared_fetch); under Base the
            # table is frozen at its initial state and its "sharing
            # fraction" is not an observation worth validating.
            self.stats.final_rst_sharing = self.rst.sharing_fraction(
                self.num_threads
            )
        if self.strict:
            self._final_checks()
        return self.stats

    def _final_checks(self) -> None:
        """End-of-run invariants: empty window, consistent refcounts."""
        if self.rob or self.iq or self.lsq.entries or self.decode_buffer:
            raise SimulationInvariantError("machine finished with work in flight")
        for tid in range(self.num_threads):
            if not self.states[tid].halted:
                raise SimulationInvariantError(f"context {tid} never halted")
        self.stats.validate()
