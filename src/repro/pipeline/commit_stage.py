"""Commit: per-thread in-order retirement with register merging.

A merged instruction commits once, when it reaches the head of *every*
owning thread's retirement order, and retires for all of them together —
that single commit is MMT's back-end saving.  Committing stores perform
their cache accesses here (one per owning address space for
multi-execution, Table 2); commit-time register merging (§4.2.7) runs for
instructions fetched in DETECT or CATCHUP mode whose destination mapping
is still valid.
"""

from __future__ import annotations

from repro.core.itid import threads_of
from repro.core.sync import FetchMode
from repro.obs.events import EventKind
from repro.pipeline.dyninst import DynInst, InstState

_MERGEABLE_MODES = (FetchMode.DETECT, FetchMode.CATCHUP)


class CommitStageMixin:
    """Commit logic for :class:`~repro.pipeline.smt.SMTCore`."""

    def commit_stage(self) -> None:
        """Retire DONE instructions in program order, round-robin across
        threads, up to ``commit_width`` per cycle.

        Effects:
            writes: _commit_rr, finished, icount, ldst_ports_left, lsq,
                regfile, regmerge, rob, stats, thread_queues
        """
        cfg = self.config
        budget = cfg.commit_width
        progress = True
        while budget > 0 and progress:
            progress = False
            for offset in range(self.num_threads):
                if budget <= 0:
                    break
                tid = (self._commit_rr + offset) % self.num_threads
                queue = self.thread_queues[tid]
                if not queue:
                    continue
                di = queue[0]
                if di.state is not InstState.DONE:
                    continue
                if any(
                    self.thread_queues[u][0] is not di for u in threads_of(di.itid)
                ):
                    continue  # not yet at the head of every owner's order
                if di.inst.is_store and not self.lsq.try_commit_store(di, self):
                    continue
                self._commit(di)
                budget -= 1
                progress = True
        self._commit_rr = (self._commit_rr + 1) % self.num_threads

    def _commit(self, di: DynInst) -> None:
        inst = di.inst
        owners = threads_of(di.itid)
        k = len(owners)
        stats = self.stats
        stats.committed_thread_insts += k
        stats.committed_entries += 1
        for tid in owners:
            stats.committed_per_thread[tid] = (
                stats.committed_per_thread.get(tid, 0) + 1
            )
        if k >= 2:
            stats.committed_exec_identical += k
            if di.merged_via_regmerge:
                stats.committed_exec_identical_regmerge += k
        elif di.fetch_merged_width >= 2:
            stats.committed_fetch_identical += 1

        for tid in owners:
            self.thread_queues[tid].popleft()
            self.icount[tid] -= 1

        if inst.dst is not None:
            self._retire_destination(di, owners)
        for preg in di.psrcs:
            self.regfile.drop_src_claim(preg)
        if inst.is_mem:
            self.lsq.remove(di)
        self.rob.remove(di)
        di.state = InstState.COMMITTED
        if self.obs.tracing:
            self.obs.emit(
                EventKind.COMMIT,
                self.cycle,
                tid=owners[0],
                pc=di.pc,
                seq=di.seq,
                itid=di.itid,
                threads=k,
            )

        if di.halt:
            for tid in owners:
                if not self.finished[tid]:
                    self.finished[tid] = True
                    stats.halted_threads += 1

    def _retire_destination(self, di: DynInst, owners: list[int]) -> None:
        dst = di.inst.dst
        valid_mask = 0
        for tid in owners:
            prev = di.prev_map[tid]
            self.regfile.drop_map_claim(prev)
            valid = self.rat.mapping_valid(tid, dst, di.dest_phys_for(tid))
            self.regmerge.on_writer_retired(tid, dst, valid)
            if valid:
                valid_mask |= 1 << tid

        if (
            self.mmt.register_merging
            and valid_mask
            and di.fetch_mode in _MERGEABLE_MODES
            and di.pdst_by_tid is None
        ):
            active_mask = 0
            for tid in range(self.num_threads):
                if not self.finished[tid]:
                    active_mask |= 1 << tid
            value = di.execs[owners[0]].result

            def read_other(u: int):
                preg = self.rat.get(u, dst)
                if not self.regfile.ready[preg]:
                    return None
                self.stats.regfile_reads += 1
                return self.regfile.value[preg]

            before = self.regmerge.attempts
            merged = self.regmerge.try_merge(
                valid_mask, dst, value, self.rst, read_other, active_mask
            )
            self.stats.register_merge_attempts += self.regmerge.attempts - before
            self.stats.register_merge_successes += merged
