"""Machine configuration (paper Table 4)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mem.hierarchy import MemoryConfig


@dataclass(frozen=True)
class MachineConfig:
    """Core geometry and widths.

    Defaults reproduce the paper's Table 4: an aggressive 8-wide SMT with a
    256-entry ROB, 64-entry LSQ, 6 ALUs + 3 FPUs, a 2-level predictor with
    a 1024-entry PHT and history length 10, 2048-entry BTB, 16-entry RAS,
    and a trace cache.  The physical register file is sized so four contexts
    can hold their architectural state with a full window in flight.
    """

    num_threads: int = 4
    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_size: int = 256
    iq_size: int = 64
    lsq_size: int = 64
    num_alu: int = 6
    num_fpu: int = 3
    ldst_ports: int = 4
    phys_regs: int = 512
    fetch_groups_per_cycle: int = 2
    decode_buffer_size: int = 32
    # Extra front-end redirect cycles on a branch mispredict, on top of the
    # fetch-to-resolve bubble the pipeline models directly.
    mispredict_penalty: int = 2
    # Fetch-stall cycles charged to a thread recovering from an LVIP
    # misprediction (pipeline flush + refetch redirect).
    lvip_flush_penalty: int = 3
    bpred_pht_entries: int = 1024
    bpred_history_length: int = 10
    btb_entries: int = 2048
    ras_depth: int = 16
    trace_cache_enabled: bool = True
    trace_cache_blocks: int = 3
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    # Safety net for runaway simulations (deadlock would otherwise hang).
    max_cycles: int = 5_000_000

    def with_threads(self, n: int) -> "MachineConfig":
        """Copy with a different hardware thread count."""
        return replace(self, num_threads=n)

    def with_fetch_width(self, width: int) -> "MachineConfig":
        """Copy with a different fetch width (Figure 7(d) sweep)."""
        return replace(self, fetch_width=width)

    def with_ldst_ports(self, ports: int, scale_mshrs: bool = True) -> "MachineConfig":
        """Copy with a different load/store port count (Figure 7(b) sweep).

        The paper scales the MSHR count with the port count; we scale at 4
        MSHRs per port by default.
        """
        memory = self.memory
        if scale_mshrs:
            memory = replace(memory, mshr_entries=max(4, 4 * ports))
        return replace(self, ldst_ports=ports, memory=memory)

    def table4_rows(self) -> list[tuple[str, str]]:
        """This configuration rendered as the paper's Table 4 rows."""
        rows = [
            ("Threads", str(self.num_threads)),
            ("Issue/Commit Width", f"{self.issue_width}/{self.commit_width}"),
            ("LSQ Size", str(self.lsq_size)),
            ("ROB Size", str(self.rob_size)),
            ("ALU/FPU units", f"{self.num_alu}/{self.num_fpu}"),
            (
                "Branch Predictor",
                f"2-level, {self.bpred_pht_entries} Entry, "
                f"History Length {self.bpred_history_length}",
            ),
            ("BTB/RAS Size", f"{self.btb_entries}/{self.ras_depth}"),
            ("Trace Cache", "enabled" if self.trace_cache_enabled else "disabled"),
        ]
        rows.extend(self.memory.table4_rows())
        return rows
