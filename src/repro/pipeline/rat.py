"""Register Alias Tables (paper §4.2.4).

One speculative RAT per hardware thread, mapping architected registers to
physical registers.  For an execute-identical (merged) instruction, the
single allocated destination register is recorded in *every* owning
thread's RAT — that is the mechanism by which one execution result reaches
all threads.

Register merging (§4.2.7) additionally needs a commit-visible view of the
mapping: the paper keeps a copy of the table to avoid adding read ports.
Because our simulator squashes only in ways that restore the speculative
RAT exactly (undo logs), the speculative table *is* the commit-visible
mapping whenever the querying instruction's own mapping is still valid, so
:class:`RegisterAliasTable` serves both roles; the read-port budget is
enforced by :class:`~repro.core.regmerge.RegisterMergeUnit`.
"""

from __future__ import annotations

from repro.isa.registers import NUM_ARCH_REGS


class RegisterAliasTable:
    """Per-thread architected-to-physical mappings."""

    def __init__(self, num_threads: int, num_arch: int = NUM_ARCH_REGS) -> None:
        self.num_threads = num_threads
        self.num_arch = num_arch
        self._map: list[list[int]] = [[-1] * num_arch for _ in range(num_threads)]

    def get(self, tid: int, arch: int) -> int:
        """Current physical register of (*tid*, *arch*)."""
        preg = self._map[tid][arch]
        if preg < 0:
            raise RuntimeError(f"thread {tid} arch r{arch} has no mapping")
        return preg

    def set(self, tid: int, arch: int, preg: int) -> int:
        """Update the mapping; returns the previous physical register."""
        prev = self._map[tid][arch]
        self._map[tid][arch] = preg
        return prev

    def mapping_valid(self, tid: int, arch: int, preg: int) -> bool:
        """Is *preg* still (*tid*, *arch*)'s current mapping?

        True means no younger in-flight instruction has renamed the
        register — the paper's commit-time validity check for register
        merging.
        """
        return self._map[tid][arch] == preg
