"""Thread-selective squash: the LVIP misprediction rollback (§4.2.5).

When a merged multi-execution load returns differing values, the threads
that disagree with the kept (leader) value must discard everything younger
than the load: their RAT updates are undone through per-instruction undo
logs, their oracle records are pushed back onto a replay queue so fetch can
re-issue them, and they leave their fetch group.  Instructions merged
across agreeing and disagreeing threads merely shrink their ITID; an
instruction whose ITID empties dies entirely.
"""

from __future__ import annotations

from repro.obs.events import EventKind
from repro.pipeline.dyninst import DynInst


def squash_thread(core, tid: int, after_seq: int) -> int:
    """Squash all of *tid*'s in-flight work younger than *after_seq*.

    Returns the number of squashed thread-instructions.  Replay records are
    queued in program order so fetch transparently re-issues them.
    """
    bit = 1 << tid
    squashed = 0

    # Decode buffer: the youngest instructions, with no RAT effects yet.
    buffer_records = []
    survivors = []
    for di in core.decode_buffer:
        if di.itid & bit and di.seq > after_seq:
            buffer_records.append(di.execs[tid])
            di.drop_thread(tid)
            squashed += 1
            core.icount[tid] -= 1
            if not di.itid:
                di.dead = True
                continue
        survivors.append(di)
    core.decode_buffer[:] = survivors

    # Renamed instructions: walk the ROB newest-first so RAT undo is exact.
    rob_records = []
    for di in reversed(core.rob):
        if not di.itid & bit or di.seq <= after_seq:
            continue
        rob_records.append(di.execs[tid])
        _undo_rename_for_thread(core, di, tid)
        di.drop_thread(tid)
        squashed += 1
        core.icount[tid] -= 1
        core.thread_queues[tid].remove(di)
        if not di.itid:
            _remove_entirely(core, di)

    # Program order: ROB instructions (collected newest-first, so reversed)
    # are all older than decode-buffer ones.  Any records already queued
    # for replay are younger still: keep them behind the new ones.
    records = rob_records[::-1] + buffer_records
    core.replay[tid].extendleft(reversed(records))

    core.sync.isolate(tid)
    core.fetch_stall_until[tid] = max(
        core.fetch_stall_until[tid], core.cycle + core.config.lvip_flush_penalty
    )
    waiting = core.stalled_on_branch[tid]
    if waiting is not None and (waiting.dead or not waiting.itid & bit):
        core.stalled_on_branch[tid] = None

    _recompute_writer_bits(core, tid)
    core.stats.lvip_squashed_insts += squashed
    if core.obs.tracing:
        core.obs.emit(
            EventKind.SQUASH,
            core.cycle,
            tid=tid,
            after_seq=after_seq,
            squashed=squashed,
        )
    return squashed


def _undo_rename_for_thread(core, di: DynInst, tid: int) -> None:
    """Reverse *di*'s rename effects for thread *tid* (newest-first order)."""
    dst = di.inst.dst
    if dst is None:
        return
    current = di.dest_phys_for(tid)
    if not core.rat.mapping_valid(tid, dst, current):
        raise RuntimeError(
            f"squash undo out of order: t{tid} r{dst} not mapped to p{current}"
        )
    core.rat.set(tid, dst, di.prev_map[tid])
    core.regfile.drop_map_claim(current)
    # The RST may claim tid shares dst with other threads based on this
    # (now dead) mapping; conservatively clear all of tid's pairs for dst.
    for u in range(core.num_threads):
        if u != tid:
            core.rst.set_pair(dst, tid, u, False)


def _remove_entirely(core, di: DynInst) -> None:
    """Every owner squashed: release all remaining resources."""
    di.dead = True
    core.rob.remove(di)
    if di in core.iq:
        core.iq.remove(di)
    if di.inst.is_mem and di in core.lsq.entries:
        core.lsq.remove(di)
    for preg in di.psrcs:
        core.regfile.drop_src_claim(preg)


def _recompute_writer_bits(core, tid: int) -> None:
    """Rebuild the register-merge unit's no-active-writer bits for *tid*."""
    bits = core.regmerge.no_active_writer[tid]
    for reg in range(len(bits)):
        bits[reg] = True
    bit = 1 << tid
    for di in core.rob:
        if di.itid & bit and di.inst.dst is not None:
            bits[di.inst.dst] = False
