"""Split + rename + dispatch.

The split stage (paper §4.2.2) sits between decode and the RAT: each
fetch-identical instruction is partitioned by the Register Sharing Table
into the minimal set of execute-identical pieces (Table 2's decode rows,
including the LVIP consultation for multi-execution loads and the forced
split of TID, whose result is thread-specific by definition).

Rename then reads the leader thread's mappings once per piece, allocates a
single physical destination recorded in *every* owning thread's RAT
(§4.2.4), logs per-thread previous mappings for undo, and dispatches into
the ROB, issue queue, and (for memory ops) the LSQ.  An instruction group
only leaves the decode buffer when every piece finds resources — splitting
never half-dispatches.
"""

from __future__ import annotations

from repro.core.config import WorkloadType
from repro.core.itid import first_thread, popcount, threads_of
from repro.core.splitter import split_itid
from repro.isa.opcodes import Opcode
from repro.obs.events import EventKind
from repro.pipeline.dyninst import DynInst, InstState


class RenameStageMixin:
    """Split/rename/dispatch logic for :class:`~repro.pipeline.smt.SMTCore`."""

    def rename_stage(self) -> None:
        """Split, rename, and dispatch decoded groups while resources
        last, consulting LVIP and allocating RST entries.

        Effects:
            writes: decode_buffer, iq, lsq, lvip, rat, regfile, regmerge,
                rob, rst, stalled_on_branch, stats, thread_queues
        """
        cfg = self.config
        width = cfg.issue_width
        while width > 0 and self.decode_buffer:
            head = self.decode_buffer[0]
            if head.dead:
                self.decode_buffer.pop(0)
                continue
            pieces, taint_mask = self._split(head)
            if len(pieces) > width:
                break
            if not self._resources_available(pieces):
                break
            self.decode_buffer.pop(0)
            self.stats.split_stage_inputs += 1
            self.stats.split_stage_outputs += len(pieces)
            if len(pieces) > 1:
                self.stats.splits_performed += 1
                self._repoint_branch_waiters(head, pieces)
            for piece in pieces:
                self._rename_one(piece)
            if self.mmt.shared_fetch and head.inst.dst is not None:
                self.rst.update_dest(
                    head.inst.dst,
                    head.itid if len(pieces) == 1 else sum(p.itid for p in pieces),
                    [p.itid for p in pieces],
                    src_taint_mask=taint_mask,
                )
            width -= len(pieces)

    # ------------------------------------------------------------- splitting
    def _split(self, di: DynInst) -> tuple[list[DynInst], int]:
        """Partition *di*; returns (pieces, source-taint mask)."""
        if not self.mmt.shared_fetch or di.num_threads == 1:
            return [di], 0
        inst = di.inst
        if inst.op in (Opcode.SEND, Opcode.TRECV):
            # Message operations have per-thread side effects on the shared
            # network: always one instruction per owning thread.
            itids = [1 << t for t in threads_of(di.itid)]
            return self._materialize(di, itids), 0
        if inst.op is Opcode.TID:
            # Thread-id reads split by the *software* thread ids the OS
            # assigned: distinct ids (normal SPMD) split per thread, while
            # the Limit configuration's identical clones stay merged.
            groups: dict[int, int] = {}
            for t in threads_of(di.itid):
                soft = self.job.soft_tids[t]
                groups[soft] = groups.get(soft, 0) | (1 << t)
            itids = sorted(groups.values(), key=lambda m: (-popcount(m), m))
            return self._materialize(di, itids), 0

        decision = split_itid(
            di.itid, inst.srcs, self.rst, allow_merge=self.mmt.shared_execute
        )
        itids = decision.itids
        taint_mask = self.rst.taint_mask(inst.srcs) if self.mmt.shared_execute else 0

        if (
            inst.is_load
            and self.job.wtype is not WorkloadType.MULTI_THREADED
            and self.mmt.shared_execute
            and any(popcount(eid) >= 2 for eid in itids)
        ):
            # Table 2: ME execute-identical loads consult the LVIP.
            self.stats.lvip_checks += 1
            if self.lvip.predict_identical(di.pc):
                self.stats.lvip_predict_identical += 1
            else:
                itids = [1 << t for t in threads_of(di.itid)]

        pieces = self._materialize(di, itids)
        if self.mmt.register_merging:
            for piece in pieces:
                if piece.num_threads >= 2 and self.rst.eid_uses_merge(
                    piece.itid, inst.srcs
                ):
                    piece.merged_via_regmerge = True
        if inst.is_load and self.job.wtype is not WorkloadType.MULTI_THREADED:
            for piece in pieces:
                if piece.num_threads >= 2:
                    piece.lvip_predicted_identical = True
        return pieces, taint_mask

    @staticmethod
    def _materialize(di: DynInst, itids: list[int]) -> list[DynInst]:
        if len(itids) == 1:
            return [di]
        return [di.clone_for(eid) for eid in itids]

    def _repoint_branch_waiters(self, head: DynInst, pieces: list[DynInst]) -> None:
        """Threads stalled on a fetched control instruction must wait on the
        piece that owns them once it splits."""
        for tid in range(self.num_threads):
            if self.stalled_on_branch[tid] is head:
                for piece in pieces:
                    if piece.itid >> tid & 1:
                        self.stalled_on_branch[tid] = piece
                        break

    # ------------------------------------------------------------- resources
    def _resources_available(self, pieces: list[DynInst]) -> bool:
        cfg = self.config
        reason = None
        if len(self.rob) + len(pieces) > cfg.rob_size:
            self.stats.rename_stalls_rob += 1
            reason = "rob"
        elif len(self.iq) + len(pieces) > cfg.iq_size:
            self.stats.rename_stalls_iq += 1
            reason = "iq"
        elif pieces[0].inst.is_mem and len(self.lsq) + len(pieces) > cfg.lsq_size:
            self.stats.rename_stalls_lsq += 1
            reason = "lsq"
        elif (
            pieces[0].inst.dst is not None
            and self.regfile.free_count() < len(pieces)
        ):
            self.stats.rename_stalls_regs += 1
            reason = "regs"
        if reason is None:
            return True
        if self.obs.tracing:
            self.obs.emit(
                EventKind.RENAME_STALL,
                self.cycle,
                pc=pieces[0].pc,
                seq=pieces[0].seq,
                reason=reason,
                pieces=len(pieces),
            )
        return False

    # ---------------------------------------------------------------- rename
    def _rename_one(self, piece: DynInst) -> None:
        inst = piece.inst
        leader = first_thread(piece.itid)
        piece.psrcs = [self.rat.get(leader, reg) for reg in inst.srcs]
        for preg in piece.psrcs:
            self.regfile.add_src_claim(preg)
        if inst.dst is not None:
            preg = self.regfile.alloc(map_claims=piece.num_threads)
            piece.pdst = preg
            for tid in threads_of(piece.itid):
                piece.prev_map[tid] = self.rat.set(tid, inst.dst, preg)
            self.regmerge.on_writer_allocated(piece.itid, inst.dst)
        piece.state = InstState.WAITING
        piece.is_exec_merged = piece.num_threads >= 2
        self.rob.append(piece)
        for tid in threads_of(piece.itid):
            self.thread_queues[tid].append(piece)
        self.iq.append(piece)
        if inst.is_mem:
            self.lsq.allocate(piece)
        self.stats.renamed_entries += 1
