"""Cycle-level SMT/MMT pipeline."""

from repro.pipeline.config import MachineConfig
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.job import Job
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rat import RegisterAliasTable
from repro.pipeline.regfile import OutOfPhysRegs, PhysRegFile
from repro.pipeline.smt import SimulationInvariantError, SMTCore
from repro.pipeline.stats import SimStats

__all__ = [
    "MachineConfig",
    "DynInst",
    "InstState",
    "Job",
    "LoadStoreQueue",
    "RegisterAliasTable",
    "OutOfPhysRegs",
    "PhysRegFile",
    "SimulationInvariantError",
    "SMTCore",
    "SimStats",
]
