"""Fetch stage: merged fetch, prediction, divergence, synchronization.

Per cycle the fetch unit:

1. merges thread groups whose next fetch PCs are equal (PC-equality is the
   paper's merge condition; the sync FSM exists to *cause* this equality);
2. orders fetchable groups by the sync controller's priority (CATCHUP
   'behind' first, then ICOUNT, CATCHUP 'ahead' last);
3. fetches up to ``fetch_width`` instructions from up to
   ``fetch_groups_per_cycle`` groups, crossing taken branches up to the
   trace-cache block limit.

Each fetched instruction steps every member thread's functional oracle (or
pops that thread's replay queue after a squash), so the machine always
fetches the correct path; a mispredicted control instruction stalls its
group until the instruction resolves, modelling the full fetch-to-resolve
bubble plus a redirect penalty, without simulating wrong-path instructions.
"""

from __future__ import annotations

from repro.core.itid import threads_of
from repro.core.sync import ThreadGroup
from repro.func.executor import Executed
from repro.isa.opcodes import Opcode
from repro.obs.events import EventKind
from repro.pipeline.dyninst import DynInst


class FetchStageMixin:
    """Fetch logic for :class:`~repro.pipeline.smt.SMTCore`."""

    # ------------------------------------------------------------- plumbing
    def _peek_pc(self, tid: int) -> int | None:
        """Next PC thread *tid* will fetch, or None when it has finished."""
        replay = self.replay[tid]
        if replay:
            return replay[0].pc
        if self.fetch_done[tid]:
            return None
        return self.oracles[tid].state.pc

    def _next_record(self, tid: int) -> Executed:
        replay = self.replay[tid]
        if replay:
            return replay.popleft()
        return self.oracles[tid].step()

    def _group_pc(self, group: ThreadGroup) -> int | None:
        """The group's common next fetch PC (None if any member finished)."""
        pc = None
        for tid in threads_of(group.mask):
            tid_pc = self._peek_pc(tid)
            if tid_pc is None:
                return None
            if pc is None:
                pc = tid_pc
            elif pc != tid_pc:
                raise RuntimeError(
                    f"group PC invariant violated: {group!r} at {pc} vs {tid_pc}"
                )
        return pc

    def _group_stalled(self, group: ThreadGroup) -> bool:
        if group.drain_pending:
            # Post-remerge drain (only worthwhile when register merging can
            # exploit it): hold fetch briefly while the members' in-flight
            # work commits, so the §4.2.7 comparisons see valid mappings.
            if (
                self.mmt.register_merging
                and self.cycle - group.created_cycle < self.mmt.remerge_drain
                and any(self.icount[tid] > 0 for tid in threads_of(group.mask))
            ):
                return True
            group.drain_pending = False
        for tid in threads_of(group.mask):
            if self.fetch_stall_until[tid] > self.cycle:
                return True
            if self.stalled_on_branch[tid] is not None:
                return True
        return False

    # ------------------------------------------------------------ main stage
    def fetch_stage(self) -> None:
        """Fetch groups in ICOUNT priority order, one session per group,
        driving prediction, hint parking, and the sync FSM.

        Effects:
            writes: _hint_parked, _seq, bpred, btb, decode_buffer,
                fetch_done, fetch_stall_until, icount, ras,
                stalled_on_branch, stats, sync
        """
        cfg = self.config
        if self.mmt.shared_fetch:
            self._try_remerge()
        budget = cfg.fetch_width
        icounts = {
            g.gid: sum(self.icount[t] for t in threads_of(g.mask)) / g.size
            for g in self.sync.active_groups()
        }
        sessions = 0
        # When a group's session ends exactly at another group's PC (an
        # imminent remerge), that other group is held for the rest of this
        # cycle so the PCs are still equal when the merge check runs.
        held: set[int] = set()
        fetched_gids: set[int] = set()
        for group in self.sync.fetch_order(icounts):
            if budget <= 0 or sessions >= cfg.fetch_groups_per_cycle:
                break
            if group.gid in held:
                continue
            # A CATCHUP 'ahead' group yields whenever its chaser made
            # progress this cycle: feeding it leftover bandwidth would let
            # it lap the (cyclic) PC space and remerge a whole iteration
            # out of alignment.
            behinds = self.sync.behinds_of(group.gid)
            if behinds and any(gid in fetched_gids for gid in behinds):
                continue
            if self._group_stalled(group):
                continue
            pc = self._group_pc(group)
            if pc is None:
                continue
            fetched, hold_gids = self._fetch_group(group, budget)
            held.update(hold_gids)
            if fetched:
                budget -= fetched
                sessions += 1
                fetched_gids.add(group.gid)
                if self.obs.tracing:
                    self.obs.emit(
                        EventKind.FETCH,
                        self.cycle,
                        tid=group.leader,
                        pc=pc,
                        gid=group.gid,
                        mask=group.mask,
                        mode=self.sync.mode_of(group).value,
                        count=fetched,
                    )
        self.stats.fetch_sessions += sessions

    def _try_remerge(self) -> None:
        pcs: dict[int, int] = {}
        for group in self.sync.active_groups():
            if self._group_stalled(group):
                continue
            pc = self._group_pc(group)
            if pc is not None:
                pcs[group.gid] = pc
        self.sync.check_merges(pcs, self.cycle)

    def _fetch_group(self, group: ThreadGroup, budget: int) -> tuple[int, set[int]]:
        cfg = self.config
        members = threads_of(group.mask)
        mode = self.sync.mode_of(group)
        blocks = self.trace_model.blocks_per_fetch()
        count = 0
        first_access = True
        hold_gids: set[int] = set()
        # PCs of the other groups: reaching one of them is a remerge point,
        # so the session stops there and the merge completes next cycle.
        other_pcs: dict[int, int] = {}
        if self.mmt.shared_fetch and len(self.sync.groups) > 1:
            for other in self.sync.groups:
                if other is not group:
                    pc = self._group_pc(other)
                    if pc is not None:
                        other_pcs[pc] = other.gid
        while budget - count > 0:
            if len(self.decode_buffer) >= cfg.decode_buffer_size:
                break
            pc = self._peek_pc(members[0])
            if pc is None:
                break
            if first_access:
                latency = self.hierarchy.fetch_latency(pc)
                if latency > cfg.memory.l1_latency:
                    stall = self.cycle + latency
                    for tid in members:
                        self.fetch_stall_until[tid] = stall
                    self.stats.icache_stall_cycles += latency
                    break
                first_access = False
            records = {tid: self._next_record(tid) for tid in members}
            if any(rec.pc != pc for rec in records.values()):
                raise RuntimeError(f"merged fetch out of lockstep at pc={pc}")
            di = DynInst(
                self._next_seq(),
                pc,
                records[members[0]].inst,
                group.mask,
                records,
                mode,
            )
            self.decode_buffer.append(di)
            count += 1
            for tid in members:
                self.icount[tid] += 1
            self.stats.fetched_thread_insts += len(members)
            self.stats.fetched_entries += 1
            self.stats.fetched_by_mode[mode] += len(members)

            if di.halt:
                for tid in members:
                    self.fetch_done[tid] = True
                    self.sync.on_halt(tid)
                break
            if (
                self.mmt.use_hints
                and di.inst.op is Opcode.HINT
                and not self.sync.is_fully_merged()
            ):
                self._handle_hint(pc, members)
                break
            if di.inst.is_control:
                outcome = self._handle_control(di, group, members, records)
                if outcome in ("divergence", "mispredict"):
                    break
                if outcome == "taken":
                    blocks -= 1
                    if blocks <= 0:
                        break
            if other_pcs:
                next_pc = self._peek_pc(members[0])
                if next_pc in other_pcs:
                    # Reached another group's PC: hold that group so the
                    # merge completes at the next cycle's equality check.
                    hold_gids.add(other_pcs[next_pc])
                    break
        return count, hold_gids

    def _handle_hint(self, pc: int, members: list[int]) -> None:
        """Software remerge rendezvous (Thread Fusion style, extension).

        The first group reaching the HINT parks (bounded by
        ``hint_window``); a later group reaching the same hint releases it,
        leaving both groups' next fetch PCs equal so the normal PC-equality
        check merges them on the following cycle.
        """
        parked = self._hint_parked.get(pc)
        if parked is not None and parked[1] >= self.cycle:
            for tid in parked[0]:
                self.fetch_stall_until[tid] = 0
            del self._hint_parked[pc]
            self.stats.hint_releases += 1
            if self.obs.tracing:
                self.obs.emit(
                    EventKind.HINT,
                    self.cycle,
                    tid=members[0],
                    pc=pc,
                    action="release",
                    released=parked[0],
                )
            return
        deadline = self.cycle + self.mmt.hint_window
        for tid in members:
            self.fetch_stall_until[tid] = deadline
        self._hint_parked[pc] = (list(members), deadline)
        self.stats.hint_parks += 1
        if self.obs.tracing:
            self.obs.emit(
                EventKind.HINT,
                self.cycle,
                tid=members[0],
                pc=pc,
                action="park",
                parked=list(members),
                deadline=deadline,
            )

    # --------------------------------------------------------- control flow
    def _handle_control(
        self,
        di: DynInst,
        group: ThreadGroup,
        members: list[int],
        records: dict[int, Executed],
    ) -> str:
        inst = di.inst
        pc = di.pc
        leader = members[0]
        leader_rec = records[leader]

        pred_next = self._predict(di, leader, leader_rec)

        next_pcs = {tid: records[tid].next_pc for tid in members}
        if len(set(next_pcs.values())) > 1:
            return self._handle_divergence(di, group, leader, next_pcs, pred_next)

        actual_next = next_pcs[leader]
        taken = actual_next != pc + 1
        if taken:
            self.sync.on_taken_branch(group, actual_next)
        if pred_next != actual_next:
            for tid in members:
                self.stalled_on_branch[tid] = di
            di.mispredicted = True
            self.stats.branch_mispredicts += 1
            if self.obs.tracing:
                self.obs.emit(
                    EventKind.MISPREDICT,
                    self.cycle,
                    tid=leader,
                    pc=pc,
                    seq=di.seq,
                    predicted=pred_next,
                    actual=actual_next,
                )
            return "mispredict"
        return "taken" if taken else "continue"

    def _predict(self, di: DynInst, leader: int, leader_rec: Executed) -> int | None:
        """Run the front-end predictors; returns the predicted next PC."""
        inst = di.inst
        pc = di.pc
        if inst.is_branch:
            self.stats.branches_fetched += 1
            pred_taken = self.bpred.predict(pc, leader)
            di.pred_taken = pred_taken
            if pred_taken:
                pred_next = self.btb.predict(pc)  # None = target unknown
            else:
                pred_next = pc + 1
            self.bpred.update(pc, leader, bool(leader_rec.taken), pred_taken)
            if leader_rec.taken:
                self.btb.update(pc, leader_rec.next_pc)
            di.pred_target = pred_next
            return pred_next
        if inst.op is Opcode.JR:
            pred_next = self.ras[leader].pop()  # simlint: ignore — LIFO stack
            di.pred_target = pred_next
            return pred_next
        # Direct jumps: target known at fetch/decode, no bubble modelled.
        if inst.op is Opcode.JAL:
            self.ras[leader].push(pc + 1)
        di.pred_target = inst.target
        return inst.target

    def _handle_divergence(
        self,
        di: DynInst,
        group: ThreadGroup,
        leader: int,
        next_pcs: dict[int, int],
        pred_next: int | None,
    ) -> str:
        """Member threads disagree on the next PC: split the group.

        The subgroup whose path matches the front-end prediction keeps
        fetching; every other subgroup waits for the control instruction to
        resolve (its instructions would have been wrong-path).
        """
        self.stats.divergences_at_fetch += 1
        by_pc: dict[int, int] = {}
        for tid, next_pc in next_pcs.items():
            by_pc[next_pc] = by_pc.get(next_pc, 0) | (1 << tid)
        subgroups = self.sync.on_divergence(group, list(by_pc.values()), self.cycle)
        any_stalled = False
        for subgroup in subgroups:
            sub_leader = subgroup.leader
            if sub_leader != leader:
                self.bpred.sync_history(leader, sub_leader)
                self.ras[sub_leader].copy_from(self.ras[leader])
            sub_next = next_pcs[sub_leader]
            if sub_next != di.pc + 1:
                self.sync.on_taken_branch(subgroup, sub_next)
            if sub_next != pred_next:
                for tid in threads_of(subgroup.mask):
                    self.stalled_on_branch[tid] = di
                any_stalled = True
        if any_stalled:
            di.mispredicted = True
            self.stats.branch_mispredicts += 1
            if self.obs.tracing:
                self.obs.emit(
                    EventKind.MISPREDICT,
                    self.cycle,
                    tid=leader,
                    pc=di.pc,
                    seq=di.seq,
                    divergence=True,
                )
        return "divergence"
