"""Simulation statistics.

Counter conventions:

* *thread-instructions* count one unit per owning thread — a merged
  instruction with 3 threads in its ITID contributes 3.  All of the paper's
  percentage breakdowns (Figures 1, 5(b), 5(d)) are over thread-instructions,
  since that is the work a traditional SMT would have performed.
* *entries* count pipeline slots — a merged instruction contributes 1.  The
  gap between the two is exactly MMT's savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sync import FetchMode


class StatsConsistencyError(RuntimeError):
    """SimStats counters violate a cross-counter invariant."""


@dataclass
class SimStats:
    """All counters produced by one simulation run."""

    cycles: int = 0

    # Fetch.
    fetched_thread_insts: int = 0
    fetched_entries: int = 0
    fetch_sessions: int = 0  # (group, cycle) fetch activations
    fetched_by_mode: dict[FetchMode, int] = field(
        default_factory=lambda: {mode: 0 for mode in FetchMode}
    )
    icache_stall_cycles: int = 0
    fetch_stall_mispredict_cycles: int = 0

    # Decode / split.
    split_stage_inputs: int = 0
    split_stage_outputs: int = 0
    splits_performed: int = 0

    # Rename / dispatch.
    renamed_entries: int = 0
    rename_stalls_regs: int = 0
    rename_stalls_rob: int = 0
    rename_stalls_iq: int = 0
    rename_stalls_lsq: int = 0

    # Issue / execute.
    issued_entries: int = 0
    issued_fpu_entries: int = 0
    executed_entries: int = 0
    fu_contention_stalls: int = 0
    regfile_reads: int = 0
    regfile_writes: int = 0

    # Memory.
    load_accesses: int = 0
    store_accesses: int = 0
    ldst_port_stalls: int = 0
    store_forwards: int = 0

    # Branches.
    branches_fetched: int = 0
    branch_mispredicts: int = 0
    divergences_at_fetch: int = 0

    # Software remerge hints (extension).
    hint_parks: int = 0
    hint_releases: int = 0

    # LVIP.
    lvip_checks: int = 0
    lvip_predict_identical: int = 0
    lvip_mispredicts: int = 0
    lvip_squashed_insts: int = 0
    # Per-PC LVIP activity, copied from the predictor at end of run:
    # the surface the static oracle's per-site contract validates.
    lvip_site_checks: dict[int, int] = field(default_factory=dict)
    lvip_site_mispredicts: dict[int, int] = field(default_factory=dict)

    # Final RST sharing fraction, recorded at end of run so post-hoc
    # validation (campaign aggregation) does not need the live core.
    final_rst_sharing: float | None = None

    # Commit.
    committed_thread_insts: int = 0
    committed_entries: int = 0
    committed_per_thread: dict[int, int] = field(default_factory=dict)
    # Thread-instructions committed merged with >=2 threads (one execution
    # served several threads): the paper's execute-identical instructions.
    committed_exec_identical: int = 0
    # ... of which the merge was enabled by commit-time register merging.
    committed_exec_identical_regmerge: int = 0
    # Thread-instructions fetched merged but executed split: fetch-identical.
    committed_fetch_identical: int = 0
    register_merge_attempts: int = 0
    register_merge_successes: int = 0

    halted_threads: int = 0

    def validate(self) -> None:
        """Cross-check counter invariants; raises StatsConsistencyError.

        These relations hold by construction of the counter conventions
        (thread-instructions >= entries, mode breakdown partitions fetch,
        per-thread commits partition total commits, ...).  A violation
        means a stage updated one counter and skipped its sibling.
        """
        problems = []

        def check(condition: bool, message: str) -> None:
            if not condition:
                problems.append(message)

        check(
            self.fetched_entries <= self.fetched_thread_insts,
            f"fetched entries ({self.fetched_entries}) exceed "
            f"fetched thread-insts ({self.fetched_thread_insts})",
        )
        check(
            self.committed_entries <= self.committed_thread_insts,
            f"committed entries ({self.committed_entries}) exceed "
            f"committed thread-insts ({self.committed_thread_insts})",
        )
        check(
            sum(self.fetched_by_mode.values()) == self.fetched_thread_insts,
            "fetched_by_mode does not partition fetched thread-insts: "
            f"{sum(self.fetched_by_mode.values())} != "
            f"{self.fetched_thread_insts}",
        )
        check(
            sum(self.committed_per_thread.values())
            == self.committed_thread_insts,
            "committed_per_thread does not partition committed "
            f"thread-insts: {sum(self.committed_per_thread.values())} != "
            f"{self.committed_thread_insts}",
        )
        check(
            self.committed_thread_insts <= self.fetched_thread_insts,
            f"committed thread-insts ({self.committed_thread_insts}) exceed "
            f"fetched thread-insts ({self.fetched_thread_insts})",
        )
        check(
            self.committed_exec_identical + self.committed_fetch_identical
            <= self.committed_thread_insts,
            "identical breakdown exceeds committed thread-insts",
        )
        check(
            self.committed_exec_identical_regmerge
            <= self.committed_exec_identical,
            "regmerge-attributed commits exceed exec-identical commits",
        )
        check(
            self.lvip_predict_identical <= self.lvip_checks,
            f"LVIP identical predictions ({self.lvip_predict_identical}) "
            f"exceed LVIP checks ({self.lvip_checks})",
        )
        if self.lvip_site_checks:
            check(
                sum(self.lvip_site_checks.values()) == self.lvip_checks,
                "per-site LVIP checks do not partition total checks: "
                f"{sum(self.lvip_site_checks.values())} != {self.lvip_checks}",
            )
            check(
                sum(self.lvip_site_mispredicts.values())
                == self.lvip_mispredicts,
                "per-site LVIP mispredicts do not partition total "
                f"mispredicts: {sum(self.lvip_site_mispredicts.values())} "
                f"!= {self.lvip_mispredicts}",
            )
            check(
                set(self.lvip_site_mispredicts) <= set(self.lvip_site_checks),
                "LVIP mispredicted PCs that were never checked",
            )
        check(
            self.register_merge_successes <= self.register_merge_attempts,
            f"register merge successes ({self.register_merge_successes}) "
            f"exceed attempts ({self.register_merge_attempts})",
        )
        check(
            self.issued_fpu_entries <= self.issued_entries,
            f"FPU issues ({self.issued_fpu_entries}) exceed total issues "
            f"({self.issued_entries})",
        )
        if problems:
            raise StatsConsistencyError("; ".join(problems))

    def ipc(self) -> float:
        """Committed thread-instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.committed_thread_insts / self.cycles

    def lvip_hit_rate(self) -> float:
        """Fraction of LVIP checks that did not mispredict (0.0 if unused)."""
        if not self.lvip_checks:
            return 0.0
        return 1.0 - self.lvip_mispredicts / self.lvip_checks

    def mode_breakdown(self) -> dict[str, float]:
        """Fraction of fetched thread-instructions per fetch mode (Fig 5(d))."""
        total = sum(self.fetched_by_mode.values())
        if not total:
            return {mode.value: 0.0 for mode in FetchMode}
        return {
            mode.value: count / total for mode, count in self.fetched_by_mode.items()
        }

    def identified_breakdown(self) -> dict[str, float]:
        """Fractions for Figure 5(b), over committed thread-instructions.

        Keys: ``exec_identical`` (without register merging),
        ``exec_identical_regmerge`` (merged only thanks to register
        merging), ``fetch_identical`` (fetched together, executed apart),
        ``not_identical``.
        """
        total = self.committed_thread_insts
        if not total:
            return {
                "exec_identical": 0.0,
                "exec_identical_regmerge": 0.0,
                "fetch_identical": 0.0,
                "not_identical": 0.0,
            }
        exec_plain = (
            self.committed_exec_identical - self.committed_exec_identical_regmerge
        )
        not_identical = (
            total - self.committed_exec_identical - self.committed_fetch_identical
        )
        return {
            "exec_identical": exec_plain / total,
            "exec_identical_regmerge": self.committed_exec_identical_regmerge / total,
            "fetch_identical": self.committed_fetch_identical / total,
            "not_identical": not_identical / total,
        }
