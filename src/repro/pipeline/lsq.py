"""Load/Store Queue (paper §4.2.5, Table 2 LSQ rows).

Ordering/forwarding rules (per thread — each thread's accesses target its
own address space; multi-threaded contexts share one):

* a load may access memory only when every older store of the same thread
  has a known address (computed, i.e. past address generation);
* if the youngest such older store writes the load's word, the value is
  forwarded and no cache port is consumed;
* otherwise the load takes a load/store port and accesses the hierarchy,
  bounded by the MSHR file.

Splitting (Table 2): multi-threaded loads and stores stay merged — shared
memory, one access.  Multi-execution loads and stores are split into one
access per owning thread, performed *serially* (one per cycle); merged ME
loads additionally verify the LVIP prediction when the last access returns
(handled by the writeback stage).

Stores access the cache at commit (write-buffer semantics: commit proceeds
once the access is accepted; misses complete in the background).
"""

from __future__ import annotations

from repro.core.config import WorkloadType
from repro.core.itid import first_thread
from repro.obs.events import EventKind
from repro.pipeline.dyninst import DynInst, InstState

_ADDR_UNKNOWN_STATES = (InstState.DECODED, InstState.WAITING, InstState.ISSUED)


class LoadStoreQueue:
    """In-order queue of in-flight memory instructions."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.entries: list[DynInst] = []

    def has_space(self) -> bool:
        return len(self.entries) < self.size

    def allocate(self, di: DynInst) -> None:
        if not self.has_space():
            raise RuntimeError("LSQ overflow (rename must check has_space)")
        self.entries.append(di)

    def remove(self, di: DynInst) -> None:
        self.entries.remove(di)

    def __len__(self) -> int:
        return len(self.entries)

    # ---------------------------------------------------------------- loads
    def init_load_units(self, di: DynInst, wtype: WorkloadType) -> None:
        """Create the pending-access map once a load's address generation is
        done.  MT: one access regardless of ITID (shared memory, identical
        address).  ME: one per owning thread (separate address spaces)."""
        if wtype is WorkloadType.MULTI_THREADED:
            di.mem_pending = {first_thread(di.itid): None}
        else:
            di.mem_pending = {tid: None for tid in di.threads()}

    def process_loads(self, core) -> None:
        """Start pending load accesses, oldest first, one unit per load per
        cycle (ME units serialize), bounded by ports and MSHRs.

        Effects:
            writes: ldst_ports_left, stats
        """
        now = core.cycle
        for di in self.entries:
            if di.state is not InstState.WAITING_MEM or not di.inst.is_load:
                continue
            pending = [t for t, r in di.mem_pending.items() if r is None]
            if not pending:
                # All units started; a squash may have dropped the unit we
                # were waiting on before completion was scheduled.
                if di.mem_done_count == 0 and di.mem_pending:
                    di.mem_done_count = 1
                    core.schedule_completion(di, max(di.mem_pending.values()))
                continue
            tid = pending[0]
            rec = di.execs[tid]
            conflict = self._older_store(di, tid, rec.addr)
            if conflict == "block":
                continue
            if conflict is not None:
                # Store-to-load forwarding: value available next cycle.
                di.mem_pending[tid] = now + 1
                core.stats.store_forwards += 1
                if core.obs.tracing:
                    core.obs.emit(
                        EventKind.STORE_FORWARD,
                        now,
                        tid=tid,
                        pc=di.pc,
                        seq=di.seq,
                        addr=rec.addr,
                        store_seq=conflict.seq,
                    )
            else:
                if core.ldst_ports_left <= 0:
                    core.stats.ldst_port_stalls += 1
                    break
                ready = core.hierarchy.data_access(
                    core.asids[tid], rec.addr, False, now
                )
                if ready is None:
                    continue  # MSHR full; another load may still hit
                core.ldst_ports_left -= 1
                core.stats.load_accesses += 1
                di.mem_pending[tid] = max(ready, now + 1)
            if all(r is not None for r in di.mem_pending.values()):
                di.mem_done_count = 1
                core.schedule_completion(di, max(di.mem_pending.values()))

    def _older_store(self, load: DynInst, tid: int, addr: int):
        """'block', the forwarding store, or None (no conflict)."""
        bit = 1 << tid
        best = None
        for entry in self.entries:
            if entry is load:
                break
            if not entry.inst.is_store or not entry.itid & bit:
                continue
            if entry.state in _ADDR_UNKNOWN_STATES:
                return "block"
            if entry.execs[tid].addr == addr:
                best = entry
        return best

    # --------------------------------------------------------------- stores
    @staticmethod
    def store_accesses_needed(di: DynInst, wtype: WorkloadType) -> int:
        """Cache accesses a committing store must perform (Table 2)."""
        if wtype is WorkloadType.MULTI_THREADED:
            return 1
        return di.num_threads

    def try_commit_store(self, di: DynInst, core) -> bool:
        """Perform (at most one per cycle) of the store's commit accesses.

        Returns True once every required access has been accepted.
        """
        wtype = core.job.wtype
        needed = self.store_accesses_needed(di, wtype)
        if di.store_committed_count < needed:
            if core.ldst_ports_left <= 0:
                core.stats.ldst_port_stalls += 1
                return False
            threads = di.threads()
            tid = (
                first_thread(di.itid)
                if wtype is WorkloadType.MULTI_THREADED
                else threads[di.store_committed_count]
            )
            rec = di.execs[tid]
            ready = core.hierarchy.data_access(
                core.asids[tid], rec.addr, True, core.cycle
            )
            if ready is None:
                return False  # MSHR full: retry next cycle
            core.ldst_ports_left -= 1
            core.stats.store_accesses += 1
            di.store_committed_count += 1
        return di.store_committed_count >= needed
