"""Job descriptions: what the machine runs.

A :class:`Job` binds N hardware contexts to programs and address spaces.
The two paper workload categories map as:

* **multi-threaded** — one shared :class:`AddressSpace`, one program, one
  context per software thread, distinct stack pointers;
* **multi-execution** — one private :class:`AddressSpace` per context
  (separate processes), identical program text, per-instance input data,
  identical initial registers (including the stack pointer).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.config import WorkloadType
from repro.core.itid import MAX_THREADS
from repro.func.state import DEFAULT_STACK_TOP, STACK_STRIDE, ArchState
from repro.isa.program import Program
from repro.mem.channels import MessageNetwork
from repro.mem.memory import AddressSpace


class Job:
    """N contexts ready to run on the SMT/MMT core."""

    def __init__(
        self,
        name: str,
        wtype: WorkloadType,
        programs: Sequence[Program],
        address_spaces: Sequence[AddressSpace],
        stack_tops: Sequence[int],
        soft_tids: Sequence[int] | None = None,
        soft_nctx: int | None = None,
    ) -> None:
        if not 1 <= len(programs) <= MAX_THREADS:
            raise ValueError(f"job must have 1..{MAX_THREADS} contexts")
        if not len(programs) == len(address_spaces) == len(stack_tops):
            raise ValueError("per-context sequences must have equal length")
        if soft_tids is not None and len(soft_tids) != len(programs):
            raise ValueError("soft_tids must have one entry per context")
        text = programs[0].instructions
        for program in programs[1:]:
            if program.instructions is not text and (
                len(program.instructions) != len(text)
                or any(a is not b for a, b in zip(program.instructions, text))
            ):
                raise ValueError(
                    "all contexts must share identical program text "
                    "(SPMD assumption of the paper)"
                )
        self.name = name
        self.wtype = wtype
        self.programs = list(programs)
        self.address_spaces = list(address_spaces)
        self.stack_tops = list(stack_tops)
        #: Software-visible thread ids (what the TID instruction returns);
        #: hardware context ids are positional.  The Limit configuration
        #: gives every clone software tid 0 so they perform identical work.
        self.soft_tids = list(soft_tids) if soft_tids is not None else list(
            range(len(programs))
        )
        self.soft_nctx = soft_nctx if soft_nctx is not None else len(programs)
        #: Shared message network (message-passing jobs only).
        self.channels: MessageNetwork | None = (
            MessageNetwork() if wtype is WorkloadType.MESSAGE_PASSING else None
        )

    @property
    def num_contexts(self) -> int:
        return len(self.programs)

    def make_states(self) -> list[ArchState]:
        """Fresh architectural states for every context."""
        return [
            ArchState(
                self.programs[ctx],
                self.address_spaces[ctx],
                tid=self.soft_tids[ctx],
                nctx=self.soft_nctx,
                stack_top=self.stack_tops[ctx],
                channels=self.channels,
            )
            for ctx in range(self.num_contexts)
        ]

    # ------------------------------------------------------------- factories
    @classmethod
    def multi_threaded(
        cls, name: str, program: Program, num_threads: int
    ) -> "Job":
        """Threads of one process: shared memory, distinct stacks."""
        shared = AddressSpace(program.data)
        tops = [DEFAULT_STACK_TOP - t * STACK_STRIDE for t in range(num_threads)]
        return cls(
            name,
            WorkloadType.MULTI_THREADED,
            [program] * num_threads,
            [shared] * num_threads,
            tops,
        )

    @classmethod
    def multi_execution(
        cls,
        name: str,
        program: Program,
        per_instance_data: Sequence[Mapping[int, int | float]],
    ) -> "Job":
        """Instances of one binary with per-instance input data."""
        programs = [program.with_data(extra) for extra in per_instance_data]
        spaces = [AddressSpace(p.data) for p in programs]
        tops = [DEFAULT_STACK_TOP] * len(programs)
        return cls(name, WorkloadType.MULTI_EXECUTION, programs, spaces, tops)

    @classmethod
    def message_passing(
        cls,
        name: str,
        program: Program,
        per_instance_data: Sequence[Mapping[int, int | float]],
    ) -> "Job":
        """Ranked processes communicating through SEND/TRECV channels.

        Like multi-execution (separate address spaces), but each instance
        knows its rank (soft tid = context index) and the job carries a
        shared :class:`~repro.mem.channels.MessageNetwork`.
        """
        programs = [program.with_data(extra) for extra in per_instance_data]
        spaces = [AddressSpace(p.data) for p in programs]
        tops = [DEFAULT_STACK_TOP] * len(programs)
        return cls(
            name, WorkloadType.MESSAGE_PASSING, programs, spaces, tops
        )

    @classmethod
    def limit_clone(
        cls,
        name: str,
        program: Program,
        num_instances: int,
        soft_nctx: int | None = None,
    ) -> "Job":
        """The Limit configuration: identical instances with identical inputs.

        Every clone runs with software tid 0 (and ``soft_nctx`` software
        threads, defaulting to *num_instances*), so all clones perform
        byte-identical work — the upper bound on merged execution.
        """
        programs = [program] * num_instances
        spaces = [AddressSpace(program.data) for _ in range(num_instances)]
        tops = [DEFAULT_STACK_TOP] * num_instances
        return cls(
            name + "-limit",
            WorkloadType.MULTI_EXECUTION,
            programs,
            spaces,
            tops,
            soft_tids=[0] * num_instances,
            soft_nctx=soft_nctx if soft_nctx is not None else num_instances,
        )
