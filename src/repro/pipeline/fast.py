"""Fast-path pipeline engine: a drop-in, cycle-exact `SMTCore` twin.

:class:`FastSMTCore` produces bit-identical architectural state, statistics,
and per-cycle fetch/commit traces to the reference :class:`SMTCore` while
running several times faster.  Nothing about the *model* changes — only how
the same transitions are computed:

* **functional-first execution** — each context's oracle is replaced by a
  :class:`~repro.func.fastexec.FastExecutor` (per-PC pre-compiled dispatch)
  and, for independent contexts, stepped *ahead* in batches of
  ``_BATCH`` records that the timing loop then replays (struct-of-arrays:
  a flat record list plus a cursor, instead of deque churn);
* **a monolithic cycle loop** — the five pipeline stages are inlined into
  one function with every configuration flag, statistic counter, and
  mutable structure hoisted into locals, eliminating the per-cycle
  attribute-lookup and method-call overhead that dominates the reference;
* **fallbacks over forks** — every divergence-sensitive event (traps,
  sync-FSM transitions, LVIP mispredict squashes, software hints, store
  commit) delegates to the *reference* implementation inherited from
  ``SMTCore``, so the rare paths are the proven paths.

Observability splits on the observer's ``fast_capable`` flag.  A
fast-capable observer (:class:`~repro.obs.sampling.SampledObserver`) is
serviced from *inside* the fast loop: one precomputed boundary-cycle
compare per iteration, with the localized counters flushed into
``SimStats`` at each boundary so interval samples land at exactly the
reference cycles with exactly the reference deltas — rare-path, memory,
and sync events still reach an attached flight recorder, and the
no-progress watchdog fires at boundary granularity.  Any *other* active
observer (full event sinks need per-stage emission sites) drops
:meth:`run` back to the reference ``SMTCore.run`` loop entirely — event
order and watchdog semantics preserved exactly, still accelerated by the
fast functional oracles.  The reference core remains untouched as the
differential oracle.
"""

from __future__ import annotations

import gc
import os

from repro.analysis.specialize import (
    PATH_BITS,
    SpecializationManifest,
    SpecializationViolation,
    analyze_specialization,
)
from repro.core.config import WorkloadType
from repro.core.itid import PAIRS, PAIRS_IN_MASK
from repro.core.sync import FetchMode
from repro.func.executor import ExecutionError
from repro.func.fastexec import FastExecutor, decode_program
from repro.isa.opcodes import DEFAULT_LATENCY, OpClass, Opcode
from repro.obs.observer import Observer
from repro.pipeline.config import MachineConfig
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.issue_stage import SimulationInvariantError
from repro.pipeline.job import Job
from repro.pipeline.smt import SMTCore
from repro.pipeline.stats import SimStats

from repro.core.config import MMTConfig

__all__ = ["FastSMTCore", "ENGINES", "resolve_engine"]

#: Functional records produced per stream refill.  Large enough to amortize
#: the batching overhead, small enough to bound memory (~a few MB of
#: records per context).
_BATCH = 8192

#: Mask-indexed lookup tables for ITIDs (MAX_THREADS == 4 -> 16 masks).
_TOF = tuple(tuple(t for t in range(4) if m >> t & 1) for m in range(16))
_POPC = tuple(bin(m).count("1") for m in range(16))
_FT = tuple((m & -m).bit_length() - 1 if m else -1 for m in range(16))
#: For two-thread masks, the RST pair-bit index of that thread pair.
_PB = tuple(
    PAIRS_IN_MASK[m][0] if _POPC[m] == 2 else -1 for m in range(16)
)
#: RST pair-bitmask of the pairs fully inside each mask
#: (``RegisterSharingTable._pairs_mask_within`` as a table).
_PW = tuple(
    sum(1 << b for b in PAIRS_IN_MASK[m]) for m in range(16)
)
#: RST pair-bitmask of the pairs touching any thread of each mask
#: (``RegisterSharingTable._pairs_mask_touching`` as a table).
_PT = tuple(
    sum(1 << i for i, (t, u) in enumerate(PAIRS) if m >> t & 1 or m >> u & 1)
    for m in range(16)
)

#: Rare-path bits of the specialization masks, as plain ints.
_B_CONTROL = PATH_BITS["control"]
_B_HINT = PATH_BITS["hint"]
_B_SYNC = PATH_BITS["sync"]
_B_LVIP = PATH_BITS["lvip_verify"]
_B_STORE = PATH_BITS["store_commit"]
_B_TRAP = PATH_BITS["trap"]

#: Specialization manifests are pure functions of (program content,
#: context count), so one copy serves every core a worker process builds.
_MANIFEST_MEMO: dict[tuple[str, int], SpecializationManifest] = {}


def manifest_for(program, nctx: int) -> SpecializationManifest:
    """Memoised :func:`~repro.analysis.specialize.analyze_specialization`.

    Shared by core construction and the campaign cache-key layer
    (:meth:`~repro.harness.experiment.CampaignJob.key_data`), so a worker
    process analyses each distinct program once however many cores and
    job keys need the manifest.
    """
    key = (program.digest(), nctx)
    manifest = _MANIFEST_MEMO.get(key)
    if manifest is None:
        manifest = analyze_specialization(program, nctx)
        _MANIFEST_MEMO[key] = manifest
    return manifest


def _paranoid_env() -> bool:
    return os.environ.get("REPRO_SPECIALIZE_PARANOID", "") not in ("", "0")


class FastSMTCore(SMTCore):
    """Cycle-exact fast engine; see the module docstring for the design."""

    def __init__(
        self,
        machine: MachineConfig,
        mmt: MMTConfig,
        job: Job,
        strict: bool = True,
        warm_caches: bool = True,
        start_delays: list[int] | None = None,
        obs: Observer | None = None,
        trace: list | None = None,
        specialize: bool = True,
    ) -> None:
        super().__init__(
            machine,
            mmt,
            job,
            strict=strict,
            warm_caches=warm_caches,
            start_delays=start_delays,
            obs=obs,
        )
        #: Optional per-cycle trace sink: the fast loop appends
        #: ``("F", cycle, tid, pc, gid, mask, mode, count)`` and
        #: ``("C", cycle, tid, pc, seq, itid, threads)`` tuples, mirroring
        #: the reference observer's FETCH/COMMIT events.
        self.trace = trace
        #: True once :meth:`_run_fast` actually ran (False after a
        #: reference-loop fallback) — the telemetry test suite asserts on
        #: this to prove sampled runs stayed in the fast loop.
        self.ran_fast_loop = False
        # Swap every oracle for its pre-decoded twin (same ContextState, so
        # architectural state and the replay/squash machinery are unchanged).
        # Contexts running the same program share one dispatch table.
        ops_by_program: dict[int, list] = {}
        fast = []
        for oracle in self.oracles:
            program = oracle.state.program
            key = id(program.instructions)
            ops = ops_by_program.get(key)
            if ops is None:
                ops = decode_program(program)
                ops_by_program[key] = ops
            fast.append(FastExecutor(oracle.state, ops=ops))
        self.oracles = fast

        # Functional-first streaming is only sound when contexts cannot
        # interact mid-run: message-passing channels and shared address
        # spaces (multi-threaded workloads) require fetch-order stepping.
        spaces = job.address_spaces
        eligible = job.channels is None and (
            self.num_threads == 1
            or len({id(s) for s in spaces}) == len(spaces)
        )
        self._stream = [eligible] * self.num_threads
        self._recs: list[list] = [[] for _ in range(self.num_threads)]
        self._pos = [0] * self.num_threads

        # Static specialization: per-PC guard-free run lengths (consumed
        # by the fetch loop's batch path) and rare-path impossibility
        # masks (consumed by the paranoid runtime checks).  One manifest
        # per distinct program; the reference-delegation boundary is
        # untouched, so a wrong manifest can only batch records the
        # guards would have accepted anyway — paranoid mode turns any
        # contradiction into a hard SpecializationViolation.
        self.specialize = specialize
        self.paranoid_checks = 0
        self._paranoid = specialize and _paranoid_env()
        self._spec_run: list[list[int] | None] = [None] * self.num_threads
        self._spec_mask: list[list[int] | None] = [None] * self.num_threads
        self.spec_manifests: list[SpecializationManifest | None] = [
            None
        ] * self.num_threads
        if specialize:
            # Keyed by content digest, not instruction identity: contexts
            # sharing program text but carrying per-instance data images
            # get their own manifests, because the trap refinement reads
            # initial memory through the value lattice.
            nctx = self.num_threads
            runs_by_key: dict[str, list[int]] = {}
            masks_by_key: dict[str, list[int]] = {}
            man_by_key: dict[str, SpecializationManifest] = {}
            for tid, oracle in enumerate(self.oracles):
                program = oracle.state.program
                key = program.digest()
                if key not in man_by_key:
                    manifest = manifest_for(program, nctx)
                    man_by_key[key] = manifest
                    runs_by_key[key] = manifest.plain_runs()
                    masks_by_key[key] = manifest.impossible_masks()
                self.spec_manifests[tid] = man_by_key[key]
                self._spec_run[tid] = runs_by_key[key]
                self._spec_mask[tid] = masks_by_key[key]

    # ----------------------------------------------------- record streaming
    def _refill(self, tid: int) -> None:
        """Run the functional oracle ahead by up to ``_BATCH`` records.

        A trap (``ExecutionError``) or HALT ends streaming for the thread:
        the failing step mutates nothing, so the trap re-raises inline at
        the architecturally correct fetch once the buffered records drain.
        The oracle's dispatch table is driven directly, skipping
        ``FastExecutor.step``'s per-call re-validation (its halted and PC
        bound checks are replicated here; un-compiled PCs take the
        reference ``step``).
        """
        recs = self._recs[tid]
        recs.clear()
        self._pos[tid] = 0
        oracle = self.oracles[tid]
        state = oracle.state
        ops = oracle._ops
        nops = len(ops)
        slow_step = oracle.step
        append = recs.append
        instret = oracle.instret
        try:
            for _ in range(_BATCH):
                if state.halted:
                    self._stream[tid] = False
                    break
                pc = state.pc
                fn = ops[pc] if 0 <= pc < nops else None
                if fn is None:
                    oracle.instret = instret
                    append(slow_step())
                    instret = oracle.instret
                else:
                    append(fn(state))
                    instret += 1
        except ExecutionError:
            # The failing step mutated nothing, so ``state.pc`` is the
            # trapping PC: in paranoid mode, assert the manifest never
            # ruled a trap out here (this dynamically validates the
            # value-lattice DIV/REM refinement).
            if self._paranoid:
                masks = self._spec_mask[tid]
                pc = state.pc
                if masks is not None and 0 <= pc < len(masks):
                    if masks[pc] & _B_TRAP:
                        raise SpecializationViolation(
                            f"trap fired at pc {pc} (context {tid}) where "
                            f"the specialization manifest proved traps "
                            f"impossible"
                        ) from None
                    self.paranoid_checks += 1
            self._stream[tid] = False
        finally:
            oracle.instret = instret

    def _peek_pc(self, tid: int) -> int | None:
        replay = self.replay[tid]
        if replay:
            return replay[0].pc
        if self.fetch_done[tid]:
            return None
        pos = self._pos[tid]
        recs = self._recs[tid]
        if pos < len(recs):
            return recs[pos].pc
        return self.oracles[tid].state.pc

    def _next_record(self, tid: int):
        replay = self.replay[tid]
        if replay:
            return replay.popleft()
        pos = self._pos[tid]
        recs = self._recs[tid]
        if pos < len(recs):
            self._pos[tid] = pos + 1
            return recs[pos]
        if self._stream[tid]:
            self._refill(tid)
            if recs:
                self._pos[tid] = 1
                return recs[0]
        return self.oracles[tid].step()

    # ------------------------------------------------------------------ run
    def run(self) -> SimStats:
        """Run to completion, cycle-exact with the reference core.

        A fast-capable observer (``obs.fast_capable``, i.e. a
        :class:`~repro.obs.sampling.SampledObserver`) is serviced from
        inside the fast loop — interval samples at exactly the reference
        boundaries, rare-path events into the flight recorder, watchdog
        at boundary granularity.  Any other active observer needs the
        per-stage hooks, so the reference loop runs instead, still
        accelerated by the fast oracles and record streams.
        """
        obs = self.obs
        if obs.active and not obs.fast_capable:
            if self.trace is not None:
                raise ValueError(
                    "trace capture requires the fast loop; detach the observer"
                )
            return SMTCore.run(self)
        return self._run_fast()

    # --------------------------------------------------------- rare helpers
    def _commit_regmerge(self, di, owners, valid_mask: int, dst: int) -> None:
        """Commit-time register merging, exactly as the reference commit."""
        active_mask = 0
        for tid in range(self.num_threads):
            if not self.finished[tid]:
                active_mask |= 1 << tid
        value = di.execs[owners[0]].result
        regfile = self.regfile
        rat = self.rat
        stats = self.stats

        def read_other(u: int):
            preg = rat.get(u, dst)
            if not regfile.ready[preg]:
                return None
            stats.regfile_reads += 1
            return regfile.value[preg]

        before = self.regmerge.attempts
        merged = self.regmerge.try_merge(
            valid_mask, dst, value, self.rst, read_other, active_mask
        )
        stats.register_merge_attempts += self.regmerge.attempts - before
        stats.register_merge_successes += merged

    # -------------------------------------------------------- the fast loop
    def _run_fast(self) -> SimStats:
        cfg = self.config
        mmt = self.mmt
        stats = self.stats
        strict = self.strict
        nthreads = self.num_threads
        is_mt = self.job.wtype is WorkloadType.MULTI_THREADED

        # Constant configuration, hoisted.
        limit = cfg.max_cycles
        fetch_width = cfg.fetch_width
        groups_per_cycle = cfg.fetch_groups_per_cycle
        decode_buffer_size = cfg.decode_buffer_size
        issue_width = cfg.issue_width
        commit_width = cfg.commit_width
        num_alu = cfg.num_alu
        num_fpu = cfg.num_fpu
        rob_size = cfg.rob_size
        iq_size = cfg.iq_size
        lsq_size = cfg.lsq_size
        ldst_ports = cfg.ldst_ports
        mispredict_penalty = cfg.mispredict_penalty
        l1_latency = cfg.memory.l1_latency
        shared_fetch = mmt.shared_fetch
        use_hints = mmt.use_hints
        register_merging = mmt.register_merging
        remerge_drain = mmt.remerge_drain
        merge_ports = self.regmerge.read_ports
        trace_blocks = self.trace_model.blocks_per_fetch()

        # Mutable structures, hoisted (all are mutated in place everywhere,
        # including by the delegated squash/sync/hint paths, so object
        # identity is stable for the whole run).
        states = self.states
        oracles = self.oracles
        replay = self.replay
        recs_by_tid = self._recs
        pos = self._pos
        stream = self._stream
        icount = self.icount
        fetch_stall_until = self.fetch_stall_until
        stalled_on_branch = self.stalled_on_branch
        fetch_done = self.fetch_done
        finished = self.finished
        thread_queues = self.thread_queues
        rob = self.rob
        iq = self.iq
        decode_buffer = self.decode_buffer
        lsq = self.lsq
        lsq_entries = lsq.entries
        agen_events = self._agen_events
        complete_events = self._complete_events
        regfile = self.regfile
        reg_value = regfile.value
        reg_ready = regfile.ready
        map_refs = regfile._map_refs
        src_refs = regfile._src_refs
        free_pregs = regfile._free
        rat_map = self.rat._map
        rst = self.rst
        rst_bits = rst._bits
        rst_taint = rst._taint
        shared_execute = mmt.shared_execute
        lvip_predict = self.lvip.predict_identical
        regmerge = self.regmerge
        no_active_writer = regmerge.no_active_writer
        sync = self.sync
        catchup_target = sync._catchup_target
        fetch_latency = self.hierarchy.fetch_latency
        data_access = self.hierarchy.data_access
        mshr_entries = self.hierarchy.mshr._entries
        mshr_tick = self.hierarchy.mshr.tick
        asids = self.asids
        trace = self.trace
        fbm = stats.fetched_by_mode
        spec_run_by_tid = self._spec_run
        spec_mask_by_tid = self._spec_mask
        paranoid = self._paranoid

        # Sampled observability.  ``run`` has already diverted any
        # non-fast-capable observer to the reference loop, so here the
        # observer either is inert or implements the SampledObserver
        # contract: the loop pays one int compare per cycle against the
        # next boundary, and only at a boundary flushes the sampled
        # counters and calls in.  ``obs_tracing`` keeps ``obs.now``
        # current so delegated-path/memory/sync emissions into a flight
        # recorder carry correct cycle timestamps.
        self.ran_fast_loop = True
        obs = self.obs
        obs_active = obs.active
        obs_tracing = obs.tracing
        if obs_active:
            next_obs = obs.begin_fast_run(self)
            obs_tick = obs.fast_tick
        else:
            next_obs = limit + 1
            obs_tick = None

        tof = _TOF
        popc = _POPC
        ft = _FT
        pb = _PB
        pw = _PW
        pt = _PT
        DECODED = InstState.DECODED
        WAITING = InstState.WAITING
        ISSUED = InstState.ISSUED
        WAITING_MEM = InstState.WAITING_MEM
        DONE = InstState.DONE
        COMMITTED = InstState.COMMITTED
        # id()-keyed so the hot lookup hashes a plain int instead of going
        # through the (Python-level) enum __hash__.
        lat_by_id = {id(k): v for k, v in DEFAULT_LATENCY.items()}
        FADD = OpClass.FADD
        FMUL = OpClass.FMUL
        FDIV = OpClass.FDIV
        DETECT = FetchMode.DETECT
        CATCHUP = FetchMode.CATCHUP
        MERGE = FetchMode.MERGE
        HINT_OP = Opcode.HINT
        HALT_OPC = Opcode.HALT
        SEND_OP = Opcode.SEND
        TRECV_OP = Opcode.TRECV
        TID_OP = Opcode.TID
        new_di = DynInst.__new__
        num_regs_total = regfile.num_regs

        # Prototype instance dict for DynInst: entries are born by copying
        # this and overwriting the per-instruction fields, replacing the 26
        # interpreted attribute stores of ``DynInst.__init__`` with one
        # C-level dict copy (the class intentionally has no ``__slots__``).
        di_defaults = {
            "state": DECODED,
            "pdst": None,
            "pdst_by_tid": None,
            "merged_via_regmerge": False,
            "is_exec_merged": False,
            "complete_cycle": None,
            "pred_taken": None,
            "pred_target": None,
            "mispredicted": False,
            "lvip_predicted_identical": None,
            "mem_pending": None,
            "mem_done_count": 0,
            "store_committed_count": 0,
            "lsq_index": None,
            "dead": False,
            "lvip_mispredicted": False,
        }
        di_new = di_defaults.copy

        # Localized statistics (flushed additively in the finally block so
        # direct increments from delegated paths still sum correctly).
        c_thread = c_entries = c_exec_ident = c_exec_ident_rm = 0
        c_fetch_ident = halted_local = 0
        commit_counts = [0] * nthreads
        executed_local = rf_writes = rf_reads = 0
        issued_local = issued_fpu_local = fu_stalls = mispred_stall = 0
        load_acc = store_fwd = port_stalls = 0
        renamed_local = split_in = split_out = splits_local = 0
        stall_rob = stall_iq = stall_lsq = stall_regs = 0
        lvip_checks_local = lvip_pred_local = rst_updates_local = 0
        f_thread = f_entries = f_sessions = icache_stall = 0
        paranoid_local = 0
        # Register allocation bookkeeping (flushed like the statistics;
        # delegated paths call regfile.alloc directly and keep their own).
        alloc_count = 0
        min_free = num_regs_total

        # Issue-wakeup scoreboard.  Readiness is monotonic while an entry
        # waits (source pregs hold src claims, so they are never freed and
        # re-allocated under a waiter), so instead of rescanning the whole
        # issue queue every cycle the fast loop wakes waiters when their
        # last source is written back.  ``ready_list`` holds (tick, entry)
        # pairs; ticks are assigned in rename order, which is exactly the
        # reference's issue-queue scan order, so sorting by tick reproduces
        # the reference's oldest-first selection bit for bit.  Squashed
        # entries are dropped lazily via their ``dead`` flag.
        waiters: dict[int, list] = {}
        ready_list: list = []
        iq_tick = 0

        # Fetch-side closures over the hoisted state (created once).
        def peek(tid: int):
            r = replay[tid]
            if r:
                return r[0].pc
            if fetch_done[tid]:
                return None
            p = pos[tid]
            rl = recs_by_tid[tid]
            return rl[p].pc if p < len(rl) else states[tid].pc

        refill = self._refill

        def next_record(tid: int):
            r = replay[tid]
            if r:
                return r.popleft()
            p = pos[tid]
            rl = recs_by_tid[tid]
            if p < len(rl):
                pos[tid] = p + 1
                return rl[p]
            if stream[tid]:
                refill(tid)
                if rl:  # refill reuses the same list object
                    pos[tid] = 1
                    return rl[0]
            return oracles[tid].step()

        def group_pc(group):
            gpc = None
            for t in tof[group.mask]:
                tp = peek(t)
                if tp is None:
                    return None
                if gpc is None:
                    gpc = tp
                elif gpc != tp:
                    raise RuntimeError(
                        f"group PC invariant violated: {group!r} at {gpc} vs {tp}"
                    )
            return gpc

        def group_stalled(group, now: int) -> bool:
            if group.drain_pending:
                if (
                    register_merging
                    and now - group.created_cycle < remerge_drain
                    and any(icount[t] > 0 for t in tof[group.mask])
                ):
                    return True
                group.drain_pending = False
            for t in tof[group.mask]:
                if fetch_stall_until[t] > now:
                    return True
                if stalled_on_branch[t] is not None:
                    return True
            return False

        seqno = self._seq
        commit_rr = self._commit_rr
        cycle = self.cycle
        #: WAITING_MEM loads not yet scheduled for completion; the LSQ load
        #: phase is a no-op (and skipped) while this is zero.  Maintained at
        #: the agen/schedule sites; recomputed after an LVIP squash (the
        #: only path that can kill a counted load).
        pending_loads = 0
        groups = sync.groups  # one list object for the whole run
        # The timing loop allocates heavily (entries, records, event lists)
        # but creates no cycles the collector could ever reclaim mid-run, so
        # generation-0 scans are pure overhead.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while not all(finished):
                if cycle >= limit:
                    raise RuntimeError(
                        f"simulation exceeded {limit} cycles "
                        f"(finished={finished}, cycle={cycle})"
                    )
                cycle += 1
                self.cycle = cycle
                if obs_tracing:
                    obs.now = cycle
                if mshr_entries:
                    mshr_tick(cycle)
                regmerge._ports_left = merge_ports
                self.ldst_ports_left = ldst_ports

                # ------------------------------------------------- commit
                budget = commit_width
                progress = True
                while budget > 0 and progress:
                    progress = False
                    for offset in range(nthreads):
                        if budget <= 0:
                            break
                        tid = (commit_rr + offset) % nthreads
                        queue = thread_queues[tid]
                        if not queue:
                            continue
                        di = queue[0]
                        if di.state is not DONE:
                            continue
                        itid = di.itid
                        owners = tof[itid]
                        k = len(owners)
                        if k > 1:
                            aligned = True
                            for u in owners:
                                if thread_queues[u][0] is not di:
                                    aligned = False
                                    break
                            if not aligned:
                                continue
                        inst = di.inst
                        if inst.is_store:
                            if paranoid:
                                m = spec_mask_by_tid[owners[0]]
                                if m is not None and m[di.pc] & _B_STORE:
                                    raise SpecializationViolation(
                                        f"store commit fired at pc {di.pc} "
                                        f"marked store-commit-impossible"
                                    )
                                paranoid_local += 1
                            if not lsq.try_commit_store(di, self):
                                continue
                        # _commit(di), inlined.
                        c_thread += k
                        c_entries += 1
                        if k == 1:
                            commit_counts[tid] += 1
                            queue.popleft()
                            icount[tid] -= 1
                            if di.fetch_merged_width >= 2:
                                c_fetch_ident += 1
                        else:
                            c_exec_ident += k
                            if di.merged_via_regmerge:
                                c_exec_ident_rm += k
                            for u in owners:
                                commit_counts[u] += 1
                                thread_queues[u].popleft()
                                icount[u] -= 1
                        dst = inst.dst
                        if dst is not None:
                            valid_mask = 0
                            pbt = di.pdst_by_tid
                            pdst = di.pdst
                            for u in owners:
                                prev = di.prev_map[u]
                                refs = map_refs[prev] - 1
                                if refs < 0:
                                    raise RuntimeError(
                                        f"negative map refcount on p{prev}"
                                    )
                                map_refs[prev] = refs
                                if refs == 0 and src_refs[prev] == 0:
                                    free_pregs.append(prev)
                                cur = (
                                    pdst if pbt is None else pbt.get(u, pdst)
                                )
                                if rat_map[u][dst] == cur:
                                    no_active_writer[u][dst] = True
                                    valid_mask |= 1 << u
                            if (
                                register_merging
                                and valid_mask
                                and pbt is None
                                and (
                                    di.fetch_mode is DETECT
                                    or di.fetch_mode is CATCHUP
                                )
                            ):
                                self._commit_regmerge(di, owners, valid_mask, dst)
                        for preg in di.psrcs:
                            refs = src_refs[preg] - 1
                            if refs < 0:
                                raise RuntimeError(
                                    f"negative source refcount on p{preg}"
                                )
                            src_refs[preg] = refs
                            if refs == 0 and map_refs[preg] == 0:
                                free_pregs.append(preg)
                        if inst.is_mem:
                            lsq_entries.remove(di)
                        rob.remove(di)
                        di.state = COMMITTED
                        if trace is not None:
                            trace.append(
                                ("C", cycle, owners[0], di.pc, di.seq, itid, k)
                            )
                        if di.halt:
                            for u in owners:
                                if not finished[u]:
                                    finished[u] = True
                                    halted_local += 1
                        budget -= 1
                        progress = True
                commit_rr = (commit_rr + 1) % nthreads

                # ---------------------------------------------- writeback
                agen = agen_events.pop(cycle, None)
                if agen is not None:
                    for di in agen:
                        if di.dead:
                            continue
                        di.state = WAITING_MEM
                        pending_loads += 1
                        if is_mt:
                            di.mem_pending = {ft[di.itid]: None}
                        else:
                            di.mem_pending = {t: None for t in tof[di.itid]}
                done_events = complete_events.pop(cycle, None)
                if done_events is not None:
                    for di in done_events:
                        if di.dead:
                            continue
                        inst = di.inst
                        if (
                            inst.is_load
                            and di.lvip_predicted_identical
                            and popc[di.itid] >= 2
                            and di.pdst_by_tid is None
                        ):
                            if paranoid:
                                m = spec_mask_by_tid[ft[di.itid]]
                                if m is not None and m[di.pc] & _B_LVIP:
                                    raise SpecializationViolation(
                                        f"LVIP verify fired at pc {di.pc} "
                                        f"marked lvip-verify-impossible"
                                    )
                                paranoid_local += 1
                            self._verify_lvip(di)
                            if di.lvip_mispredicted:
                                # The squash may have killed counted loads
                                # (or re-armed one via drop_thread).
                                n = 0
                                for e in lsq_entries:
                                    if (
                                        e.state is WAITING_MEM
                                        and e.mem_done_count == 0
                                        and e.inst.is_load
                                    ):
                                        n += 1
                                pending_loads = n
                        if inst.dst is not None:
                            # _write_results(di), inlined.  Re-read after
                            # the LVIP check: it may split the destination.
                            pbt = di.pdst_by_tid
                            if pbt is not None:
                                written = set()
                                for u, preg in pbt.items():
                                    if preg not in written:
                                        reg_value[preg] = di.execs[u].result
                                        reg_ready[preg] = True
                                        rf_writes += 1
                                        written.add(preg)
                                        wl = waiters.pop(preg, None)
                                        if wl is not None:
                                            for m in wl:
                                                wdi = m[2]
                                                if wdi.dead:
                                                    continue
                                                n = m[0] - 1
                                                m[0] = n
                                                if n == 0:
                                                    ready_list.append(
                                                        (m[1], wdi)
                                                    )
                            else:
                                owners = tof[di.itid]
                                r0 = di.execs[owners[0]].result
                                if strict and len(owners) >= 2:
                                    r0_float = isinstance(r0, float)
                                    for u in owners[1:]:
                                        ru = di.execs[u].result
                                        if ru is r0 and ru == r0:
                                            continue
                                        if (
                                            isinstance(ru, float) != r0_float
                                            or r0 != ru
                                        ):
                                            results = [
                                                di.execs[t].result
                                                for t in owners
                                            ]
                                            raise SimulationInvariantError(
                                                f"merged {di!r} produced "
                                                f"differing results {results!r}"
                                            )
                                pdst = di.pdst
                                reg_value[pdst] = r0
                                reg_ready[pdst] = True
                                rf_writes += 1
                                wl = waiters.pop(pdst, None)
                                if wl is not None:
                                    for m in wl:
                                        wdi = m[2]
                                        if wdi.dead:
                                            continue
                                        n = m[0] - 1
                                        m[0] = n
                                        if n == 0:
                                            ready_list.append((m[1], wdi))
                        di.state = DONE
                        di.complete_cycle = cycle
                        executed_local += 1
                        if di.mispredicted:
                            # _resolve_branch(di), inlined.
                            resume = cycle + mispredict_penalty
                            for u in range(nthreads):
                                if stalled_on_branch[u] is di:
                                    stalled_on_branch[u] = None
                                    if fetch_stall_until[u] < resume:
                                        fetch_stall_until[u] = resume
                            mispred_stall += mispredict_penalty

                # ------------------------------------------ LSQ load phase
                if pending_loads:
                    ports_left = self.ldst_ports_left
                    for di in lsq_entries:
                        if di.state is not WAITING_MEM or not di.inst.is_load:
                            continue
                        mem_pending = di.mem_pending
                        pending = [
                            t for t, r in mem_pending.items() if r is None
                        ]
                        if not pending:
                            if di.mem_done_count == 0 and mem_pending:
                                di.mem_done_count = 1
                                pending_loads -= 1
                                when = max(mem_pending.values())
                                if when < cycle + 1:
                                    when = cycle + 1
                                lst = complete_events.get(when)
                                if lst is None:
                                    complete_events[when] = [di]
                                else:
                                    lst.append(di)
                            continue
                        tid = pending[0]
                        addr = di.execs[tid].addr
                        # _older_store, inlined.
                        bit = 1 << tid
                        best = None
                        blocked = False
                        for entry in lsq_entries:
                            if entry is di:
                                break
                            if not entry.inst.is_store or not entry.itid & bit:
                                continue
                            st = entry.state
                            if st is DECODED or st is WAITING or st is ISSUED:
                                blocked = True
                                break
                            if entry.execs[tid].addr == addr:
                                best = entry
                        if blocked:
                            continue
                        if best is not None:
                            mem_pending[tid] = cycle + 1
                            store_fwd += 1
                        else:
                            if ports_left <= 0:
                                port_stalls += 1
                                break
                            ready = data_access(asids[tid], addr, False, cycle)
                            if ready is None:
                                continue  # MSHR full; another load may hit
                            ports_left -= 1
                            load_acc += 1
                            mem_pending[tid] = (
                                ready if ready > cycle else cycle + 1
                            )
                        if all(
                            r is not None for r in mem_pending.values()
                        ):
                            di.mem_done_count = 1
                            pending_loads -= 1
                            when = max(mem_pending.values())
                            if when < cycle + 1:
                                when = cycle + 1
                            lst = complete_events.get(when)
                            if lst is None:
                                complete_events[when] = [di]
                            else:
                                lst.append(di)
                    self.ldst_ports_left = ports_left

                # -------------------------------------------------- issue
                if ready_list:
                    ready_list.sort()
                    issued = 0
                    alu_slots = num_alu
                    fpu_slots = num_fpu
                    # Compaction is lazy: ``kept`` stays None (and the list
                    # untouched) until the first entry actually leaves, so the
                    # prefix of survivors is one C-level slice, not appends.
                    kept = None
                    n_r = len(ready_list)
                    j = 0
                    while j < n_r:
                        if issued >= issue_width:
                            break
                        item = ready_list[j]
                        j += 1
                        di = item[1]
                        if di.dead:
                            if kept is None:
                                kept = ready_list[: j - 1]
                            continue
                        d_inst = di.inst
                        klass = d_inst.klass
                        is_fpu = klass is FADD or klass is FMUL or klass is FDIV
                        if is_fpu:
                            if fpu_slots <= 0:
                                fu_stalls += 1
                                if kept is not None:
                                    kept.append(item)
                                continue
                            fpu_slots -= 1
                        else:
                            if alu_slots <= 0:
                                fu_stalls += 1
                                if kept is not None:
                                    kept.append(item)
                                continue
                            alu_slots -= 1
                        psrcs = di.psrcs
                        nsrc = len(psrcs)
                        if strict and nsrc == 1:
                            # _verify_sources(di) for the one-source case,
                            # without the values list / zip scaffolding.
                            got = reg_value[psrcs[0]]
                            for u in tof[di.itid]:
                                want = di.execs[u].src_vals[0]
                                if got is want and got == want:
                                    continue
                                if (
                                    isinstance(got, float)
                                    != isinstance(want, float)
                                    or got != want
                                ):
                                    raise SimulationInvariantError(
                                        f"t{u} {di!r}: operand {got!r} "
                                        f"!= oracle {want!r}"
                                    )
                        elif strict and nsrc:
                            # _verify_sources(di), inlined.  Values flow as
                            # the same objects from the oracle records into
                            # the register file, so the identity + equality
                            # short-circuit almost always fires (NaN falls
                            # through to the full reference check).
                            values = [reg_value[p] for p in psrcs]
                            for u in tof[di.itid]:
                                expected = di.execs[u].src_vals
                                for got, want in zip(values, expected):
                                    if got is want and got == want:
                                        continue
                                    if (
                                        isinstance(got, float)
                                        != isinstance(want, float)
                                        or got != want
                                    ):
                                        raise SimulationInvariantError(
                                            f"t{u} {di!r}: operand {got!r} "
                                            f"!= oracle {want!r}"
                                        )
                        rf_reads += nsrc
                        di.state = ISSUED
                        # All latencies are >= 1, so the reference's
                        # next-cycle clamp is a no-op here.
                        when = cycle + lat_by_id[id(klass)]
                        events = (
                            agen_events if d_inst.is_load else complete_events
                        )
                        lst = events.get(when)
                        if lst is None:
                            events[when] = [di]
                        else:
                            lst.append(di)
                        iq.remove(di)
                        if kept is None:
                            kept = ready_list[: j - 1]
                        issued += 1
                        issued_local += 1
                        if is_fpu:
                            issued_fpu_local += 1
                    if kept is not None:
                        if j < n_r:
                            kept.extend(ready_list[j:])
                        ready_list = kept

                # ------------------------------------------------- rename
                width = issue_width
                while width > 0 and decode_buffer:
                    head = decode_buffer[0]
                    if head.dead:
                        decode_buffer.pop(0)
                        continue
                    head_itid = head.itid
                    inst = head.inst
                    if not shared_fetch or popc[head_itid] == 1:
                        pieces = (head,)
                        npieces = 1
                        taint_mask = 0
                    else:
                        op = inst.op
                        if (
                            popc[head_itid] != 2
                            or op is SEND_OP
                            or op is TRECV_OP
                            or op is TID_OP
                        ):
                            if paranoid and (
                                op is SEND_OP
                                or op is TRECV_OP
                                or op is TID_OP
                            ):
                                # Only the opcode-triggered splits carry a
                                # manifest claim; mask-shape splits are
                                # dynamic.
                                m = spec_mask_by_tid[ft[head_itid]]
                                if m is not None and m[head.pc] & _B_SYNC:
                                    raise SpecializationViolation(
                                        f"sync split fired at pc {head.pc} "
                                        f"marked sync-impossible"
                                    )
                                paranoid_local += 1
                            pieces, taint_mask = self._split(head)
                            npieces = len(pieces)
                        else:
                            # _split(head), inlined for the dominant
                            # two-thread case: splitter decision via the
                            # pair bit, LVIP consult, provenance flags.
                            srcs = inst.srcs
                            pair = 1 << pb[head_itid]
                            taint_mask = 0
                            if shared_execute:
                                merged = True
                                for r in srcs:
                                    if not rst_bits[r] & pair:
                                        merged = False
                                    taint_mask |= rst_taint[r]
                            else:
                                merged = False
                            is_load = inst.is_load
                            if merged and is_load and not is_mt:
                                lvip_checks_local += 1
                                if lvip_predict(head.pc):
                                    lvip_pred_local += 1
                                else:
                                    merged = False
                            if merged:
                                if register_merging and taint_mask & pair:
                                    head.merged_via_regmerge = True
                                if is_load and not is_mt:
                                    head.lvip_predicted_identical = True
                                pieces = (head,)
                                npieces = 1
                            else:
                                # clone_for(1 << t), inlined (prototype
                                # dict + the fields the clone inherits).
                                h_execs = head.execs
                                h_seq = head.seq
                                h_pc = head.pc
                                h_fmode = head.fetch_mode
                                h_fw = head.fetch_merged_width
                                h_ptk = head.pred_taken
                                h_ptg = head.pred_target
                                h_mp = head.mispredicted
                                h_halt = head.halt
                                pieces = []
                                for t in tof[head_itid]:
                                    piece = new_di(DynInst)
                                    d = di_new()
                                    d["seq"] = h_seq
                                    d["pc"] = h_pc
                                    d["inst"] = inst
                                    d["itid"] = 1 << t
                                    d["execs"] = {t: h_execs[t]}
                                    d["fetch_mode"] = h_fmode
                                    d["fetch_merged_width"] = h_fw
                                    d["psrcs"] = []
                                    d["prev_map"] = {}
                                    d["pred_taken"] = h_ptk
                                    d["pred_target"] = h_ptg
                                    d["mispredicted"] = h_mp
                                    d["halt"] = h_halt
                                    piece.__dict__ = d
                                    pieces.append(piece)
                                npieces = 2
                        if npieces > width:
                            break
                    # _resources_available(pieces), inlined.
                    if len(rob) + npieces > rob_size:
                        stall_rob += 1
                        break
                    elif len(iq) + npieces > iq_size:
                        stall_iq += 1
                        break
                    elif (
                        inst.is_mem
                        and len(lsq_entries) + npieces > lsq_size
                    ):
                        stall_lsq += 1
                        break
                    elif (
                        inst.dst is not None
                        and len(free_pregs) < npieces
                    ):
                        stall_regs += 1
                        break
                    decode_buffer.pop(0)
                    split_in += 1
                    split_out += npieces
                    if npieces > 1:
                        splits_local += 1
                        # _repoint_branch_waiters, inlined.
                        for u in range(nthreads):
                            if stalled_on_branch[u] is head:
                                for piece in pieces:
                                    if piece.itid >> u & 1:
                                        stalled_on_branch[u] = piece
                                        break
                    dst = inst.dst
                    srcs = inst.srcs
                    is_mem = inst.is_mem
                    for piece in pieces:
                        # _rename_one(piece), inlined.
                        p_itid = piece.itid
                        p_owners = tof[p_itid]
                        lead_map = rat_map[p_owners[0]]
                        psrcs = [lead_map[r] for r in srcs]
                        piece.psrcs = psrcs
                        iq_tick += 1
                        pending = 0
                        for preg in psrcs:
                            src_refs[preg] += 1
                            if not reg_ready[preg]:
                                pending += 1
                        if pending == 0:
                            ready_list.append((iq_tick, piece))
                        else:
                            m = [pending, iq_tick, piece]
                            for preg in psrcs:
                                if not reg_ready[preg]:
                                    wl = waiters.get(preg)
                                    if wl is None:
                                        waiters[preg] = [m]
                                    else:
                                        wl.append(m)
                        if dst is not None:
                            # regfile.alloc(map_claims=len(p_owners)), inlined
                            # (the resource check above guarantees free slots;
                            # allocations/high_water flushed in finally).
                            preg = free_pregs.pop()  # simlint: ignore — free list is a list
                            map_refs[preg] = len(p_owners)
                            src_refs[preg] = 0
                            reg_ready[preg] = False
                            reg_value[preg] = None
                            alloc_count += 1
                            nfree = len(free_pregs)
                            if nfree < min_free:
                                min_free = nfree
                            piece.pdst = preg
                            prev_map = piece.prev_map
                            for u in p_owners:
                                row = rat_map[u]
                                prev_map[u] = row[dst]
                                row[dst] = preg
                                no_active_writer[u][dst] = False
                        piece.state = WAITING
                        piece.is_exec_merged = len(p_owners) >= 2
                        rob.append(piece)
                        for u in p_owners:
                            thread_queues[u].append(piece)
                        iq.append(piece)
                        if is_mem:
                            lsq_entries.append(piece)
                        renamed_local += 1
                    if shared_fetch and dst is not None:
                        # rst.update_dest(...), inlined via the pair-mask
                        # tables (pieces partition head_itid, so the
                        # reference's itid argument is head_itid).
                        if npieces == 1:
                            shared_pairs = pw[head_itid]
                        else:
                            shared_pairs = 0
                            for p in pieces:
                                shared_pairs |= pw[p.itid]
                        touched = pt[head_itid]
                        rst_bits[dst] = (rst_bits[dst] & ~touched) | (
                            shared_pairs & touched
                        )
                        rst_taint[dst] = (rst_taint[dst] & ~touched) | (
                            shared_pairs & touched & taint_mask
                        )
                        rst_updates_local += 1
                    width -= npieces

                # -------------------------------------------------- fetch
                if shared_fetch and len(groups) > 1:
                    # _try_remerge, inlined (a no-op with a single group).
                    pcs = {}
                    for group in groups:
                        if not group_stalled(group, cycle):
                            gpc = group_pc(group)
                            if gpc is not None:
                                pcs[group.gid] = gpc
                    sync.check_merges(pcs, cycle)
                budget = fetch_width
                sessions = 0
                if len(groups) == 1:
                    order = [groups[0]]
                elif not catchup_target:
                    # sync.fetch_order, inlined: with no CATCHUP pairs every
                    # rank is 1, so priority is plain (mean ICOUNT, gid).
                    keyed = []
                    for g in groups:
                        total = 0
                        mask = g.mask
                        for t in tof[mask]:
                            total += icount[t]
                        keyed.append((total / popc[mask], g.gid, g))
                    keyed.sort()
                    order = [k[2] for k in keyed]
                else:
                    icounts = {}
                    for g in groups:
                        total = 0
                        for t in tof[g.mask]:
                            total += icount[t]
                        icounts[g.gid] = total / g.size
                    order = sync.fetch_order(icounts)
                held: list[int] = []
                fetched_gids: list[int] = []
                for group in order:
                    if budget <= 0 or sessions >= groups_per_cycle:
                        break
                    gid = group.gid
                    if held and gid in held:
                        continue
                    if catchup_target:
                        stop = False
                        for b, a in catchup_target.items():
                            if a == gid and b in fetched_gids:
                                stop = True
                                break
                        if stop:
                            continue
                    if group_stalled(group, cycle):
                        continue
                    gpc = group_pc(group)
                    if gpc is None:
                        continue
                    # _fetch_group(group, budget), inlined.
                    members = tof[group.mask]
                    nmem = len(members)
                    lead = members[0]
                    # sync.mode_of(group), inlined.
                    if nmem >= 2:
                        if len(groups) > 1 and gid in catchup_target:
                            mode = CATCHUP
                        else:
                            mode = MERGE
                    elif gid in catchup_target:
                        mode = CATCHUP
                    else:
                        mode = DETECT
                    blocks = trace_blocks
                    count = 0
                    first_access = True
                    other_pcs = None
                    if shared_fetch and len(groups) > 1:
                        for other in groups:
                            if other is not group:
                                opc = group_pc(other)
                                if opc is not None:
                                    if other_pcs is None:
                                        other_pcs = {opc: other.gid}
                                    else:
                                        other_pcs[opc] = other.gid
                    r_lead = replay[lead]
                    rl_lead = recs_by_tid[lead]
                    spec_run_lead = spec_run_by_tid[lead]
                    db_room = decode_buffer_size - len(decode_buffer)
                    p_lead = 0
                    rec = None
                    while budget - count > 0:
                        if db_room <= 0:
                            break
                        # _peek_pc(lead), inlined: src 0 = replay queue,
                        # src 1 = buffered record stream, src 2 = live oracle.
                        if r_lead:
                            src = 0
                            fpc = r_lead[0].pc
                        elif fetch_done[lead]:
                            break
                        else:
                            p_lead = pos[lead]
                            if p_lead < len(rl_lead):
                                src = 1
                                rec = rl_lead[p_lead]
                                fpc = rec.pc
                            else:
                                src = 2
                                fpc = states[lead].pc
                        if first_access:
                            lat = fetch_latency(fpc)
                            if lat > l1_latency:
                                stall = cycle + lat
                                for t in members:
                                    fetch_stall_until[t] = stall
                                icache_stall += lat
                                break
                            first_access = False
                        if nmem == 1:
                            if src == 1 and other_pcs is None:
                                # Run-length streaming: consume the buffered
                                # record run with the loop conditions
                                # (budget, decode room, stream bounds)
                                # hoisted out of the per-instruction path.
                                run = budget - count
                                if db_room < run:
                                    run = db_room
                                avail = len(rl_lead) - p_lead
                                if avail < run:
                                    run = avail
                                gmask = group.mask
                                if spec_run_lead is not None:
                                    # Specialized batch prototype: the
                                    # per-session constants are stamped
                                    # once, so each batched entry is one
                                    # dict copy + six stores.
                                    proto = di_new()
                                    proto["itid"] = gmask
                                    proto["fetch_mode"] = mode
                                    proto["fetch_merged_width"] = 1
                                    proto["halt"] = False
                                    proto_copy = proto.copy
                                i = 0
                                stop = False
                                while i < run:
                                    rec = rl_lead[p_lead + i]
                                    if spec_run_lead is not None:
                                        n = spec_run_lead[rec.pc]
                                        if n > 1:
                                            # Guard-free run: every PC in
                                            # it is statically neither a
                                            # control transfer nor a HINT
                                            # nor a HALT, so the buffered
                                            # records are consecutive and
                                            # none of the per-record
                                            # checks below can fire.
                                            left = run - i
                                            if n > left:
                                                n = left
                                            batch = rl_lead[
                                                p_lead + i : p_lead + i + n
                                            ]
                                            if paranoid:
                                                for brec in batch:
                                                    binst = brec.inst
                                                    bop = binst.op
                                                    if (
                                                        binst.is_control
                                                        or bop is HINT_OP
                                                        or bop is HALT_OPC
                                                    ):
                                                        raise SpecializationViolation(
                                                            f"pc {brec.pc} "
                                                            f"({bop.name}) "
                                                            f"inside a run "
                                                            f"marked "
                                                            f"guard-free"
                                                        )
                                                paranoid_local += n
                                            s = seqno
                                            for rec in batch:
                                                s += 1
                                                di = new_di(DynInst)
                                                d = proto_copy()
                                                d["seq"] = s
                                                d["pc"] = rec.pc
                                                d["inst"] = rec.inst
                                                d["execs"] = {lead: rec}
                                                d["psrcs"] = []
                                                d["prev_map"] = {}
                                                di.__dict__ = d
                                                decode_buffer.append(di)
                                            seqno = s
                                            icount[lead] += n
                                            i += n
                                            continue
                                    i += 1
                                    inst = rec.inst
                                    op = inst.op
                                    halted = op is HALT_OPC
                                    seqno += 1
                                    di = new_di(DynInst)
                                    d = di_new()
                                    d["seq"] = seqno
                                    d["pc"] = rec.pc
                                    d["inst"] = inst
                                    d["itid"] = gmask
                                    d["execs"] = {lead: rec}
                                    d["fetch_mode"] = mode
                                    d["fetch_merged_width"] = 1
                                    d["psrcs"] = []
                                    d["prev_map"] = {}
                                    d["halt"] = halted
                                    di.__dict__ = d
                                    decode_buffer.append(di)
                                    icount[lead] += 1
                                    if halted:
                                        fetch_done[lead] = True
                                        sync.on_halt(lead)
                                        stop = True
                                        break
                                    if (
                                        use_hints
                                        and op is HINT_OP
                                        and len(groups) > 1
                                    ):
                                        if paranoid:
                                            m = spec_mask_by_tid[lead]
                                            if (
                                                m is not None
                                                and m[rec.pc] & _B_HINT
                                            ):
                                                raise SpecializationViolation(
                                                    f"hint fired at pc "
                                                    f"{rec.pc} marked "
                                                    f"hint-impossible"
                                                )
                                            paranoid_local += 1
                                        self._seq = seqno
                                        self._handle_hint(rec.pc, [lead])
                                        stop = True
                                        break
                                    if inst.is_control:
                                        if paranoid:
                                            m = spec_mask_by_tid[lead]
                                            if (
                                                m is not None
                                                and m[rec.pc] & _B_CONTROL
                                            ):
                                                raise SpecializationViolation(
                                                    f"control fired at pc "
                                                    f"{rec.pc} marked "
                                                    f"control-impossible"
                                                )
                                            paranoid_local += 1
                                        self._seq = seqno
                                        outcome = self._handle_control(
                                            di, group, [lead], {lead: rec}
                                        )
                                        if outcome == "continue":
                                            pass
                                        elif outcome == "taken":
                                            blocks -= 1
                                            if blocks <= 0:
                                                stop = True
                                                break
                                        else:  # "divergence"/"mispredict"
                                            stop = True
                                            break
                                pos[lead] = p_lead + i
                                count += i
                                db_room -= i
                                if stop:
                                    break
                                continue
                            # _next_record(lead), inlined; lockstep trivially
                            # holds for a singleton.
                            if src == 1:
                                pos[lead] = p_lead + 1
                            elif src == 0:
                                rec = r_lead.popleft()
                            else:
                                rec = next_record(lead)
                            records = {lead: rec}
                            inst = rec.inst
                        else:
                            # Specialized merged batch: a guard-free run in
                            # every member's own program keeps the group in
                            # lockstep by construction (each member's next
                            # pc is pc+1), so the per-record lockstep,
                            # halt/hint/control and catch-up-peek checks
                            # below cannot fire for any record in the run.
                            if (
                                spec_run_lead is not None
                                and src == 1
                                and other_pcs is None
                            ):
                                n = spec_run_lead[fpc]
                                if n > 1:
                                    left = budget - count
                                    if n > left:
                                        n = left
                                    if n > db_room:
                                        n = db_room
                                    for t in members:
                                        if replay[t]:
                                            n = 0
                                            break
                                        rl_t = recs_by_tid[t]
                                        p_t = pos[t]
                                        avail = len(rl_t) - p_t
                                        if avail <= 0:
                                            n = 0
                                            break
                                        if rl_t[p_t].pc != fpc:
                                            n = 0
                                            break
                                        m_run = spec_run_by_tid[t]
                                        if m_run is None:
                                            n = 0
                                            break
                                        r = m_run[fpc]
                                        if r < n:
                                            n = r
                                        if avail < n:
                                            n = avail
                                    if n > 1:
                                        slabs = []
                                        for t in members:
                                            p_t = pos[t]
                                            slabs.append(
                                                recs_by_tid[t][p_t : p_t + n]
                                            )
                                            pos[t] = p_t + n
                                            icount[t] += n
                                        if paranoid:
                                            for slab in slabs:
                                                for brec in slab:
                                                    binst = brec.inst
                                                    bop = binst.op
                                                    if (
                                                        binst.is_control
                                                        or bop is HINT_OP
                                                        or bop is HALT_OPC
                                                    ):
                                                        raise SpecializationViolation(
                                                            f"pc {brec.pc} "
                                                            f"({bop.name}) "
                                                            f"inside a "
                                                            f"merged run "
                                                            f"marked "
                                                            f"guard-free"
                                                        )
                                            paranoid_local += n * nmem
                                        proto = di_new()
                                        proto["itid"] = group.mask
                                        proto["fetch_mode"] = mode
                                        proto["fetch_merged_width"] = nmem
                                        proto["halt"] = False
                                        proto_mcopy = proto.copy
                                        s = seqno
                                        for recs_k in zip(*slabs):
                                            s += 1
                                            rec0 = recs_k[0]
                                            di = new_di(DynInst)
                                            d = proto_mcopy()
                                            d["seq"] = s
                                            d["pc"] = rec0.pc
                                            d["inst"] = rec0.inst
                                            d["execs"] = dict(
                                                zip(members, recs_k)
                                            )
                                            d["psrcs"] = []
                                            d["prev_map"] = {}
                                            di.__dict__ = d
                                            decode_buffer.append(di)
                                        seqno = s
                                        count += n
                                        db_room -= n
                                        continue
                            # {t: next_record(t)}, inlined per member.
                            records = {}
                            lockstep = True
                            for t in members:
                                r_t = replay[t]
                                if r_t:
                                    rec = r_t.popleft()
                                else:
                                    p_t = pos[t]
                                    rl_t = recs_by_tid[t]
                                    if p_t < len(rl_t):
                                        pos[t] = p_t + 1
                                        rec = rl_t[p_t]
                                    elif stream[t]:
                                        rec = next_record(t)
                                    else:
                                        rec = oracles[t].step()
                                if rec.pc != fpc:
                                    lockstep = False
                                records[t] = rec
                            if not lockstep:
                                raise RuntimeError(
                                    f"merged fetch out of lockstep "
                                    f"at pc={fpc}"
                                )
                            inst = records[lead].inst
                        seqno += 1
                        halted = inst.op is HALT_OPC
                        # DynInst(...), constructor inlined via the
                        # prototype dict.
                        di = new_di(DynInst)
                        d = di_new()
                        d["seq"] = seqno
                        d["pc"] = fpc
                        d["inst"] = inst
                        d["itid"] = group.mask
                        d["execs"] = records
                        d["fetch_mode"] = mode
                        d["fetch_merged_width"] = nmem
                        d["psrcs"] = []
                        d["prev_map"] = {}
                        d["halt"] = halted
                        di.__dict__ = d
                        decode_buffer.append(di)
                        db_room -= 1
                        count += 1
                        for t in members:
                            icount[t] += 1
                        if halted:
                            for t in members:
                                fetch_done[t] = True
                                sync.on_halt(t)
                            break
                        if (
                            use_hints
                            and inst.op is HINT_OP
                            and len(sync.groups) > 1
                        ):
                            if paranoid:
                                m = spec_mask_by_tid[lead]
                                if m is not None and m[fpc] & _B_HINT:
                                    raise SpecializationViolation(
                                        f"hint fired at pc {fpc} marked "
                                        f"hint-impossible"
                                    )
                                paranoid_local += 1
                            self._seq = seqno
                            self._handle_hint(fpc, list(members))
                            break
                        if inst.is_control:
                            if paranoid:
                                m = spec_mask_by_tid[lead]
                                if m is not None and m[fpc] & _B_CONTROL:
                                    raise SpecializationViolation(
                                        f"control fired at pc {fpc} marked "
                                        f"control-impossible"
                                    )
                                paranoid_local += 1
                            self._seq = seqno
                            outcome = self._handle_control(
                                di, group, list(members), records
                            )
                            if outcome == "continue":
                                pass
                            elif outcome == "taken":
                                blocks -= 1
                                if blocks <= 0:
                                    break
                            else:  # "divergence" or "mispredict"
                                break
                        if other_pcs is not None:
                            next_pc = peek(lead)
                            if next_pc in other_pcs:
                                held.append(other_pcs[next_pc])
                                break
                    if count:
                        budget -= count
                        sessions += 1
                        f_thread += count * nmem
                        f_entries += count
                        fbm[mode] += count * nmem
                        fetched_gids.append(gid)
                        if trace is not None:
                            trace.append(
                                (
                                    "F",
                                    cycle,
                                    lead,
                                    gpc,
                                    gid,
                                    group.mask,
                                    sync.mode_of(group).value,
                                    count,
                                )
                            )
                f_sessions += sessions

                # Boundary visit: make the sampled SimStats fields current
                # (the finally block flushes additively, so zeroing here is
                # safe) and hand the cycle to the observer — it samples the
                # interval and/or checks watchdog progress, then returns
                # the next boundary.  Everything else an IntervalSample
                # reads (fetched_by_mode, branch counters, FHB, occupancy
                # structures, RST) is already live during the loop.
                if cycle >= next_obs:
                    stats.committed_thread_insts += c_thread
                    stats.committed_entries += c_entries
                    stats.fetched_thread_insts += f_thread
                    stats.fetched_entries += f_entries
                    stats.fetch_sessions += f_sessions
                    c_thread = c_entries = 0
                    f_thread = f_entries = f_sessions = 0
                    stats.cycles = cycle
                    next_obs = obs_tick(self)

            # Normal completion: the reference run() tail, verbatim.
            stats.cycles = cycle
        finally:
            if gc_was_enabled:
                gc.enable()
            self._seq = seqno
            self._commit_rr = commit_rr
            stats.cycles = self.cycle
            stats.committed_thread_insts += c_thread
            stats.committed_entries += c_entries
            stats.committed_exec_identical += c_exec_ident
            stats.committed_exec_identical_regmerge += c_exec_ident_rm
            stats.committed_fetch_identical += c_fetch_ident
            stats.halted_threads += halted_local
            cpt = stats.committed_per_thread
            for t in range(nthreads):
                if commit_counts[t]:
                    cpt[t] = cpt.get(t, 0) + commit_counts[t]
            stats.executed_entries += executed_local
            stats.regfile_writes += rf_writes
            stats.regfile_reads += rf_reads
            stats.issued_entries += issued_local
            stats.issued_fpu_entries += issued_fpu_local
            stats.fu_contention_stalls += fu_stalls
            stats.fetch_stall_mispredict_cycles += mispred_stall
            stats.load_accesses += load_acc
            stats.store_forwards += store_fwd
            stats.ldst_port_stalls += port_stalls
            stats.renamed_entries += renamed_local
            stats.split_stage_inputs += split_in
            stats.split_stage_outputs += split_out
            stats.splits_performed += splits_local
            stats.rename_stalls_rob += stall_rob
            stats.rename_stalls_iq += stall_iq
            stats.rename_stalls_lsq += stall_lsq
            stats.rename_stalls_regs += stall_regs
            stats.lvip_checks += lvip_checks_local
            stats.lvip_predict_identical += lvip_pred_local
            rst.updates += rst_updates_local
            stats.fetched_thread_insts += f_thread
            stats.fetched_entries += f_entries
            stats.fetch_sessions += f_sessions
            stats.icache_stall_cycles += icache_stall
            self.paranoid_checks += paranoid_local
            if alloc_count:
                regfile.allocations += alloc_count
                in_use = num_regs_total - min_free
                if in_use > regfile.high_water:
                    regfile.high_water = in_use

        if obs_active:
            # Reference run() order: finalize (closing the last partial
            # interval against the now-flushed stats) before the
            # end-of-run snapshots below.
            obs.finalize(self)
        stats.lvip_site_checks = dict(self.lvip.site_checks)
        stats.lvip_site_mispredicts = dict(self.lvip.site_mispredicts)
        if shared_fetch:
            stats.final_rst_sharing = rst.sharing_fraction(nthreads)
        if strict:
            self._final_checks()
        return stats


#: Engine registry used by the harness/CLI ``engine=`` selector.
ENGINES: dict[str, type[SMTCore]] = {
    "reference": SMTCore,
    "fast": FastSMTCore,
}


def resolve_engine(name: str) -> type[SMTCore]:
    """Map an engine name to its core class (raises on unknown names)."""
    try:
        return ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}: expected one of {sorted(ENGINES)}"
        ) from None
