"""Memory subsystem: address spaces, caches, MSHRs, and the full hierarchy."""

from repro.mem.cache import Cache, CacheStats
from repro.mem.channels import MessageNetwork
from repro.mem.hierarchy import MemoryConfig, MemoryEventCounts, MemoryHierarchy
from repro.mem.memory import AddressSpace, MemoryError_
from repro.mem.mshr import MSHRFile

__all__ = [
    "MessageNetwork",
    "Cache",
    "CacheStats",
    "MemoryConfig",
    "MemoryEventCounts",
    "MemoryHierarchy",
    "AddressSpace",
    "MemoryError_",
    "MSHRFile",
]
