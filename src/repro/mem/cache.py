"""Set-associative cache model (timing only).

Caches track which lines are present; data always comes from the
:class:`~repro.mem.memory.AddressSpace`, so the cache influences cycles and
energy, never values.  Lines are identified by an integer *line key* that
the caller derives from ``(asid, address)`` — the L1 D-cache and L2 are
physically shared between contexts, so multi-execution instances contend
for capacity, while the I-cache is indexed by PC alone (shared text).
"""

from __future__ import annotations


class CacheStats:
    """Access counters for one cache."""

    __slots__ = ("accesses", "hits", "misses", "writebacks")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
        }


class Cache:
    """A set-associative, write-back, write-allocate cache with LRU."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(f"{name}: size not divisible by assoc*line")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (assoc * line_bytes)
        # Each set is an LRU-ordered list of (line_key, dirty); index 0 = MRU.
        self._sets: list[list[list]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def line_key(self, asid: int, addr: int) -> int:
        """Derive the line key for byte address *addr* in space *asid*.

        The multiplier is odd so consecutive lines spread over the
        (power-of-two) set array instead of aliasing into one set.
        """
        return (addr // self.line_bytes) * 1_048_583 + asid

    def lookup(self, key: int) -> bool:
        """Probe without side effects: is the line present?"""
        set_ = self._sets[key % self.num_sets]
        return any(entry[0] == key for entry in set_)

    def access(self, key: int, is_write: bool = False) -> bool:
        """Access line *key*; fill on miss.  Returns True on hit.

        A miss that evicts a dirty line counts a writeback (used by the
        energy model and by Figure 6's cache-energy component).
        """
        self.stats.accesses += 1
        set_ = self._sets[key % self.num_sets]
        for i, entry in enumerate(set_):
            if entry[0] == key:
                if i:
                    set_.insert(0, set_.pop(i))
                if is_write:
                    entry[1] = True
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        if len(set_) >= self.assoc:
            victim = set_.pop()  # simlint: ignore — LRU list, not a set
            if victim[1]:
                self.stats.writebacks += 1
        set_.insert(0, [key, is_write])
        return False

    def invalidate_all(self) -> None:
        """Drop all lines (counters are preserved)."""
        self._sets = [[] for _ in range(self.num_sets)]
