"""Miss Status Holding Registers.

The MSHR file bounds the number of outstanding cache misses.  A new miss to
a line that already has an entry *merges* (completes with the existing
entry, consuming no new slot).  When the file is full, the requesting load
or store must retry in a later cycle — this is the mechanism behind the
Figure 7(b) load/store-port sensitivity study, where the paper scales the
MSHR count with the number of ports.
"""

from __future__ import annotations


class MSHRFile:
    """Outstanding-miss tracker with line-merge semantics."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self._entries: dict[int, int] = {}  # line key -> ready cycle
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0

    def outstanding(self) -> int:
        """Number of live entries."""
        return len(self._entries)

    def lookup(self, line_key: int) -> int | None:
        """Ready cycle of an outstanding miss to *line_key*, if any."""
        return self._entries.get(line_key)

    def request(self, line_key: int, now: int, latency: int) -> int | None:
        """Request a miss slot for *line_key*.

        Returns the cycle at which the line will be ready, or ``None`` if
        the file is full (caller must retry).  Requests to an already
        outstanding line merge with it.
        """
        ready = self._entries.get(line_key)
        if ready is not None:
            self.merges += 1
            return ready
        if len(self._entries) >= self.num_entries:
            self.full_stalls += 1
            return None
        ready = now + latency
        self._entries[line_key] = ready
        self.allocations += 1
        return ready

    def tick(self, now: int) -> list[int]:
        """Retire entries whose fills have completed; returns their keys."""
        if not self._entries:
            return []
        done = [key for key, ready in self._entries.items() if ready <= now]
        for key in done:
            del self._entries[key]
        return done
