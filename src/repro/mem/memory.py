"""Value-level main memory.

An :class:`AddressSpace` is a sparse map from word-aligned byte addresses to
Python scalars (ints or floats).  Multi-threaded workloads share one address
space between all contexts; multi-execution workloads give each context its
own (the paper's third workload distinction — separate processes).

The timing model's caches track addresses only; data always comes from the
address space, so cache bugs cannot corrupt values (they only cost cycles).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.isa.program import WORD_SIZE


class MemoryError_(ValueError):
    """Raised on unaligned or otherwise invalid memory accesses."""


class AddressSpace:
    """Sparse word-granular memory for one process image."""

    _next_asid = 0

    def __init__(
        self, image: Mapping[int, int | float] | None = None, asid: int | None = None
    ) -> None:
        if asid is None:
            asid = AddressSpace._next_asid
            AddressSpace._next_asid += 1
        self.asid = asid
        self._words: dict[int, int | float] = dict(image or {})

    def load(self, addr: int) -> int | float:
        """Read the word at byte address *addr* (0 if never written)."""
        if addr % WORD_SIZE:
            raise MemoryError_(f"unaligned load at {addr:#x}")
        if addr < 0:
            raise MemoryError_(f"negative load address {addr:#x}")
        return self._words.get(addr, 0)

    def store(self, addr: int, value: int | float) -> None:
        """Write *value* to the word at byte address *addr*."""
        if addr % WORD_SIZE:
            raise MemoryError_(f"unaligned store at {addr:#x}")
        if addr < 0:
            raise MemoryError_(f"negative store address {addr:#x}")
        self._words[addr] = value

    def snapshot(self) -> dict[int, int | float]:
        """Copy of the current word map (for tests and result extraction)."""
        return dict(self._words)

    def read_array(self, base: int, count: int) -> list[int | float]:
        """Read *count* consecutive words starting at *base*."""
        return [self.load(base + i * WORD_SIZE) for i in range(count)]

    def write_array(self, base: int, values) -> None:
        """Write consecutive words starting at *base*."""
        for i, value in enumerate(values):
            self.store(base + i * WORD_SIZE, value)

    def __len__(self) -> int:
        return len(self._words)
