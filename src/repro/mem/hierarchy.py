"""The cache/memory hierarchy of Table 4.

Defaults reproduce the paper's configuration: 64 KB 4-way L1I and L1D with
64 B lines and 1-cycle latency, a 4 MB 8-way L2 at 6 cycles, and 200-cycle
DRAM.  Data misses are bounded by an MSHR file; instruction misses stall the
fetch unit directly (fetch is in-order, so one outstanding I-miss per
context is the natural limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import INST_BYTES
from repro.mem.cache import Cache
from repro.mem.mshr import MSHRFile
from repro.obs.events import EventKind
from repro.obs.observer import NULL_OBS


@dataclass(frozen=True)
class MemoryConfig:
    """Geometry and latency knobs for the hierarchy (paper Table 4)."""

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 4
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 4
    l2_size: int = 4 * 1024 * 1024
    l2_assoc: int = 8
    line_bytes: int = 64
    l1_latency: int = 1
    l2_latency: int = 6
    dram_latency: int = 200
    mshr_entries: int = 16

    def table4_rows(self) -> list[tuple[str, str]]:
        """Rows of this config as they appear in the paper's Table 4."""
        kb = 1024
        return [
            ("L1I/L1D Cache", f"{self.l1i_size // kb}KB+{self.l1d_size // kb}KB, "
                              f"{self.l1d_assoc} way, {self.line_bytes}B lines"),
            ("L1 Latency", f"{self.l1_latency} cycle"),
            ("L2 Cache", f"{self.l2_size // kb // kb}MB, {self.l2_assoc} way, "
                         f"{self.line_bytes}B lines"),
            ("L2 Latency", f"{self.l2_latency} cycles"),
            ("DRAM Latency", str(self.dram_latency)),
        ]


@dataclass
class MemoryEventCounts:
    """Hierarchy activity counters consumed by the energy model."""

    l1i_accesses: int = 0
    l1i_misses: int = 0
    l1d_accesses: int = 0
    l1d_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0
    extra: dict = field(default_factory=dict)


class MemoryHierarchy:
    """Shared L1I + L1D + L2 + DRAM with a data-side MSHR file."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        cfg = self.config
        self.l1i = Cache("L1I", cfg.l1i_size, cfg.l1i_assoc, cfg.line_bytes)
        self.l1d = Cache("L1D", cfg.l1d_size, cfg.l1d_assoc, cfg.line_bytes)
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_assoc, cfg.line_bytes)
        self.mshr = MSHRFile(cfg.mshr_entries)
        self.dram_accesses = 0
        # Rebound by SMTCore once caches are warm; events use ``obs.now``
        # because the I-side path has no cycle argument.
        self.obs = NULL_OBS

    # ----------------------------------------------------------- instruction
    def fetch_latency(self, pc: int) -> int:
        """Access the I-side for the line containing instruction *pc*.

        Returns the access latency in cycles (L1 hit latency when present).
        The I-cache is indexed by PC only: identical program text is shared
        between contexts, as the OS page cache would share it between
        processes running the same binary.
        """
        cfg = self.config
        key = self.l1i.line_key(0, pc * INST_BYTES)
        if self.l1i.access(key):
            return cfg.l1_latency
        if self.l2.access(key):
            if self.obs.tracing:
                self.obs.emit(
                    EventKind.CACHE_MISS, self.obs.now,
                    pc=pc, side="i", filled_from="l2",
                )
            return cfg.l1_latency + cfg.l2_latency
        self.dram_accesses += 1
        if self.obs.tracing:
            self.obs.emit(
                EventKind.CACHE_MISS, self.obs.now,
                pc=pc, side="i", filled_from="dram",
            )
        return cfg.l1_latency + cfg.l2_latency + cfg.dram_latency

    # ------------------------------------------------------------------ data
    def data_access(
        self, asid: int, addr: int, is_write: bool, now: int
    ) -> int | None:
        """Access the D-side for *addr* in *asid* at cycle *now*.

        Returns the cycle at which the data is available (for loads) or the
        write is accepted (for stores), or ``None`` when the access cannot
        proceed this cycle because the MSHR file is full.
        """
        cfg = self.config
        key = self.l1d.line_key(asid, addr)
        if self.l1d.lookup(key):
            self.l1d.access(key, is_write)
            return now + cfg.l1_latency
        # L1 miss: needs (or merges into) an MSHR entry.
        if self.l2.lookup(key):
            latency = cfg.l1_latency + cfg.l2_latency
            filled_from = "l2"
        else:
            latency = cfg.l1_latency + cfg.l2_latency + cfg.dram_latency
            filled_from = "dram"
        tracing = self.obs.tracing
        merged = tracing and self.mshr.lookup(key) is not None
        ready = self.mshr.request(key, now, latency)
        if ready is None:
            if tracing:
                self.obs.emit(
                    EventKind.MSHR_FULL, now,
                    addr=addr, asid=asid, write=is_write,
                )
            return None
        if tracing:
            self.obs.emit(
                EventKind.CACHE_MISS, now,
                addr=addr, asid=asid, side="d", write=is_write,
                filled_from=filled_from,
            )
            self.obs.emit(
                EventKind.MSHR_ALLOC, now,
                line=key, merged=merged, ready=ready,
            )
        # Commit the state change only once the request is accepted.
        self.l1d.access(key, is_write)
        if not self.l2.access(key, False):
            self.dram_accesses += 1
        return ready

    def tick(self, now: int) -> None:
        """Advance time-dependent structures (MSHR retirement)."""
        retired = self.mshr.tick(now)
        if retired and self.obs.tracing:
            for key in retired:
                self.obs.emit(EventKind.MEM_FILL, now, line=key)

    def event_counts(self) -> MemoryEventCounts:
        """Snapshot of activity counters for the energy model."""
        return MemoryEventCounts(
            l1i_accesses=self.l1i.stats.accesses,
            l1i_misses=self.l1i.stats.misses,
            l1d_accesses=self.l1d.stats.accesses,
            l1d_misses=self.l1d.stats.misses,
            l2_accesses=self.l2.stats.accesses,
            l2_misses=self.l2.stats.misses,
            dram_accesses=self.dram_accesses,
        )
