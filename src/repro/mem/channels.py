"""Message channels: the substrate for message-passing workloads.

The paper's §3.1 names three SPMD program categories — multi-threaded,
*message-passing*, and multi-execution — but evaluates only the first and
last, leaving message-passing "for future work" (§7).  This module (with
the SEND/TRECV instructions) supplies the missing substrate so the
repository can evaluate that third category too.

A :class:`MessageNetwork` is a set of FIFO channels shared by all contexts
of a job — the hardware analogue of an on-chip message queue or an MPI
runtime's mailboxes.  Receives are *polling* (``try_recv``): blocking
receives are built in software as TRECV spin loops, which keeps the
functional oracle deadlock-free under any fair fetch interleaving.
"""

from __future__ import annotations

from collections import deque


class MessageNetwork:
    """FIFO channels indexed by small integer ids."""

    def __init__(self, capacity_per_channel: int = 4096) -> None:
        self.capacity = capacity_per_channel
        self._channels: dict[int, deque] = {}
        self.sends = 0
        self.receives = 0
        self.empty_polls = 0

    def send(self, channel: int, value: int | float) -> None:
        """Append *value* to *channel* (FIFO order per channel)."""
        queue = self._channels.setdefault(int(channel), deque())
        if len(queue) >= self.capacity:
            raise RuntimeError(
                f"channel {channel} overflowed ({self.capacity} messages)"
            )
        queue.append(value)
        self.sends += 1

    def try_recv(self, channel: int):
        """Dequeue the oldest message of *channel*, or None when empty."""
        queue = self._channels.get(int(channel))
        if not queue:
            self.empty_polls += 1
            return None
        self.receives += 1
        return queue.popleft()

    def depth(self, channel: int) -> int:
        """Messages currently queued on *channel*."""
        queue = self._channels.get(int(channel))
        return len(queue) if queue else 0

    def total_queued(self) -> int:
        """Messages queued across all channels (0 at clean termination)."""
        return sum(len(queue) for queue in self._channels.values())
