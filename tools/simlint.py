#!/usr/bin/env python3
"""AST lint enforcing the simulator determinism contract (thin shim).

The rules now live in :mod:`repro.analysis.host.rules` so they run both
here and under ``repro selfcheck`` (sharing the diagnostic shape, the
baseline machinery, and the strict type gate).  This shim keeps the
historical command-line contract:

    python tools/simlint.py src/repro            # scoped to the core dirs
    python tools/simlint.py --all-rules FILE...  # apply rules everywhere

Exit status 1 when any finding is reported, 0 when clean, 2 when a
``# simlint: disable=...`` pragma names an unknown rule.

Deprecated: ``python -m repro selfcheck`` runs the same rules plus the
fast/reference drift check under one gate; invoking this shim emits a
:class:`DeprecationWarning` pointing there.  Exit codes are unchanged.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

# CI invokes this tool without PYTHONPATH; make the in-tree package
# importable relative to the repo layout.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.host.rules import (  # noqa: E402
    IGNORE_MARK,
    SCOPED_DIRS,
    in_scope,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "IGNORE_MARK",
    "SCOPED_DIRS",
    "in_scope",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]


def main(argv: list[str] | None = None) -> int:
    # Warn at invocation, not import: importing the shim for its
    # re-exports (tests, editor tooling) stays silent.
    warnings.warn(
        "tools/simlint.py is a compatibility shim; run "
        "'python -m repro selfcheck' for the same rules plus the "
        "fast/reference drift check",
        DeprecationWarning,
        stacklevel=2,
    )
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--all-rules",
        action="store_true",
        help="apply every rule to every file, ignoring the scope dirs",
    )
    args = parser.parse_args(argv)
    try:
        findings = lint_paths(args.paths, all_rules=args.all_rules)
    except ValueError as exc:  # unknown rule id in a disable pragma
        print(f"simlint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"simlint: clean ({', '.join(str(p) for p in args.paths)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
