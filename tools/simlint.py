#!/usr/bin/env python3
"""AST lint enforcing the simulator determinism contract.

The cycle-level model must be bit-reproducible across runs and Python
versions: same inputs, same cycle counts, same stats.  That contract is
easy to break silently — a wall-clock read, an unseeded RNG, iteration
order of a ``set``, or an observer call that allocates event objects even
when tracing is off.  This lint walks the AST of the simulator core
(``repro/pipeline``, ``repro/core``, ``repro/mem``) and flags:

* **SIM001** — wall-clock reads: ``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()``, ``datetime.now()``/``utcnow()``/``today()``.
* **SIM002** — unseeded module-level ``random`` use (``random.random()``,
  ``from random import randint``, ...).  ``random.Random(seed)`` instances
  are fine: they are explicitly seeded and owned by the component.
* **SIM003** — iteration over syntactically unordered sets (``for x in
  {...}``, comprehensions over ``set(...)``/``frozenset(...)`` or set
  literals) unless wrapped in ``sorted(...)``.
* **SIM004** — observer emission not guarded by the precomputed
  ``tracing`` flag: any ``*.emit(...)`` call must sit under an ``if``
  whose condition mentions ``tracing`` (idiom: ``if self.obs.tracing:
  self.obs.emit(...)``), so the zero-observer hot path never builds event
  tuples.
* **SIM005** — order-dependent removal: ``dict.popitem()`` and no-argument
  ``.pop()`` calls.  ``set.pop()`` removes an arbitrary element and
  ``dict.popitem()`` depends on insertion history; both smuggle container
  order into simulation results.  Remove by explicit key/index instead.
  Deterministic stack pops (lists, deques) carry ``# simlint: ignore``
  with the receiver's type evident at the call site.

Usage::

    python tools/simlint.py src/repro            # scoped to the core dirs
    python tools/simlint.py --all-rules FILE...  # apply rules everywhere

Exit status 1 when any finding is reported.  ``# simlint: ignore`` on the
offending line suppresses it.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Path fragments the determinism contract covers (POSIX-style).
SCOPED_DIRS = ("repro/pipeline", "repro/core", "repro/mem")

_WALLCLOCK_TIME = {"time", "monotonic", "perf_counter", "process_time"}
_WALLCLOCK_DT = {"now", "utcnow", "today"}
_RANDOM_MODULE_OK = {"Random", "SystemRandom"}

IGNORE_MARK = "# simlint: ignore"


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: Path, line: int, rule: str, message: str) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _attr_chain(node: ast.AST) -> list[str]:
    """['self', 'obs', 'emit'] for ``self.obs.emit`` (best effort)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _mentions_tracing(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "tracing":
            return True
        if isinstance(sub, ast.Name) and sub.id == "tracing":
            return True
    return False


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, source_lines: list[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.findings: list[Finding] = []
        # Stack of guard flags: True for any enclosing `if ...tracing...`.
        self._tracing_guard = 0

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if 0 < line <= len(self.lines) and IGNORE_MARK in self.lines[line - 1]:
            return
        self.findings.append(Finding(self.path, line, rule, message))

    # ------------------------------------------------------------- SIM004
    def visit_If(self, node: ast.If) -> None:
        guarded = _mentions_tracing(node.test)
        if guarded:
            self._tracing_guard += 1
        for child in node.body:
            self.visit(child)
        if guarded:
            self._tracing_guard -= 1
        for child in node.orelse:
            self.visit(child)

    # ------------------------------------------------------------ SIM003
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._emit(
                node.iter, "SIM003",
                "iteration over an unordered set; wrap in sorted(...)",
            )
        self.generic_visit(node)

    def _check_comprehensions(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp
    ) -> None:
        for comp in node.generators:
            if _is_set_expr(comp.iter):
                self._emit(
                    comp.iter, "SIM003",
                    "comprehension over an unordered set; wrap in sorted(...)",
                )
        self.generic_visit(node)

    visit_ListComp = _check_comprehensions
    visit_SetComp = _check_comprehensions
    visit_DictComp = _check_comprehensions
    visit_GeneratorExp = _check_comprehensions

    # ------------------------------------------------- SIM001/002/004 calls
    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) >= 2:
            head, tail = chain[0], chain[-1]
            if head == "time" and tail in _WALLCLOCK_TIME:
                self._emit(
                    node, "SIM001",
                    f"wall-clock read time.{tail}() breaks determinism",
                )
            elif head == "datetime" and tail in _WALLCLOCK_DT:
                self._emit(
                    node, "SIM001",
                    f"wall-clock read datetime...{tail}() breaks determinism",
                )
            elif head == "random" and tail not in _RANDOM_MODULE_OK:
                self._emit(
                    node, "SIM002",
                    f"module-level random.{tail}() is unseeded; use a "
                    "random.Random(seed) instance",
                )
            if tail == "emit" and self._tracing_guard == 0:
                self._emit(
                    node, "SIM004",
                    f"{'.'.join(chain)}(...) is not guarded by the "
                    "precomputed tracing flag (idiom: `if self.obs.tracing:`)",
                )
        # SIM005: order-dependent removals.  popitem() is always suspect;
        # a no-argument .pop() is set.pop() unless the receiver is
        # provably a sequence — which the call site asserts with an
        # ignore mark, keeping the burden of proof on the code.
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method == "popitem":
                self._emit(
                    node, "SIM005",
                    "dict.popitem() removal order depends on insertion "
                    "history; pop an explicit key instead",
                )
            elif method == "pop" and not node.args and not node.keywords:
                self._emit(
                    node, "SIM005",
                    "no-argument .pop() removes an arbitrary element if the "
                    "receiver is a set; pop an explicit index/key, or mark "
                    "a deterministic stack pop with the ignore comment",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------- imports
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = [
                alias.name
                for alias in node.names
                if alias.name not in _RANDOM_MODULE_OK
            ]
            if bad:
                self._emit(
                    node, "SIM002",
                    f"importing unseeded random function(s) {', '.join(bad)}; "
                    "use a random.Random(seed) instance",
                )
        self.generic_visit(node)


def in_scope(path: Path) -> bool:
    """Is *path* inside the directories the contract covers?"""
    posix = path.resolve().as_posix()
    return any(fragment in posix for fragment in SCOPED_DIRS)


def lint_file(path: Path) -> list[Finding]:
    """Lint one Python source file; returns its findings."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    linter = _Linter(path, source.splitlines())
    linter.visit(tree)
    linter.findings.sort(key=lambda f: f.line)
    return linter.findings


def lint_paths(paths: list[Path], all_rules: bool = False) -> list[Finding]:
    """Lint files/trees; without *all_rules*, only scoped files are checked."""
    findings: list[Finding] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            if not all_rules and not in_scope(file):
                continue
            findings.extend(lint_file(file))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path)
    parser.add_argument(
        "--all-rules",
        action="store_true",
        help="apply every rule to every file, ignoring the scope dirs",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths, all_rules=args.all_rules)
    for finding in findings:
        print(finding)
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"simlint: clean ({', '.join(str(p) for p in args.paths)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
