"""Figure 7(b): sensitivity to load/store ports (MSHRs scaled along).

Paper shape: more load/store ports — a less memory-constrained machine —
make the fetch/execute merging *more* beneficial, because the front end
becomes the remaining bottleneck.
"""

from conftest import SWEEP_APPS, emit, prefetch

from repro.harness import LDST_PORT_COUNTS, fig7b_ports, format_table


def test_fig7b_ldst_port_sweep(benchmark, scale):
    prefetch("fig7b", scale, apps=SWEEP_APPS)
    rows = benchmark.pedantic(
        lambda: fig7b_ports(apps=SWEEP_APPS, scale=scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 7(b) — Geomean MMT-FXR speedup vs load/store ports (4 threads)",
        format_table(rows, columns=["ldst_ports", "geomean_speedup"]),
    )
    assert [row["ldst_ports"] for row in rows] == list(LDST_PORT_COUNTS)
    speeds = [row["geomean_speedup"] for row in rows]
    # The machine must stay beneficial across the sweep, and the
    # best-provisioned memory system should not be the worst for MMT.
    assert all(s > 0.9 for s in speeds)
    assert speeds[-1] >= speeds[0] - 0.05
