"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper and prints it
in the paper's layout.  Set ``REPRO_BENCH_SCALE`` to shrink or grow the
workloads (default 1.0 — the calibrated size); completed simulations are
memoised across benchmarks within one pytest session, so figures that
share runs (5(a)/5(b)/5(d)/6) only simulate each point once.

Simulation points are executed up front as a parallel campaign (see
``repro.harness.campaign``): every figure driver calls :func:`prefetch`
before regenerating its rows, which fans the points out across worker
processes and fills the in-memory memo plus the on-disk result cache
(``.repro-cache/``).  ``REPRO_BENCH_WORKERS`` controls the fan-out:
unset uses every core, ``N`` uses N processes, ``0`` disables
prefetching entirely (pure serial, the pre-campaign behaviour).
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

_RAW_WORKERS = os.environ.get("REPRO_BENCH_WORKERS", "")
#: None -> all cores; 0 -> prefetching disabled; N -> N worker processes.
WORKERS = None if _RAW_WORKERS == "" else int(_RAW_WORKERS)


def prefetch(fig_id: str, scale: float, apps=None):
    """Run *fig_id*'s simulation points as a parallel campaign.

    Fills the serial memo caches so the figure regenerators afterwards
    find every run already done.  A best-effort accelerator: failures
    fall through to the serial path, and ``REPRO_BENCH_WORKERS=0``
    skips it entirely.
    """
    if WORKERS == 0:
        return None
    from repro.harness import prefetch_figure

    return prefetch_figure(fig_id, apps=apps, scale=scale, workers=WORKERS)

#: Subset used by the machine-parameter sweeps (Figures 7(b)/(d)) to keep
#: wall time reasonable; spans both workload categories and both ends of
#: the sharing spectrum.
SWEEP_APPS = [
    "ammp", "mcf", "twolf", "vpr",
    "lu", "water-sp", "blackscholes", "canneal",
]


@pytest.fixture(scope="session")
def scale():
    return SCALE


def emit(title: str, body: str) -> None:
    """Print a regenerated table/figure under a banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
