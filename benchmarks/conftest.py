"""Shared benchmark configuration.

Each benchmark regenerates one table or figure of the paper and prints it
in the paper's layout.  Set ``REPRO_BENCH_SCALE`` to shrink or grow the
workloads (default 1.0 — the calibrated size); completed simulations are
memoised across benchmarks within one pytest session, so figures that
share runs (5(a)/5(b)/5(d)/6) only simulate each point once.
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Subset used by the machine-parameter sweeps (Figures 7(b)/(d)) to keep
#: wall time reasonable; spans both workload categories and both ends of
#: the sharing spectrum.
SWEEP_APPS = [
    "ammp", "mcf", "twolf", "vpr",
    "lu", "water-sp", "blackscholes", "canneal",
]


@pytest.fixture(scope="session")
def scale():
    return SCALE


def emit(title: str, body: str) -> None:
    """Print a regenerated table/figure under a banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
