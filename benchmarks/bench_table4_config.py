"""Tables 4 and 5: simulator configuration and evaluated configurations."""

from conftest import emit

from repro.harness import format_pairs, table4_configuration, table5_configurations


def test_table4_simulator_configuration(benchmark):
    rows = benchmark.pedantic(table4_configuration, rounds=1, iterations=1)
    emit("Table 4 — Simulator configuration", format_pairs(rows))
    as_dict = dict(rows)
    assert as_dict["Threads"] == "4"
    assert as_dict["Issue/Commit Width"] == "8/8"
    assert as_dict["ROB Size"] == "256"
    assert as_dict["LSQ Size"] == "64"
    assert as_dict["ALU/FPU units"] == "6/3"
    assert as_dict["BTB/RAS Size"] == "2048/16"
    assert "1024" in as_dict["Branch Predictor"]
    assert as_dict["DRAM Latency"] == "200"


def test_table5_mmt_configurations(benchmark):
    rows = benchmark.pedantic(table5_configurations, rounds=1, iterations=1)
    emit("Table 5 — MMT and baseline configurations", format_pairs(rows))
    names = [name for name, _ in rows]
    assert names == ["Base", "MMT-F", "MMT-FX", "MMT-FXR", "Limit"]
