"""Figure 7(a): performance sensitivity to the Fetch History Buffer size.

MMT-FXR speedup over Base at FHB sizes 8–128.  Paper shape: performance
increases through 32 entries for all applications and keeps creeping up
slightly; the paper picks 32 as the design point (single-cycle CAM).
"""

from conftest import emit, prefetch

from repro.harness import FHB_SIZES, fig7a_fhb_speedup, format_table


def test_fig7a_fhb_size_sweep(benchmark, scale):
    prefetch("fig7a", scale)
    rows = benchmark.pedantic(
        lambda: fig7a_fhb_speedup(scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 7(a) — Speedup vs FHB size (MMT-FXR over Base, 2 threads)",
        format_table(rows, columns=["app"] + list(FHB_SIZES)),
    )
    geo = rows[-1]
    assert geo["app"] == "geomean"
    # The paper's chosen design point (32) must not trail the tiny FHB.
    assert geo[32] >= geo[8] - 0.02
    # All sizes keep the machine functional and within sane speedup bounds.
    for row in rows:
        for size in FHB_SIZES:
            assert 0.5 < row[size] < 3.0
