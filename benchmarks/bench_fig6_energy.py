"""Figure 6: energy consumption per job completed.

Four bars per application (SMT-2T, MMT-2T, SMT-4T, MMT-4T), normalised to
SMT-2T, each split into cache energy, MMT-overhead energy, and the rest.
Paper shape: MMT overhead below 2% of total power; at four threads MMT
consumes 50–90% of the SMT's energy (geomean ~66%), most apps saving
10–20% already at two threads.
"""

from conftest import emit, prefetch

from repro.harness import fig6_energy, format_table


def _flatten(rows):
    flat = []
    for row in rows:
        for label in ("SMT-2T", "MMT-2T", "SMT-4T", "MMT-4T"):
            bar = row[label]
            flat.append(
                {
                    "app": row["app"],
                    "config": label,
                    "cache": bar["cache"],
                    "overhead": bar["mmt_overhead"],
                    "other": bar["other"],
                    "total": bar["total"],
                }
            )
    return flat


def test_fig6_energy_per_job(benchmark, scale):
    prefetch("fig6", scale)
    rows = benchmark.pedantic(
        lambda: fig6_energy(scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 6 — Energy per job, normalised to SMT-2T",
        format_table(
            _flatten(rows),
            columns=["app", "config", "cache", "overhead", "other", "total"],
        ),
    )
    geo = rows[-1]
    assert geo["app"] == "geomean"
    # MMT must reduce energy per job at both thread counts.
    assert geo["MMT-2T"]["total"] < geo["SMT-2T"]["total"]
    assert geo["MMT-4T"]["total"] < geo["SMT-4T"]["total"]
    # Paper: MMT-4T consumes 50-90% of SMT energy (geomean ~66%).
    ratio4 = geo["MMT-4T"]["total"] / geo["SMT-4T"]["total"]
    emit(
        "Figure 6 — geomean summary",
        f"MMT-4T / SMT-4T energy per job: {ratio4:.2f} (paper ~0.66)\n"
        f"MMT-2T / SMT-2T energy per job: "
        f"{geo['MMT-2T']['total'] / geo['SMT-2T']['total']:.2f}",
    )
    assert ratio4 < 0.95
    # Overhead component is small for every application.
    for row in rows[:-1]:
        for label in ("MMT-2T", "MMT-4T"):
            bar = row[label]
            assert bar["mmt_overhead"] / max(bar["total"], 1e-9) < 0.06
