"""Figure 2: distribution of divergent-path length differences.

For each application, the cumulative fraction of divergences whose two
paths differ by at most 16/32/.../512 taken branches.  Paper shape: all
programs except equake and vortex have >85% of divergences within 16 taken
branches — short taken-branch history (the FHB) suffices for remerging.
"""

from conftest import emit, prefetch

from repro.harness import fig2_divergence, format_table
from repro.profiling.divergence import FIG2_BUCKETS


def test_fig2_divergence_histogram(benchmark, scale):
    prefetch("fig2", scale)
    rows = benchmark.pedantic(
        lambda: fig2_divergence(scale=scale), rounds=1, iterations=1
    )
    columns = ["app"] + [f"<={b}" for b in FIG2_BUCKETS]
    emit(
        "Figure 2 — Divergent path length difference (taken branches, cumulative)",
        format_table(rows, columns=columns, float_format="{:.2f}"),
    )
    within16 = {row["app"]: row["<=16"] for row in rows}
    hard = {"equake", "vortex"}
    easy_apps = [app for app in within16 if app not in hard]
    # Paper: >85% within 16 taken branches for all but equake/vortex.
    good = sum(1 for app in easy_apps if within16[app] >= 0.85)
    assert good >= len(easy_apps) * 0.7
    # The two long-tail applications must actually show a long tail.
    assert within16["equake"] < 0.85 or within16["vortex"] < 0.85
