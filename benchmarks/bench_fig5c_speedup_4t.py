"""Figure 5(c): speedups with four hardware threads.

Paper headline: MMT-FXR geomean ~1.25 over a four-thread SMT, with larger
gains than at two threads (more merge opportunity, more contention
relieved).
"""

from conftest import emit, prefetch

from repro.harness import fig5_speedups, format_table


def test_fig5c_speedups_four_threads(benchmark, scale):
    prefetch("fig5c", scale)
    rows4 = benchmark.pedantic(
        lambda: fig5_speedups(4, scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 5(c) — Speedup over 4-thread SMT (4 threads)",
        format_table(
            rows4, columns=["app", "MMT-F", "MMT-FX", "MMT-FXR", "Limit"]
        ),
    )
    geo4 = rows4[-1]
    assert geo4["MMT-FXR"] > 1.10  # paper: 1.25
    assert geo4["Limit"] > geo4["MMT-FXR"]

    # The paper's central scaling claim: 4-thread gains exceed 2-thread.
    geo2 = fig5_speedups(2, scale=scale)[-1]  # cached if fig5a ran first
    emit(
        "Figure 5(a)+(c) — geomean summary",
        f"2T MMT-FXR {geo2['MMT-FXR']:.3f} (paper 1.15)   "
        f"4T MMT-FXR {geo4['MMT-FXR']:.3f} (paper 1.25)",
    )
    assert geo4["MMT-FXR"] > geo2["MMT-FXR"]
