"""Fast-path engine benchmark: reference vs fast on the fig5a sweep.

Runs every fig5a configuration (Base, MMT-F, MMT-FX, MMT-FXR, Limit) at
two hardware threads on both engines, printing per-point wall-clock,
instructions/sec, and the fast/reference speedup.  Each point asserts
bit-identical final statistics before its timing counts.

The record appends to the repo-root ``BENCH_fastpath.json`` trajectory
when ``REPRO_BENCH_RECORD=1`` (how the checked-in trajectory is grown —
run it on an otherwise-idle machine, then commit the file); plain runs
only print.  The gate asserts the aggregate speedup stays above the
pinned floor either way.
"""

import os

from conftest import emit

from repro.harness.fastbench import (
    DEFAULT_TRAJECTORY,
    MIN_SPECIALIZE_RATIO,
    PINNED_MIN_SPEEDUP,
    append_trajectory,
    run_fastpath_bench,
    run_specialize_bench,
)

RECORD = os.environ.get("REPRO_BENCH_RECORD", "") == "1"


def _format_rows(points) -> str:
    header = (
        f"{'app':<14}{'config':<10}{'insts':>9}{'ref s':>9}{'fast s':>9}"
        f"{'ref i/s':>10}{'fast i/s':>10}{'speedup':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in points:
        lines.append(
            f"{row['app']:<14}{row['config']:<10}{row['committed_insts']:>9}"
            f"{row['reference_wall_s']:>9.4f}{row['fast_wall_s']:>9.4f}"
            f"{row['reference_ips']:>10}{row['fast_ips']:>10}"
            f"{row['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


def test_fastpath_engine_speedup(benchmark, scale):
    record = benchmark.pedantic(
        lambda: run_fastpath_bench(apps=None, scale=scale),
        rounds=1,
        iterations=1,
    )
    summary = (
        f"aggregate {record['aggregate_speedup']}x "
        f"(per-point {record['min_speedup']}x–{record['max_speedup']}x, "
        f"ref {record['total_reference_wall_s']}s vs "
        f"fast {record['total_fast_wall_s']}s)"
    )
    emit(
        "Fast-path engine — fig5a sweep, reference vs fast wall-clock",
        _format_rows(record["points"]) + "\n\n" + summary,
    )
    if RECORD:
        path = append_trajectory(record)
        print(f"recorded trajectory point -> {path}")
    else:
        print(f"not recorded (set REPRO_BENCH_RECORD=1); {DEFAULT_TRAJECTORY}")
    assert record["aggregate_speedup"] >= PINNED_MIN_SPEEDUP, (
        f"fast engine regressed: aggregate speedup "
        f"{record['aggregate_speedup']}x fell below the pinned "
        f"{PINNED_MIN_SPEEDUP}x floor"
    )


def _format_spec_rows(points) -> str:
    header = (
        f"{'app':<14}{'config':<10}{'insts':>9}{'off s':>9}{'on s':>9}"
        f"{'ratio':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in points:
        lines.append(
            f"{row['app']:<14}{row['config']:<10}{row['committed_insts']:>9}"
            f"{row['off_wall_s']:>9.4f}{row['on_wall_s']:>9.4f}"
            f"{row['ratio']:>7.2f}x"
        )
    return "\n".join(lines)


def test_fastpath_specialization(benchmark, scale):
    record = benchmark.pedantic(
        lambda: run_specialize_bench(apps=None, scale=scale),
        rounds=1,
        iterations=1,
    )
    summary = (
        f"aggregate off/on ratio {record['aggregate_ratio']}x "
        f"(per-point {record['min_ratio']}x–{record['max_ratio']}x, "
        f"off {record['total_off_wall_s']}s vs "
        f"on {record['total_on_wall_s']}s)"
    )
    emit(
        "Fast-path specialization — fig5a sweep, manifests off vs on",
        _format_spec_rows(record["points"]) + "\n\n" + summary,
    )
    if RECORD:
        path = append_trajectory(record)
        print(f"recorded trajectory point -> {path}")
    else:
        print(f"not recorded (set REPRO_BENCH_RECORD=1); {DEFAULT_TRAJECTORY}")
    assert record["aggregate_ratio"] >= MIN_SPECIALIZE_RATIO, (
        f"specialization slowed the fast loop: off/on ratio "
        f"{record['aggregate_ratio']}x fell below the "
        f"{MIN_SPECIALIZE_RATIO}x floor"
    )
