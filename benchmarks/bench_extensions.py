"""Extension experiments beyond the paper's evaluation.

1. **Message passing** — the third SPMD category of §3.1, which the paper
   names but defers (§7: "we have not evaluated another application class
   that would benefit greatly from our MMT hardware: message-passing
   applications").  Ranked processes exchange values over SEND/TRECV
   channels around context-identical compute.
2. **Software remerge hints** — Thread Fusion [36]-style compiler-marked
   rendezvous points, which the paper's related-work section says MMT
   "could be used in conjunction with ... to provide even better
   performance".  Measured here for both time and energy, since Thread
   Fusion itself targeted energy (ISLPED).
"""

import dataclasses

from conftest import emit

from repro.core.config import MMTConfig
from repro.harness import format_table, geomean
from repro.pipeline.config import MachineConfig
from repro.pipeline.smt import SMTCore
from repro.power.model import energy_of_run
from repro.workloads.generator import build_workload
from repro.workloads.message_passing import build_mp_workload
from repro.workloads.profiles import get_profile


def test_ext_message_passing(benchmark, scale):
    def sweep():
        rows = []
        iterations = max(8, int(48 * scale))
        for nctx, pattern in ((2, "ring"), (2, "pairs"), (4, "ring"), (4, "pairs")):
            cycles = {}
            merged = 0.0
            for config in (MMTConfig.base(), MMTConfig.mmt_fxr()):
                build = build_mp_workload(nctx, pattern, iterations=iterations)
                job = build.job()
                core = SMTCore(MachineConfig(num_threads=nctx), config, job)
                stats = core.run()
                cycles[config.name] = stats.cycles
                if config.name == "MMT-FXR":
                    breakdown = stats.identified_breakdown()
                    merged = (
                        breakdown["exec_identical"]
                        + breakdown["exec_identical_regmerge"]
                    )
                    assert job.channels.total_queued() == 0
            rows.append(
                {
                    "pattern": f"{pattern}-{nctx}rank",
                    "speedup": cycles["Base"] / cycles["MMT-FXR"],
                    "exec_identical": merged,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension — message-passing workloads (paper §7 future work)",
        format_table(rows, columns=["pattern", "speedup", "exec_identical"]),
    )
    # The compute portion merges even though every SEND/TRECV splits.
    assert all(row["exec_identical"] > 0.15 for row in rows)
    # Four ranks must merge at least as profitably as two (the paper's
    # thread-scaling trend carries over to the new category).
    by = {row["pattern"]: row["speedup"] for row in rows}
    assert by["ring-4rank"] >= by["ring-2rank"] - 0.05


def test_ext_software_hints(benchmark, scale):
    apps = ["vpr", "twolf", "vortex", "water-ns"]

    def sweep():
        rows = []
        for app in apps:
            row = {"app": app}
            hinted = build_workload(get_profile(app), 2, scale=scale, hints=True)
            base = SMTCore(
                MachineConfig(num_threads=2), MMTConfig.base(), hinted.job()
            )
            base_stats = base.run()
            for label, config in (
                ("MMT-FXR", MMTConfig.mmt_fxr()),
                ("MMT-FXR+H", MMTConfig.mmt_fxr_hints()),
            ):
                job = hinted.job()
                core = SMTCore(MachineConfig(num_threads=2), config, job)
                stats = core.run()
                energy = energy_of_run(core)
                row[f"{label} speedup"] = base_stats.cycles / stats.cycles
                row[f"{label} merge"] = stats.mode_breakdown()["merge"]
                row[f"{label} E/job"] = energy.total / max(
                    1, stats.committed_thread_insts
                )
            row["energy ratio"] = row["MMT-FXR+H E/job"] / row["MMT-FXR E/job"]
            del row["MMT-FXR E/job"], row["MMT-FXR+H E/job"]
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Extension — Thread Fusion software hints on MMT-FXR (2 threads)",
        format_table(
            rows,
            columns=[
                "app", "MMT-FXR speedup", "MMT-FXR+H speedup",
                "MMT-FXR merge", "MMT-FXR+H merge", "energy ratio",
            ],
        ),
    )
    by_app = {row["app"]: row for row in rows}
    # Hints raise the merge fraction on flag-divergence applications...
    assert by_app["vpr"]["MMT-FXR+H merge"] > by_app["vpr"]["MMT-FXR merge"]
    assert by_app["twolf"]["MMT-FXR+H merge"] > by_app["twolf"]["MMT-FXR merge"]
    # ...and cut vpr's fetch energy, the Thread Fusion objective.
    assert by_app["vpr"]["energy ratio"] < 1.0
