"""Figure 5(d) and the §6.3 remerge statistic.

Breakdown of fetched instructions by fetch mode (MERGE / DETECT / CATCHUP)
under MMT-FXR.  Paper shape: CATCHUP is rare for most programs;
vpr/twolf/vortex spend the least time in MERGE mode; 90% of remerges are
found within 512 fetched branches.
"""

from conftest import emit, prefetch

from repro.harness import fig5d_modes, format_stacked_bars, geomean


def test_fig5d_fetch_mode_breakdown(benchmark, scale):
    prefetch("fig5d", scale)
    rows = benchmark.pedantic(
        lambda: fig5d_modes(2, scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 5(d) — Instruction breakdown by fetch mode (MMT-FXR, 2 threads)",
        format_stacked_bars(rows, "app", ["merge", "detect", "catchup"]),
    )
    by_app = {row["app"]: row for row in rows}
    # Irregular-control applications merge the least (paper §6.3).
    irregular = ["twolf", "vpr", "vortex"]
    regular = ["ammp", "water-sp", "fft"]
    irregular_merge = geomean(max(by_app[a]["merge"], 1e-6) for a in irregular)
    regular_merge = geomean(max(by_app[a]["merge"], 1e-6) for a in regular)
    assert regular_merge > irregular_merge

    distances = [row["remerge_within_512"] for row in rows]
    emit(
        "§6.3 — Remerge distance",
        "fraction of remerges within 512 fetched branches, per app:\n"
        + "\n".join(
            f"  {row['app']:<14} {row['remerge_within_512']:.2f}" for row in rows
        )
        + f"\nmean: {sum(distances) / len(distances):.2f} (paper: ~0.90)",
    )
    assert sum(distances) / len(distances) > 0.75
