"""Figure 7(c): fetch-mode breakdown as the FHB size varies.

Paper shape: larger FHBs capture merge points a small FHB misses (more
MERGE time for equake/ocean/lu/fft/water-ns) but can also lengthen
CATCHUP for twolf/vortex/vpr/water-sp.
"""

from conftest import emit, prefetch

from repro.harness import FHB_SIZES, fig7c_fhb_modes, format_table

APPS = ["equake", "vortex", "lu", "fft", "water-sp", "twolf"]


def test_fig7c_fhb_mode_breakdown(benchmark, scale):
    prefetch("fig7c", scale, apps=APPS)
    rows = benchmark.pedantic(
        lambda: fig7c_fhb_modes(apps=APPS, scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 7(c) — Fetch modes vs FHB size (MMT-FXR, 2 threads)",
        format_table(
            rows,
            columns=["app", "fhb_size", "merge", "detect", "catchup"],
            float_format="{:.2f}",
        ),
    )
    for row in rows:
        total = row["merge"] + row["detect"] + row["catchup"]
        assert abs(total - 1.0) < 1e-9
    # Every (app, size) point ran; 6 apps x 5 sizes.
    assert len(rows) == len(APPS) * len(FHB_SIZES)
