"""Figure 7(d): sensitivity to the instruction fetch width.

Paper shape: MMT's gains shrink as fetch widens (the fetch bottleneck it
relieves disappears) but remain positive — still ~11% at width 32 with a
perfect-prediction trace cache.
"""

from conftest import SWEEP_APPS, emit, prefetch

from repro.harness import FETCH_WIDTHS, fig7d_fetch_width, format_table


def test_fig7d_fetch_width_sweep(benchmark, scale):
    prefetch("fig7d", scale, apps=SWEEP_APPS)
    rows = benchmark.pedantic(
        lambda: fig7d_fetch_width(apps=SWEEP_APPS, scale=scale),
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 7(d) — Geomean MMT-FXR speedup vs fetch width (4 threads)",
        format_table(rows, columns=["fetch_width", "geomean_speedup"]),
    )
    assert [row["fetch_width"] for row in rows] == list(FETCH_WIDTHS)
    speeds = {row["fetch_width"]: row["geomean_speedup"] for row in rows}
    # Gains remain positive even at width 32 (paper: ~11%).
    assert speeds[32] > 1.0
    # Narrow fetch benefits at least as much as the widest machine.
    assert speeds[4] >= speeds[32] - 0.05
