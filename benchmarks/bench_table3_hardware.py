"""Tables 2 and 3: the split-decision logic and the MMT hardware budget."""

from conftest import emit

from repro.harness import format_table, table3_hardware
from repro.power.budget import (
    hardware_budget,
    storage_overhead_fraction,
    total_storage_bits,
)

TABLE2 = """\
Stage    Inst    App   Type  Operation
-------  ------  ----  ----  -------------
Decode   ALU/Ld  Both  F-id  SPLIT
         Branch
         ALU/Br  Both  X-id  MERGE
         Load    MT    X-id  MERGE
         Load    ME    X-id  Check LVIP
Ld/St Q  Store   ME    Both  SPLIT
         Ld/St   MT    Both  No Change
         Load    ME    Both  SPLIT; Verify LVIP Pred"""


def test_table2_split_logic(benchmark):
    """Table 2 is pure logic; verify the implementation honours it."""

    def check():
        from repro.core.config import WorkloadType
        from repro.core.rst import RegisterSharingTable
        from repro.core.splitter import split_itid
        from repro.pipeline.lsq import LoadStoreQueue

        rst = RegisterSharingTable.for_multi_execution()
        # X-id ALU stays merged; F-id (non-identical inputs) splits.
        assert split_itid(0b11, (1,), rst).itids == [0b11]
        rst.set_pair(1, 0, 1, False)
        assert len(split_itid(0b11, (1,), rst).itids) == 2
        # LSQ: ME stores split per context, MT single access.
        from repro.isa.instruction import Instruction
        from repro.isa.opcodes import Opcode
        from repro.core.sync import FetchMode
        from repro.func.executor import Executed
        from repro.pipeline.dyninst import DynInst

        store = Instruction(Opcode.SW, rs1=9, rs2=1, imm=0)
        execs = {
            t: Executed(0, store, (0, 0), None, 0x100, 1, None, 1, t)
            for t in (0, 1)
        }
        di = DynInst(1, 0, store, 0b11, execs, FetchMode.MERGE)
        assert (
            LoadStoreQueue.store_accesses_needed(di, WorkloadType.MULTI_EXECUTION)
            == 2
        )
        assert (
            LoadStoreQueue.store_accesses_needed(di, WorkloadType.MULTI_THREADED)
            == 1
        )
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
    emit("Table 2 — Logic for splitting instructions", TABLE2)


def test_table3_hardware_budget(benchmark):
    rows = benchmark.pedantic(table3_hardware, rounds=1, iterations=1)
    emit(
        "Table 3 — Conservative estimate of hardware requirements",
        format_table(
            rows,
            columns=["component", "description", "area", "delay", "storage_bits"],
            headers=["Component", "Description", "Area", "Delay", "Storage (bits)"],
        ),
    )
    budget = hardware_budget()
    total = total_storage_bits(budget)
    overhead = storage_overhead_fraction(budget)
    emit(
        "Table 3 — Totals",
        f"total MMT storage: {total} bits ({total / 8 / 1024:.1f} KiB)\n"
        f"fraction of on-chip cache storage: {overhead * 100:.2f}% "
        f"(paper: overhead power < 2% of processor power)",
    )
    assert overhead < 0.02
