"""Figure 5(b): fraction of instructions identified as identical.

Under MMT-FXR, per application: execute-identical, execute-identical only
thanks to register merging ("Exe-Identical+RegMerge"), fetch-identical
(fetched together, executed apart), and not identical.  Paper shape: the
mechanism tracks ~60% of the profiled fetch-identical instructions, almost
half of which are execute-identical; equake/mcf/fft/water-ns show a
noticeable RegMerge component.
"""

from conftest import emit, prefetch

from repro.harness import fig1_sharing, fig5b_identified, format_stacked_bars


def test_fig5b_identified_identical(benchmark, scale):
    prefetch("fig5b", scale)
    prefetch("fig1", scale)
    rows = benchmark.pedantic(
        lambda: fig5b_identified(2, scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 5(b) — Identified identical instructions (MMT-FXR, 2 threads)",
        format_stacked_bars(
            rows,
            "app",
            ["exec_identical", "exec_identical_regmerge", "fetch_identical",
             "not_identical"],
        ),
    )
    by_app = {row["app"]: row for row in rows}
    # Register merging must matter for the apps the paper singles out.
    regmerge_apps = ["equake", "mcf", "water-ns"]
    assert any(by_app[a]["exec_identical_regmerge"] > 0.05 for a in regmerge_apps)
    # Identified exec-identical never exceeds the profiled potential by much
    # (identification is bounded by what exists).
    profile_rows = {r["app"]: r for r in fig1_sharing(scale=scale)}
    for app, row in by_app.items():
        identified = row["exec_identical"] + row["exec_identical_regmerge"]
        potential = profile_rows[app]["execute_identical"]
        assert identified <= potential + 0.15
