"""Ablations of design choices DESIGN.md calls out (beyond the paper).

* post-remerge drain (off / capped / full) — the §4.2.7 repair-window
  trade-off;
* trace cache on/off — the paper reports it made a negligible difference;
* catchup budget — the false-positive exit cap.
"""

import dataclasses

from conftest import emit

from repro.core.config import MMTConfig
from repro.harness import format_table, geomean, run_app

APPS = ["ammp", "equake", "vpr", "water-sp"]
THREADS = 2


def _speedup(app, config, scale, machine=None):
    base = run_app(app, MMTConfig.base(), THREADS, machine=machine, scale=scale)
    other = run_app(app, config, THREADS, machine=machine, scale=scale)
    return base.cycles / other.cycles


def test_ablation_remerge_drain(benchmark, scale):
    def sweep():
        rows = []
        for label, drain in (("off", 0), ("capped-12", 12), ("full", 10_000)):
            config = dataclasses.replace(MMTConfig.mmt_fxr(), remerge_drain=drain)
            speeds = {app: _speedup(app, config, scale) for app in APPS}
            rows.append(
                {"drain": label, **speeds, "geomean": geomean(speeds.values())}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — post-remerge drain (MMT-FXR speedup over Base, 2 threads)",
        format_table(rows, columns=["drain"] + APPS + ["geomean"]),
    )
    by_label = {row["drain"]: row["geomean"] for row in rows}
    # The shipped default (off) must not trail the full drain.
    assert by_label["off"] >= by_label["full"] - 0.02


def test_ablation_trace_cache(benchmark, scale):
    from repro.pipeline.config import MachineConfig

    def sweep():
        rows = []
        for label, enabled in (("trace-cache", True), ("plain-L1I", False)):
            machine = MachineConfig(num_threads=THREADS, trace_cache_enabled=enabled)
            speeds = {
                app: _speedup(app, MMTConfig.mmt_fxr(), scale, machine)
                for app in APPS
            }
            rows.append(
                {"fetch": label, **speeds, "geomean": geomean(speeds.values())}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — trace cache (paper: negligible effect on the results)",
        format_table(rows, columns=["fetch"] + APPS + ["geomean"]),
    )
    values = [row["geomean"] for row in rows]
    assert abs(values[0] - values[1]) < 0.20  # same ballpark either way


def test_ablation_catchup_budget(benchmark, scale):
    def sweep():
        rows = []
        for budget in (8, 64, 512):
            config = dataclasses.replace(
                MMTConfig.mmt_fxr(), max_catchup_branches=budget
            )
            speeds = {app: _speedup(app, config, scale) for app in APPS}
            rows.append(
                {"budget": budget, **speeds, "geomean": geomean(speeds.values())}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — CATCHUP branch budget",
        format_table(rows, columns=["budget"] + APPS + ["geomean"]),
    )
    for row in rows:
        assert row["geomean"] > 0.7


def test_ablation_gang_scheduling(benchmark, scale):
    """§4.4: MMT assumes gang scheduling.  Quantify what scheduling skew
    costs by delaying the second context's start."""
    from repro.pipeline.config import MachineConfig
    from repro.pipeline.smt import SMTCore
    from repro.workloads.generator import build_workload
    from repro.workloads.profiles import get_profile

    apps = ["ammp", "water-sp"]

    def sweep():
        rows = []
        for delay in (0, 50, 150, 400):
            row = {"skew_cycles": delay}
            for app in apps:
                build = build_workload(get_profile(app), 2, scale=scale)
                base = SMTCore(
                    MachineConfig(num_threads=2), MMTConfig.base(), build.job()
                )
                base_cycles = base.run().cycles
                mmt = SMTCore(
                    MachineConfig(num_threads=2),
                    MMTConfig.mmt_fxr(),
                    build.job(),
                    start_delays=[0, delay],
                )
                stats = mmt.run()
                ident = stats.identified_breakdown()
                row[f"{app} speedup"] = base_cycles / stats.cycles
                row[f"{app} exec-id"] = (
                    ident["exec_identical"] + ident["exec_identical_regmerge"]
                )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — scheduling skew (§4.4 gang scheduling)",
        format_table(
            rows,
            columns=["skew_cycles"]
            + [f"{app} {k}" for app in apps for k in ("speedup", "exec-id")],
        ),
    )
    by_delay = {row["skew_cycles"]: row for row in rows}
    # Aligned starts must merge far more than heavily skewed ones.
    assert by_delay[0]["ammp exec-id"] > 2 * by_delay[400]["ammp exec-id"]


def test_ablation_merge_read_ports(benchmark, scale):
    """§4.2.7 bounds register merging by spare register-file read ports;
    sweep the budget to see how port-starved the repairs are."""
    def sweep():
        rows = []
        for ports in (1, 2, 4, 8):
            config = dataclasses.replace(
                MMTConfig.mmt_fxr(), merge_read_ports=ports
            )
            speeds = {app: _speedup(app, config, scale) for app in APPS}
            rows.append(
                {"read_ports": ports, **speeds,
                 "geomean": geomean(speeds.values())}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "Ablation — register-merge read ports (§4.2.7)",
        format_table(rows, columns=["read_ports"] + APPS + ["geomean"]),
    )
    speeds = [row["geomean"] for row in rows]
    # More ports never hurt; the default (2) captures most of the benefit.
    assert speeds[-1] >= speeds[0] - 0.03
