"""Figure 5(a): speedups with two hardware threads.

Per application: MMT-F, MMT-FX, MMT-FXR, and Limit over a two-thread
traditional SMT.  Paper headline: MMT-FXR geomean ~1.15 at two threads;
ammp/equake/mcf/water/swaptions/fluidanimate gain the most, while
libsvm/twolf/vortex/vpr/ocean/lu/fft gain 0–10%.
"""

from conftest import emit, prefetch

from repro.harness import fig5_speedups, format_table


def test_fig5a_speedups_two_threads(benchmark, scale):
    prefetch("fig5a", scale)
    rows = benchmark.pedantic(
        lambda: fig5_speedups(2, scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 5(a) — Speedup over 2-thread SMT (2 threads)",
        format_table(
            rows, columns=["app", "MMT-F", "MMT-FX", "MMT-FXR", "Limit"]
        ),
    )
    geo = rows[-1]
    assert geo["app"] == "geomean"
    # Shape: full MMT beats shared-execution-only beats nothing; Limit is
    # an upper bound on all of them.
    assert geo["MMT-FXR"] >= geo["MMT-FX"] - 0.02
    assert geo["Limit"] > geo["MMT-FXR"]
    assert geo["MMT-FXR"] > 1.0  # paper: 1.15
    by_app = {row["app"]: row for row in rows}
    # The paper's strong gainers must beat its weak gainers.
    strong = ["ammp", "mcf", "water-sp"]
    weak = ["twolf", "vortex", "vpr"]
    strong_mean = sum(by_app[a]["MMT-FXR"] for a in strong) / len(strong)
    weak_mean = sum(by_app[a]["MMT-FXR"] for a in weak) / len(weak)
    assert strong_mean > weak_mean
    for row in rows:
        assert row["Limit"] > 1.0  # identical clones always merge profitably
