"""Figure 1: breakdown of instruction-sharing characteristics.

Profiles every application's functional traces pairwise and reports the
execute-identical / fetch-identical-only / not-identical split, alongside
the paper's values.  Headline targets: ~88% fetch-identical and ~35%
execute-identical on average.
"""

from conftest import emit, prefetch

from repro.harness import fig1_sharing, format_table


def test_fig1_sharing_breakdown(benchmark, scale):
    prefetch("fig1", scale)
    rows = benchmark.pedantic(
        lambda: fig1_sharing(scale=scale), rounds=1, iterations=1
    )
    emit(
        "Figure 1 — Instruction sharing characteristics",
        format_table(
            rows,
            columns=[
                "app",
                "execute_identical",
                "fetch_identical_only",
                "not_identical",
                "paper_execute_identical",
                "paper_fetch_identical",
            ],
            headers=[
                "app", "exec-id", "fetch-only", "not-id",
                "paper exec", "paper fetch",
            ],
        ),
    )
    average = rows[-1]
    assert average["app"] == "average"
    # Shape targets from the paper's motivation study.
    assert average["execute_identical"] > 0.25
    assert average["not_identical"] < 0.25
    fetch_total = average["execute_identical"] + average["fetch_identical_only"]
    assert fetch_total > 0.70
