"""Host self-profiler: attribution, transparency, detach, exports."""

import pytest

from repro.core.config import MMTConfig
from repro.obs.prof import PROFILE_REGIONS, RESIDUAL_REGION, HostProfiler
from repro.pipeline.fast import FastSMTCore
from repro.workloads.generator import build_workload
from repro.workloads.profiles import get_profile
from tests.test_differential import SCALE, run_pipeline


def build_core(app="mcf", nctx=2, seed=7, config=None, core_cls=FastSMTCore):
    """A ready-to-run core (not yet run) plus its build."""
    from repro.pipeline.config import MachineConfig

    config = config or MMTConfig.mmt_fxr()
    build = build_workload(get_profile(app), nctx, scale=SCALE, seed=seed)
    job = build.limit_job() if config.limit_identical else build.job()
    machine = MachineConfig(num_threads=max(2, nctx))
    return core_cls(machine, config, job, strict=True), build


@pytest.fixture(scope="module")
def profiled():
    """One profiled fast-engine run shared by the read-only tests."""
    core, _ = build_core()
    prof = HostProfiler()
    stats = prof.run(core)
    return core, prof, stats


def test_rare_paths_are_attributed(profiled):
    core, prof, stats = profiled
    assert core.ran_fast_loop
    assert prof.total_wall > 0
    # The MMT-FXR mcf point exercises control flow and stores for sure;
    # which other rare paths fire is workload-dependent.
    assert prof.counts.get("control", 0) > 0
    assert prof.counts.get("store_commit", 0) > 0
    for region in prof.totals:
        assert prof.totals[region] >= 0.0
        assert prof.counts[region] > 0


def test_residual_is_the_fast_loop(profiled):
    _, prof, _ = profiled
    assert 0.0 <= prof.residual() <= prof.total_wall
    rows = prof.report_rows()
    regions = [row["region"] for row in rows]
    assert RESIDUAL_REGION in regions
    # Shares are a partition of the run's wall time.
    assert sum(row["share"] for row in rows) == pytest.approx(1.0, abs=1e-6)
    # Sorted largest-first.
    selfs = [row["self_s"] for row in rows]
    assert selfs == sorted(selfs, reverse=True)


def test_profiling_is_simulation_transparent(profiled):
    """A profiled run commits bit-identical statistics."""
    _, _, stats = profiled
    plain, _ = build_core()
    assert plain.run().__dict__ == stats.__dict__


def test_detach_restores_originals():
    core, _ = build_core()
    prof = HostProfiler()
    prof.attach(core)
    assert "_split" in core.__dict__  # instance-patched
    with pytest.raises(RuntimeError, match="already attached"):
        prof.attach(core)
    prof.detach()
    for _region, attr in PROFILE_REGIONS:
        assert attr not in core.__dict__
    assert "try_commit_store" not in core.lsq.__dict__
    from repro.pipeline import issue_stage

    assert issue_stage.squash_thread.__name__ == "squash_thread"
    # Detached core still runs fine.
    assert core.run().committed_thread_insts > 0


def test_profiler_works_on_reference_engine():
    from repro.pipeline.smt import SMTCore

    core, _ = build_core(core_cls=SMTCore)
    prof = HostProfiler()
    stats = prof.run(core)
    assert stats.committed_thread_insts > 0
    assert prof.counts.get("control", 0) > 0


def test_chrome_trace_export(tmp_path):
    from repro.obs import load_chrome_trace, validate_chrome_trace

    core, _ = build_core(app="fft", seed=3)
    prof = HostProfiler(record_slices=True)
    prof.run(core)
    path = prof.write_chrome_trace(tmp_path / "host.json")
    document = load_chrome_trace(path)
    assert validate_chrome_trace(document) == []
    events = document["traceEvents"]
    assert events and all(e["ph"] == "X" for e in events)
    assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in events)
    names = {e["name"] for e in events}
    assert names <= {r for r, _a in PROFILE_REGIONS} | {
        "store_commit", "squash"
    }


def test_chrome_trace_requires_slices(profiled):
    _, prof, _ = profiled
    with pytest.raises(ValueError, match="record_slices"):
        prof.chrome_trace()


def test_as_dict_is_json_ready(profiled):
    import json

    _, prof, _ = profiled
    document = prof.as_dict()
    json.dumps(document)  # must not raise
    assert document["total_wall_s"] == prof.total_wall
    assert document["regions"] == prof.report_rows()


def test_exclusive_attribution_hands_time_up():
    """A wrapped region calling another wrapped region keeps only its
    own self-time; the run totals still bound the wall clock."""
    core, _ = build_core(app="ammp", seed=12)
    prof = HostProfiler()
    prof.run(core)
    assert sum(prof.totals.values()) <= prof.total_wall + 1e-6
