"""Commit-time register merging unit (paper §4.2.7)."""

from repro.core.regmerge import RegisterMergeUnit, values_equal
from repro.core.rst import RegisterSharingTable


def unit(threads=2, ports=2):
    merge = RegisterMergeUnit(threads, read_ports=ports)
    merge.new_cycle()
    return merge


def test_values_equal_kinds():
    assert values_equal(1, 1)
    assert values_equal(1.5, 1.5)
    assert not values_equal(1, 1.0)  # int/float encodings differ
    assert not values_equal(1, 2)
    assert not values_equal(float("nan"), float("nan"))


def test_writer_tracking():
    merge = unit()
    assert merge.no_active_writer[0][5]
    merge.on_writer_allocated(0b01, 5)
    assert not merge.no_active_writer[0][5]
    merge.on_writer_retired(0, 5, mapping_valid=True)
    assert merge.no_active_writer[0][5]


def test_retire_with_invalid_mapping_keeps_bit_clear():
    merge = unit()
    merge.on_writer_allocated(0b01, 5)
    merge.on_writer_allocated(0b01, 5)  # younger writer
    merge.on_writer_retired(0, 5, mapping_valid=False)
    assert not merge.no_active_writer[0][5]


def test_merge_sets_rst_pair_on_equal_values():
    merge = unit()
    rst = RegisterSharingTable()
    merged = merge.try_merge(
        0b01, 5, 42, rst, read_other_value=lambda u: 42, active_mask=0b11
    )
    assert merged == 1
    assert rst.pair_shared(5, 0, 1)
    assert rst.eid_uses_merge(0b11, (5,))  # provenance taint set


def test_no_merge_on_different_values():
    merge = unit()
    rst = RegisterSharingTable()
    merged = merge.try_merge(
        0b01, 5, 42, rst, read_other_value=lambda u: 43, active_mask=0b11
    )
    assert merged == 0
    assert not rst.pair_shared(5, 0, 1)


def test_no_check_when_other_thread_has_active_writer():
    merge = unit()
    rst = RegisterSharingTable()
    merge.on_writer_allocated(0b10, 5)
    merged = merge.try_merge(
        0b01, 5, 42, rst, read_other_value=lambda u: 42, active_mask=0b11
    )
    assert merged == 0
    assert merge.attempts == 0


def test_already_shared_pairs_skip_ports():
    merge = unit()
    rst = RegisterSharingTable()
    rst.set_pair(5, 0, 1, True)
    merge.try_merge(0b01, 5, 42, rst, lambda u: 42, active_mask=0b11)
    assert merge.attempts == 0


def test_read_port_budget():
    merge = RegisterMergeUnit(4, read_ports=1)
    merge.new_cycle()
    rst = RegisterSharingTable()
    merged = merge.try_merge(0b0001, 5, 42, rst, lambda u: 42, active_mask=0b1111)
    assert merged == 1  # only one check fit in the port budget
    assert merge.port_starved == 1
    merge.new_cycle()
    merged = merge.try_merge(0b0001, 5, 42, rst, lambda u: 42, active_mask=0b1111)
    assert merged == 1  # budget refreshed


def test_inactive_threads_skipped():
    merge = unit(threads=4)
    rst = RegisterSharingTable()
    merged = merge.try_merge(0b0001, 5, 42, rst, lambda u: 42, active_mask=0b0011)
    assert merged == 1  # only thread 1 was active and checked
    assert not rst.pair_shared(5, 0, 2)


def test_unready_other_value_skipped():
    merge = unit()
    rst = RegisterSharingTable()
    merged = merge.try_merge(0b01, 5, 42, rst, lambda u: None, active_mask=0b11)
    assert merged == 0


def test_merged_committer_sets_pairs_for_all_owners():
    merge = unit(threads=4)
    rst = RegisterSharingTable()
    merged = merge.try_merge(0b0011, 5, 7, rst, lambda u: 7, active_mask=0b1111)
    assert merged == 2  # threads 2 and 3 both matched
    assert rst.pair_shared(5, 0, 2) and rst.pair_shared(5, 1, 2)
    assert rst.pair_shared(5, 0, 3) and rst.pair_shared(5, 1, 3)
