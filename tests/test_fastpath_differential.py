"""Differential fuzzing: the fast-path engine vs the reference core.

Seeded random programs from :mod:`repro.workloads.generator` run through
both :class:`~repro.pipeline.smt.SMTCore` (the oracle) and
:class:`~repro.pipeline.fast.FastSMTCore` under Base, MMT-F and MMT-FXR.
The fast engine must be *cycle-exact*: identical final :class:`SimStats`,
identical architectural register and memory state, and an identical
commit-order instruction stream (plus per-cycle fetch sessions), compared
against the reference observer's FETCH/COMMIT event trace.

The program budget scales with ``--runs`` (see ``conftest.py``): the
tier-1 default keeps commit-time runs fast, nightly CI passes
``--runs=200`` for 200 seeded programs per configuration.  Everything is
seeded, so failures reproduce.
"""

import pytest

from repro.core.config import MMTConfig
from repro.obs import MemorySink, Observer
from repro.obs.events import EventKind
from repro.pipeline.fast import ENGINES, FastSMTCore, resolve_engine
from repro.pipeline.smt import SMTCore
from repro.workloads.generator import build_workload
from repro.workloads.profiles import APP_ORDER, get_profile
from tests.test_differential import CONFIGS, SCALE, run_pipeline

#: Tier-1 fuzz budget (seeded programs per configuration) when ``--runs``
#: is not given.
DEFAULT_RUNS = 10

#: Shared-fetch-only coverage on top of the differential suite's pair.
ENGINE_CONFIGS = CONFIGS + [("MMT-F", MMTConfig.mmt_f())]

#: Context counts cycled across fuzz cases: SMT pairs dominate (the
#: paper's shape), with 4-way and single-context shapes interleaved.
_NCTX = (2, 4, 1, 2)


def fuzz_case(index: int) -> tuple[str, int, int]:
    """Deterministic (app, nctx, seed) for fuzz program *index*."""
    app = APP_ORDER[index % len(APP_ORDER)]
    nctx = _NCTX[index % len(_NCTX)]
    return app, nctx, 1000 + index


def pytest_generate_tests(metafunc):
    if "fuzz_index" in metafunc.fixturenames:
        runs = metafunc.config.getoption("--runs") or DEFAULT_RUNS
        cases = [fuzz_case(i) for i in range(runs)]
        metafunc.parametrize(
            "fuzz_index",
            range(runs),
            ids=[f"{a}-{n}t-s{s}" for a, n, s in cases],
        )


def reference_trace(events) -> list[tuple]:
    """Reference FETCH/COMMIT events in the fast engine's trace format."""
    out = []
    for event in events:
        if event.kind is EventKind.FETCH:
            data = event.data
            out.append(("F", event.cycle, event.tid, event.pc, data["gid"],
                        data["mask"], data["mode"], data["count"]))
        elif event.kind is EventKind.COMMIT:
            data = event.data
            out.append(("C", event.cycle, event.tid, event.pc, event.seq,
                        data["itid"], data["threads"]))
    return out


def assert_cycle_exact(build, config, nctx, label):
    """Both engines over one build: stats, state, and traces must match."""
    obs = Observer(sink=MemorySink())
    ref, ref_job = run_pipeline(build, config, nctx, obs=obs)
    trace: list[tuple] = []
    fast, fast_job = run_pipeline(
        build, config, nctx, core_cls=FastSMTCore, trace=trace
    )
    assert fast.stats.__dict__ == ref.stats.__dict__, (
        f"{label}: SimStats diverged"
    )
    for ctx in range(nctx):
        assert list(fast.states[ctx].regs) == list(ref.states[ctx].regs), (
            f"{label}: register state of context {ctx} diverged"
        )
    ref_mems = [space.snapshot() for space in ref_job.address_spaces]
    fast_mems = [space.snapshot() for space in fast_job.address_spaces]
    assert fast_mems == ref_mems, f"{label}: memory diverged"
    want = reference_trace(obs.sink.events)
    if trace != want:
        first = min(len(trace), len(want))
        for i, (got, exp) in enumerate(zip(trace, want)):
            if got != exp:
                first = i
                break
        pytest.fail(
            f"{label}: fetch/commit stream diverged at record {first}: "
            f"fast={trace[first] if first < len(trace) else '<end>'} "
            f"ref={want[first] if first < len(want) else '<end>'}"
        )
    return ref.stats


def test_fast_engine_fuzz_cycle_exact(fuzz_index):
    """One seeded program, every configuration, both engines."""
    app, nctx, seed = fuzz_case(fuzz_index)
    build = build_workload(get_profile(app), nctx, scale=SCALE, seed=seed)
    for label, config in ENGINE_CONFIGS:
        assert_cycle_exact(build, config, nctx, f"{app}-{nctx}t-s{seed}/{label}")


#: Tier-2 coverage: the two fig5a configs the tier-1 loop leaves out.
DEEP_CONFIGS = [("MMT-FX", MMTConfig.mmt_fx()), ("Limit", MMTConfig.limit())]


@pytest.mark.slow
def test_fast_engine_deep_sweep_remaining_configs(fuzz_index):
    """Tier 2 (``--run-slow``): same exactness bar for MMT-FX and Limit,
    completing both-engine coverage of every fig5a configuration."""
    app, nctx, seed = fuzz_case(fuzz_index)
    build = build_workload(get_profile(app), nctx, scale=SCALE, seed=seed)
    for label, config in DEEP_CONFIGS:
        assert_cycle_exact(build, config, nctx, f"{app}-{nctx}t-s{seed}/{label}")


def test_fast_engine_paranoid_fuzz(fuzz_index, monkeypatch):
    """Paranoid mode re-validates every guard the manifests strip: each
    skipped check is re-executed and a statically-impossible rare path
    that fires raises :class:`SpecializationViolation`.  Completing
    cycle-exact is the zero-violations proof; the counter check makes
    sure the assertions actually ran instead of being compiled away.

    Nightly CI runs this (and the whole differential suite) with
    ``--runs=200`` under ``REPRO_SPECIALIZE_PARANOID=1``.
    """
    monkeypatch.setenv("REPRO_SPECIALIZE_PARANOID", "1")
    app, nctx, seed = fuzz_case(fuzz_index)
    build = build_workload(get_profile(app), nctx, scale=SCALE, seed=seed)
    config = MMTConfig.mmt_fxr()
    ref, _ = run_pipeline(build, config, nctx)
    fast, _ = run_pipeline(build, config, nctx, core_cls=FastSMTCore)
    assert fast.stats.__dict__ == ref.stats.__dict__
    assert fast.paranoid_checks > 0, (
        "paranoid mode ran but never exercised a stripped guard"
    )


def test_fast_engine_without_specialization_cycle_exact():
    """--no-specialize must be the same simulation, guard by guard."""
    from repro.pipeline.config import MachineConfig

    build = build_workload(get_profile("ammp"), 2, scale=SCALE, seed=11)
    for label, config in ENGINE_CONFIGS:
        ref, _ = run_pipeline(build, config, 2)
        job = build.limit_job() if config.limit_identical else build.job()
        core = FastSMTCore(
            MachineConfig(num_threads=2), config, job, strict=True,
            specialize=False,
        )
        stats = core.run()
        assert stats.__dict__ == ref.stats.__dict__, f"{label}: diverged"
        assert core.ran_fast_loop
        assert all(m is None for m in core.spec_manifests)


def test_engine_registry():
    assert set(ENGINES) == {"reference", "fast"}
    assert resolve_engine("reference") is SMTCore
    assert resolve_engine("fast") is FastSMTCore
    assert issubclass(FastSMTCore, SMTCore)
    with pytest.raises(ValueError, match="unknown engine"):
        resolve_engine("warp")


def test_fast_engine_rejects_trace_with_observer():
    """Trace capture needs the fast loop; an active observer forces the
    reference loop, so the combination is refused loudly."""
    build = build_workload(get_profile("fft"), 2, scale=SCALE, seed=3)
    from repro.pipeline.config import MachineConfig

    core = FastSMTCore(
        MachineConfig(num_threads=2), MMTConfig.base(), build.job(),
        obs=Observer(sink=MemorySink()), trace=[],
    )
    with pytest.raises(ValueError, match="observer"):
        core.run()


def test_fast_engine_with_observer_falls_back_to_reference_loop():
    """With an observer attached the fast engine runs the reference loop
    (exact event streams) and still matches the reference stats."""
    build = build_workload(get_profile("mcf"), 2, scale=SCALE, seed=4)
    config = MMTConfig.mmt_fxr()
    ref_obs = Observer(sink=MemorySink())
    ref, _ = run_pipeline(build, config, 2, obs=ref_obs)
    fast_obs = Observer(sink=MemorySink())
    fast, _ = run_pipeline(
        build, config, 2, core_cls=FastSMTCore, obs=fast_obs
    )
    assert fast.stats.__dict__ == ref.stats.__dict__
    assert reference_trace(fast_obs.sink.events) == reference_trace(
        ref_obs.sink.events
    )
