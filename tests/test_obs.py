"""Observability: event tracing, interval metrics, watchdog, exports."""

import pytest

from repro.core.config import MMTConfig
from repro.harness import experiment
from repro.harness.experiment import trace_run
from repro.harness.results import dump_trace
from repro.obs import (
    EventKind,
    FlightRecorder,
    MemorySink,
    Observer,
    WatchdogError,
    chrome_trace,
    load_chrome_trace,
    load_dump,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.pipeline.stats import StatsConsistencyError


@pytest.fixture(scope="module")
def traced():
    """One fully observed MMT-FXR run shared by the read-only tests."""
    return trace_run("ammp", MMTConfig.mmt_fxr(), 2, scale=0.1)


# ----------------------------------------------------------- event tracing
def test_event_counts_reconcile_with_final_stats(traced):
    run, obs = traced
    counts = obs.sink.counts()
    stats = run.stats
    assert counts.get("commit", 0) == stats.committed_entries
    assert counts.get("issue", 0) == stats.issued_entries
    assert counts.get("fetch", 0) == stats.fetch_sessions
    assert counts.get("mispredict", 0) == stats.branch_mispredicts
    sync = run.sync_stats
    assert counts.get("merge", 0) == sync.remerges
    assert counts.get("split", 0) == sync.divergences


def test_event_stream_is_cycle_ordered(traced):
    _, obs = traced
    cycles = [event.cycle for event in obs.sink.events]
    assert cycles == sorted(cycles)
    assert obs.sink.dropped == 0


def test_issue_precedes_commit_per_entry(traced):
    _, obs = traced
    issued = {}
    for event in obs.sink.events:
        if event.kind is EventKind.ISSUE:
            issued[event.seq] = event.cycle
        elif event.kind is EventKind.COMMIT and event.seq in issued:
            assert issued[event.seq] <= event.cycle
    assert issued  # the run actually issued something


def test_bounded_sink_drops_oldest_but_counts():
    run, obs = trace_run("ammp", MMTConfig.base(), 2, scale=0.1,
                         sink_capacity=50)
    assert len(obs.sink.events) == 50
    assert obs.sink.dropped > 0
    # The retained suffix still ends with the run's final events.
    assert obs.sink.events[-1].cycle <= run.stats.cycles


def test_observer_attachment_is_timing_invisible():
    experiment.clear_cache()
    plain = experiment.run_app("ammp", MMTConfig.mmt_fxr(), 2, scale=0.1,
                               use_cache=False)
    traced_run, _ = trace_run("ammp", MMTConfig.mmt_fxr(), 2, scale=0.1)
    assert plain.stats.cycles == traced_run.stats.cycles
    assert plain.stats.committed_entries == traced_run.stats.committed_entries


# --------------------------------------------------------- interval metrics
def test_interval_sums_reconcile_exactly(traced):
    run, obs = traced
    assert obs.interval.reconcile(run.stats) == []
    totals = obs.interval.totals()
    assert totals["committed_thread_insts"] == \
        run.stats.committed_thread_insts


def test_intervals_tile_the_run(traced):
    run, obs = traced
    samples = obs.interval.samples
    assert samples, "run must produce at least one interval"
    assert samples[0].start_cycle == 0
    for prev, cur in zip(samples, samples[1:]):
        assert cur.start_cycle == prev.end_cycle
    assert samples[-1].end_cycle == run.stats.cycles


def test_interval_rows_and_shares(traced):
    _, obs = traced
    for sample in obs.interval.samples:
        share = sample.mode_share()
        if sample.fetched_thread_insts:
            assert sum(share.values()) == pytest.approx(1.0)
        row = sample.as_dict()
        assert row["end_cycle"] > row["start_cycle"]
        assert 0.0 <= row["rst_sharing"] <= 1.0


def test_reconcile_flags_a_corrupted_counter(traced):
    import copy

    run, obs = traced
    stats = copy.deepcopy(run.stats)
    stats.fetch_sessions += 7
    problems = obs.interval.reconcile(stats)
    assert any("fetch_sessions" in p for p in problems)


# ------------------------------------------------------ watchdog + recorder
def test_watchdog_fires_on_injected_livelock(tmp_path):
    obs = Observer(recorder=FlightRecorder(capacity=64), watchdog_cycles=200)
    dump_path = tmp_path / "wedged.flight.json"
    machine = experiment._normalize_machine(None, 2)
    with pytest.raises(WatchdogError) as excinfo:
        experiment._simulate(
            "ammp", MMTConfig.base(), 2, machine, 0.1, True,
            obs=obs, failure_dump=str(dump_path),
            prepare=experiment._wedge_fetch,
        )
    err = excinfo.value
    assert "no instruction committed in 200 cycles" in str(err)
    assert err.dump is not None
    # The failure dump landed on disk and round-trips.
    assert dump_path.exists()
    document = load_dump(dump_path)
    assert document["error"] == str(err)
    assert document["cycle"] >= 200
    kinds = [event["kind"] for event in document["events"]]
    assert kinds[-1] == "watchdog"
    assert document["committed_thread_insts"] == 0
    assert document["occupancy"]["rob"] == 0  # nothing ever fetched
    assert len(document["threads"]) == 2


def test_watchdog_fires_inside_fast_loop(tmp_path):
    """The no-forward-progress watchdog is enforced *from the fast loop*
    via the SampledObserver boundary check — no reference fallback —
    with the same message and flight dump as the reference engine."""
    from repro.obs import SampledObserver

    obs = SampledObserver(
        recorder=FlightRecorder(capacity=64), watchdog_cycles=200
    )
    dump_path = tmp_path / "wedged-fast.flight.json"
    machine = experiment._normalize_machine(None, 2)
    with pytest.raises(WatchdogError) as excinfo:
        experiment._simulate(
            "ammp", MMTConfig.base(), 2, machine, 0.1, True,
            obs=obs, failure_dump=str(dump_path),
            prepare=experiment._wedge_fetch, engine="fast",
        )
    err = excinfo.value
    assert "no instruction committed in 200 cycles" in str(err)
    assert dump_path.exists()
    document = load_dump(dump_path)
    assert document["error"] == str(err)
    # Boundary granularity: the fast loop checks progress at watchdog
    # boundaries, so the trip lands between 1x and 2x the fuse.
    assert 200 <= document["cycle"] <= 400
    kinds = [event["kind"] for event in document["events"]]
    assert kinds[-1] == "watchdog"
    assert document["committed_thread_insts"] == 0
    assert document["job"]["engine"] == "fast"


def test_fast_and_reference_watchdog_dumps_agree(tmp_path):
    """Same wedged point, both engines: the dumps tell the same story."""
    from repro.obs import SampledObserver

    documents = {}
    machine = experiment._normalize_machine(None, 2)
    for engine, obs in (
        ("reference", Observer(recorder=FlightRecorder(capacity=64),
                               watchdog_cycles=300)),
        ("fast", SampledObserver(recorder=FlightRecorder(capacity=64),
                                 watchdog_cycles=300)),
    ):
        dump_path = tmp_path / f"wedged-{engine}.flight.json"
        with pytest.raises(WatchdogError):
            experiment._simulate(
                "mcf", MMTConfig.mmt_fxr(), 2, machine, 0.1, True,
                obs=obs, failure_dump=str(dump_path),
                prepare=experiment._wedge_fetch, engine=engine,
            )
        documents[engine] = load_dump(dump_path)
    ref, fast = documents["reference"], documents["fast"]
    assert ref["committed_thread_insts"] == fast["committed_thread_insts"]
    assert ref["events"][-1]["kind"] == fast["events"][-1]["kind"]
    # A wedged machine never progresses, so both engines trip on the
    # very first boundary after the fuse — the same cycle.
    assert ref["cycle"] == fast["cycle"]


def test_healthy_run_never_trips_watchdog(traced):
    run, obs = traced
    # The shared traced fixture ran with the default watchdog armed.
    assert obs.watchdog_cycles is not None
    assert run.stats.committed_thread_insts > 0


def test_flight_recorder_ring_is_bounded(traced):
    _, obs = traced
    recorder = obs.recorder
    assert len(recorder.events) <= recorder.capacity


# ------------------------------------------------------------ chrome export
def test_chrome_trace_roundtrip(tmp_path, traced):
    _, obs = traced
    path = tmp_path / "trace.json"
    write_chrome_trace(path, obs.sink.events, obs.interval.samples,
                       metadata={"app": "ammp"})
    document = load_chrome_trace(path)
    assert validate_chrome_trace(document) == []
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
    assert len(instants) == len(obs.sink.events)
    assert counters  # interval samples became counter tracks
    timestamps = [e["ts"] for e in instants]
    assert timestamps == sorted(timestamps)


def test_validate_chrome_trace_rejects_malformed(traced):
    _, obs = traced
    document = chrome_trace(obs.sink.events)
    document["traceEvents"][0] = {"ph": "i"}  # missing name/ts/pid
    assert validate_chrome_trace(document)


def test_dump_trace_writes_time_series(tmp_path, traced):
    import json

    run, obs = traced
    out = tmp_path / "trace_rows.json"
    dump_trace(run, obs, out, extra={"scale": 0.1})
    data = json.loads(out.read_text())
    assert data["app"] == "ammp"
    assert data["cycles"] == run.stats.cycles
    assert len(data["intervals"]) == len(obs.interval.samples)
    assert data["event_counts"] == obs.sink.counts()
    assert data["scale"] == 0.1


# ----------------------------------------------------------- stats validate
def test_simstats_validate_passes_on_real_run(traced):
    run, _ = traced
    run.stats.validate()  # must not raise


def test_simstats_validate_catches_corruption(traced):
    import copy

    run, _ = traced
    stats = copy.deepcopy(run.stats)
    stats.fetched_thread_insts += 1  # mode breakdown no longer sums
    with pytest.raises(StatsConsistencyError) as excinfo:
        stats.validate()
    assert "fetched_by_mode" in str(excinfo.value)

    stats = copy.deepcopy(run.stats)
    stats.committed_entries = stats.committed_thread_insts + 1
    with pytest.raises(StatsConsistencyError):
        stats.validate()


# ------------------------------------------------------------ null observer
def test_null_observer_is_inert():
    from repro.obs import NULL_OBS

    assert not NULL_OBS.tracing
    assert not NULL_OBS.active


def test_memory_sink_counts_by_kind():
    from repro.obs import TraceEvent

    sink = MemorySink()
    sink.emit(TraceEvent(1, EventKind.FETCH, 0, 0x100, 1, None))
    sink.emit(TraceEvent(2, EventKind.COMMIT, 0, 0x100, 1, None))
    sink.emit(TraceEvent(2, EventKind.COMMIT, 1, 0x104, 2, None))
    assert sink.counts() == {"fetch": 1, "commit": 2}
    assert sink.by_kind(EventKind.COMMIT)[0].seq == 1
