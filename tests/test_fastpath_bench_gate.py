"""CI regression gate for the fast-path engine's speedup.

Marked ``bench`` (tier 2): a plain ``pytest`` run skips it; CI's bench
job and nightly enable it with ``--run-bench``.  It runs the fig5a smoke
sweep (four apps, every configuration, both engines) at a reduced scale,
appends the record to the workspace ``BENCH_fastpath.json`` trajectory so
the job's artifact shows the measured numbers, and fails if the
fast/reference aggregate speedup drops below the pinned floor.

The floor (:data:`repro.harness.fastbench.PINNED_MIN_SPEEDUP`) sits well
below the recorded ~2.9x so shared-runner noise cannot flake the gate
while outright de-optimisations of the fast loop still trip it.
"""

import pytest

from repro.harness.fastbench import (
    PINNED_MIN_SPEEDUP,
    SMOKE_APPS,
    append_trajectory,
    run_fastpath_bench,
)

#: Big enough that per-point wall times are milliseconds, not microseconds
#: (timer noise), small enough for a commit-gate job.
SMOKE_SCALE = 0.5


@pytest.mark.bench
def test_fastpath_speedup_gate(capsys):
    with capsys.disabled():
        print(
            f"\nfastpath bench gate: {len(SMOKE_APPS)} apps x 5 configs, "
            f"scale {SMOKE_SCALE}, floor {PINNED_MIN_SPEEDUP}x"
        )
        record = run_fastpath_bench(scale=SMOKE_SCALE, progress=print)
        print(
            f"aggregate {record['aggregate_speedup']}x "
            f"(per-point {record['min_speedup']}x–{record['max_speedup']}x)"
        )
    append_trajectory(record)
    assert record["aggregate_speedup"] is not None
    assert record["aggregate_speedup"] >= PINNED_MIN_SPEEDUP, (
        f"fast engine regressed: aggregate speedup "
        f"{record['aggregate_speedup']}x fell below the pinned "
        f"{PINNED_MIN_SPEEDUP}x floor (per-point min "
        f"{record['min_speedup']}x)"
    )


@pytest.mark.bench
def test_sampling_overhead_gate(capsys):
    """Observer-overhead gate: a fig5a point with vs without sampled
    telemetry on the fast engine.  The record lands in the same
    ``BENCH_fastpath.json`` trajectory artifact; the gate fails if the
    sampled run costs more than :data:`MAX_SAMPLING_OVERHEAD` (1.10x)
    of the unobserved fast loop."""
    from repro.harness.fastbench import (
        MAX_SAMPLING_OVERHEAD,
        run_sampling_overhead_bench,
    )

    with capsys.disabled():
        print(
            f"\nsampling overhead gate: scale {SMOKE_SCALE}, "
            f"ceiling {MAX_SAMPLING_OVERHEAD}x"
        )
        record = run_sampling_overhead_bench(
            scale=SMOKE_SCALE, progress=print
        )
    append_trajectory(record)
    assert record["overhead_ratio"] is not None
    assert record["overhead_ratio"] <= MAX_SAMPLING_OVERHEAD, (
        f"sampled telemetry costs {record['overhead_ratio']}x of the "
        f"unobserved fast loop, above the {MAX_SAMPLING_OVERHEAD}x "
        "ceiling"
    )
