"""Unit tests for the engine-workload layer (repro.workloads.engine)."""

import random

import pytest

from repro.core.config import WorkloadType
from repro.workloads.engine import (
    BUILTIN_WORKLOADS,
    Phase,
    PhaseScheduleEngine,
    DynamicWorkload,
    RequestStreamEngine,
    RequestStreamWorkload,
    WorkloadRegistryError,
    build_engine_workload,
    get_workload,
    is_engine_workload,
    register_workload,
    workload_names,
    _dynamic_profile,
)


# ------------------------------------------------------------------ registry
def test_builtins_are_registered():
    names = workload_names()
    for workload in BUILTIN_WORKLOADS:
        assert workload.name in names
        assert is_engine_workload(workload.name)
        assert get_workload(workload.name) is workload


def test_duplicate_registration_is_an_error():
    existing = BUILTIN_WORKLOADS[0].name
    clone = DynamicWorkload(
        existing, (Phase("lockstep"),), _dynamic_profile(existing)
    )
    with pytest.raises(WorkloadRegistryError) as excinfo:
        register_workload(clone)
    assert "already registered" in str(excinfo.value)
    # replace=True shadows deliberately; restore the original afterwards.
    original = get_workload(existing)
    try:
        assert register_workload(clone, replace=True) is clone
        assert get_workload(existing) is clone
    finally:
        register_workload(original, replace=True)


def test_trace_prefix_is_reserved():
    workload = DynamicWorkload(
        "trace:sneaky", (Phase("lockstep"),), _dynamic_profile("sneaky")
    )
    with pytest.raises(WorkloadRegistryError):
        register_workload(workload)


def test_unknown_name_reports_known_workloads():
    with pytest.raises(WorkloadRegistryError) as excinfo:
        get_workload("no-such-workload")
    message = str(excinfo.value)
    assert "no-such-workload" in message
    assert BUILTIN_WORKLOADS[0].name in message


def test_missing_trace_file_is_a_registry_error():
    with pytest.raises(WorkloadRegistryError):
        get_workload("trace:/nonexistent/path.trace.json")


def test_build_validates_nctx():
    with pytest.raises(WorkloadRegistryError):
        build_engine_workload("reqstream-uniform", 1)


# ------------------------------------------------------------ phase schedule
def test_phase_schedule_modes_shape_divergence():
    rng = random.Random(0)
    engine = PhaseScheduleEngine((Phase("lockstep"), Phase("independent")))
    reqs = engine.requests(4, 40, rng)
    assert len(reqs) == 40
    first, second = reqs[:20], reqs[20:]
    # Lockstep phase emits zero divergence probability, independent not.
    assert all(req.value == 0 for req in first)
    assert any(req.value > 0 for req in second)


def test_bursty_phase_pulses():
    rng = random.Random(0)
    engine = PhaseScheduleEngine((Phase("bursty"),))
    values = [req.value for req in engine.requests(4, 36, rng)]
    assert max(values) > 10 * max(1, min(values))  # bursts tower over floor


def test_decohere_phase_ramps():
    rng = random.Random(0)
    engine = PhaseScheduleEngine((Phase("decohere"),))
    values = [req.value for req in engine.requests(4, 30, rng)]
    assert values[0] < values[-1]
    assert values == sorted(values)


# ----------------------------------------------------------- request streams
def test_request_stream_patterns_differ():
    rng_a, rng_b = random.Random(1), random.Random(1)
    uniform = RequestStreamEngine("uniform").requests(4, 64, rng_a)
    skewed = RequestStreamEngine("skewed").requests(4, 64, rng_b)
    assert len(uniform) == len(skewed) == 64
    assert [r.value for r in uniform] != [r.value for r in skewed]
    # The skew clears specific low bits with high probability.
    cleared = sum(1 for r in skewed if (r.value & 0x6) == 0)
    assert cleared > len(skewed) // 2


def test_request_stream_workload_rejects_bad_pattern():
    with pytest.raises(ValueError):
        RequestStreamWorkload("bad", pattern="zipf-ish")


def test_mp_workload_refuses_limit_clone():
    build = build_engine_workload("reqstream-uniform", 3, scale=0.5)
    with pytest.raises(ValueError):
        build.limit_job()


# ------------------------------------------------------------- determinism
def test_builds_are_deterministic_per_seed():
    for name in workload_names():
        workload = get_workload(name)
        nctx = 4 if workload.valid_nctx(4) else 2
        one = workload.build(nctx, scale=0.25, seed=9)
        two = workload.build(nctx, scale=0.25, seed=9)
        other = workload.build(nctx, scale=0.25, seed=10)
        assert one.program.digest() == two.program.digest(), name
        assert one.program.digest() != other.program.digest(), (
            f"{name}: seed does not influence the generated program"
        )


def test_wtypes_are_declared():
    for name in workload_names():
        assert get_workload(name).wtype in (
            WorkloadType.MULTI_THREADED,
            WorkloadType.MULTI_EXECUTION,
            WorkloadType.MESSAGE_PASSING,
        )
