"""Value-level analysis: lattice, widening, memory model, block classes.

Unit coverage of ``repro.analysis.values`` (the fixpoint the LVIP oracle
is built on) plus the block-class regression for the built-in workloads:
with loop-uniformity widening, back-edge branches on induction variables
classify as uniform, so the control-divergent fractions reported by
``repro analyze`` stay informative instead of saturating near 1.0.
"""

import pytest

from repro.analysis.cfg import CFG
from repro.analysis.redundancy import analyze_build
from repro.analysis.values import (
    MemoryModel,
    Region,
    WORD,
    affine,
    analyze_values_cfg,
    const,
    injective,
    interval_of,
    is_varying,
    is_widened,
    join_value,
    maybe,
    regions_from_symbols,
    uniform,
)
from repro.core.config import WorkloadType
from repro.isa.assembler import assemble
from repro.workloads.generator import build_workload
from repro.workloads.profiles import APP_ORDER, get_profile


def analyze_source(source, nctx=2, memory=None, sp_divergent=False):
    prog = assemble(source)
    cfg = CFG(prog.instructions, entry=prog.entry, name="test")
    return cfg, analyze_values_cfg(
        cfg, nctx, sp_divergent=sp_divergent, memory=memory
    )


# ------------------------------------------------------------------ lattice
def test_join_identities():
    c = const(7)
    assert join_value(c, c) == c
    u = uniform("x", 0, 10)
    assert join_value(u, u) == u


def test_join_different_constants_is_maybe_with_hull():
    v = join_value(const(3), const(9))
    assert is_varying(v)
    assert interval_of(v) == (3, 9)


def test_join_uniform_same_number_keeps_uniformity():
    a = uniform("site", 0, 4)
    b = uniform("site", 2, 8)
    v = join_value(a, b)
    assert not is_varying(v)
    assert interval_of(v) == (0, 8)


def test_join_uniform_different_numbers_degrades():
    v = join_value(uniform("a", 0, 4), uniform("b", 0, 4))
    assert is_varying(v)


def test_affine_interval_from_endpoints():
    v = affine("s", 8, 100, nctx=4)  # 100, 108, 116, 124
    assert interval_of(v) == (100, 124)
    w = affine("s", -8, 100, nctx=4)
    assert interval_of(w) == (76, 100)


def test_widened_marker():
    assert is_widened(uniform(("w", 3, 5), 0, None))
    assert not is_widened(uniform("plain", 0, None))
    assert is_widened(affine("s", 8, ("w", 3, 5), nctx=2))
    assert not is_widened(affine("s", 8, 0, nctx=2))
    assert not is_widened(const(1))
    assert not is_widened(maybe(0, 1))
    assert not is_widened(injective("s", None, None))


# ----------------------------------------------------- widening in the loop
LOOP = """
    li r1, 0
    li r2, 10
Lloop:
    addi r1, r1, 1
    blt r1, r2, Lloop
    halt
"""


def test_induction_variable_widens_to_uniform():
    """The back-edge branch on a widened counter classifies uniform."""
    cfg, va = analyze_source(LOOP)
    branch_pc = next(
        pc for pc, inst in enumerate(cfg.instructions) if inst.is_control
    )
    assert va.branch_classes[branch_pc] == "uniform"
    assert va.widened_headers, "loop header should have widened"


def test_widened_counter_keeps_stable_lower_bound():
    """Widening drops the moving bound but keeps the stable one (0 <= i)."""
    cfg, va = analyze_source(LOOP)
    header = next(iter(va.widened_headers))
    counter = va.block_in[header][1]  # r1
    lo, _hi = interval_of(counter)
    assert lo == 0
    assert not is_varying(counter)


def test_nested_loops_preserve_outer_invariant():
    """Inner headers must not rename registers they never write."""
    cfg, va = analyze_source(
        """
    li r1, 0
    li r3, 3
Louter:
    li r2, 0
Linner:
    addi r2, r2, 1
    blt r2, r3, Linner
    addi r1, r1, 1
    blt r1, r3, Louter
    halt
"""
    )
    for pc, klass in va.branch_classes.items():
        assert klass == "uniform", f"branch at pc {pc} classified {klass}"


def test_divergent_branch_still_detected():
    """Widening must not paper over genuinely thread-varying control."""
    cfg, va = analyze_source(
        """
    tid r1
    li r2, 1
    blt r1, r2, Lskip
    addi r2, r2, 1
Lskip:
    halt
"""
    )
    branch_pc = next(
        pc for pc, inst in enumerate(cfg.instructions) if inst.is_control
    )
    assert va.branch_classes[branch_pc] != "uniform"


# ------------------------------------------------------------- memory model
def test_identical_words_classify_identical():
    mem = MemoryModel({0: 5, WORD: 6})
    identical, (lo, hi) = mem.classify_load(0, WORD)
    assert identical
    assert (lo, hi) == (5, 6)


def test_per_context_overlays_break_identity():
    mem = MemoryModel({0: 5}, overlays=({0: 5}, {0: 9}))
    identical, _ = mem.classify_load(0, 0)
    assert not identical


def test_unmapped_words_read_zero_everywhere():
    """An address no context maps reads 0 in every context: identical."""
    mem = MemoryModel({0: 5})
    identical, (lo, hi) = mem.classify_load(8 * WORD, 8 * WORD)
    assert identical
    assert (lo, hi) == (0, 0)


def test_unbounded_range_scans_sparse():
    """A half-open address range is classified by scanning mapped words."""
    mem = MemoryModel({0: 5})
    identical, (lo, hi) = mem.classify_load(0, None)
    assert identical
    assert lo == 0 and hi == 5
    div = MemoryModel({0: 5}, overlays=({0: 5}, {0: 9}))
    identical, _ = div.classify_load(0, None)
    assert not identical


def test_clobbered_word_unclassifiable():
    mem = MemoryModel({0: 5})
    mem.clobber(0, 0)
    identical, _ = mem.classify_load(0, 0)
    assert not identical


def test_shared_memory_identity_survives_overlays():
    """One shared space: every context reads the same word, always —
    overlays cannot split it.  Clobbered ranges stay conservative here;
    store-reached loads in shared mode are the transfer's business
    (they become lockstep-uniform, a descriptive-tier claim)."""
    mem = MemoryModel({0: 5}, overlays=({0: 5}, {0: 9}), shared=True)
    identical, _ = mem.classify_load(0, 0)
    assert identical
    mem.clobber(0, 0)
    identical, _ = mem.classify_load(0, 0)
    assert not identical


# ------------------------------------------- flow-sensitive store clobbering
def test_store_after_load_does_not_clobber_it():
    """A store no path runs before the load leaves it classifiable."""
    src = """
    li r1, 0
    lw r2, 0(r1)
    li r3, 7
    sw r3, 0(r1)
    halt
"""
    prog = assemble(src)
    cfg = CFG(prog.instructions, entry=prog.entry, name="test")
    va = analyze_values_cfg(
        cfg, 2, sp_divergent=False, memory=MemoryModel({0: 5})
    )
    load_pc = next(
        pc for pc, inst in enumerate(cfg.instructions) if inst.is_load
    )
    assert va.loads[load_pc].must_identical


def test_store_before_load_clobbers_it():
    src = """
    li r1, 0
    li r3, 7
    sw r3, 0(r1)
    lw r2, 0(r1)
    halt
"""
    prog = assemble(src)
    cfg = CFG(prog.instructions, entry=prog.entry, name="test")
    va = analyze_values_cfg(
        cfg, 2, sp_divergent=False, memory=MemoryModel({0: 5})
    )
    load_pc = next(
        pc for pc, inst in enumerate(cfg.instructions) if inst.is_load
    )
    assert not va.loads[load_pc].must_identical


# ------------------------------------------------- block-class regression
@pytest.fixture(scope="module")
def reports():
    return {
        app: analyze_build(build_workload(get_profile(app), 2, scale=0.3))
        for app in APP_ORDER
    }


def test_control_divergent_fraction_below_half_on_average(reports):
    """ROADMAP regression: pre-widening ~99% of blocks were
    control-divergent; with widening the built-in workloads' mean must
    stay well under 50%."""
    fractions = [r.control_divergent_fraction for r in reports.values()]
    mean = sum(fractions) / len(fractions)
    assert mean < 0.5, f"mean control-divergent fraction {mean:.3f}"


def test_control_divergent_fraction_bounded_per_app(reports):
    for app, r in reports.items():
        assert r.control_divergent_fraction < 0.8, (
            f"{app}: control-divergent fraction "
            f"{r.control_divergent_fraction:.3f}"
        )


def test_multi_threaded_apps_have_uniform_control(reports):
    """MT kernels branch only on widened counters and uniform data."""
    for app, r in reports.items():
        if get_profile(app).wtype is WorkloadType.MULTI_THREADED:
            assert r.control_divergent_fraction == 0.0, app


def test_widening_engages_on_every_builtin(reports):
    for app, r in reports.items():
        assert r.widened_loop_headers > 0, app


# ------------------------------------------------- per-array regions
def test_regions_from_symbols_partition():
    """Each symbol's region runs to the next symbol; the last to the
    end of the mapped image."""
    regions = regions_from_symbols(
        {"a": 0, "b": 32}, {0: 1, 8: 1, 32: 2, 40: 2, 48: 2}
    )
    assert regions == (Region("a", 0, 32), Region("b", 32, 48 + WORD))


def test_regions_from_symbols_empty():
    assert regions_from_symbols({}, {0: 1}) == ()


def test_confine_bounds_widened_cursor_to_its_region():
    mem = MemoryModel({0: 5}, regions=(Region("a", 0, 32),))
    assert mem.confine(8, None) == (8, 31)
    # A bounded interval is the analysis' own proof: left alone.
    assert mem.confine(8, 64) == (8, 64)
    # Outside every region, or with no lower bound: left alone.
    assert mem.confine(100, None) == (100, None)
    assert mem.confine(None, None) == (None, None)


def test_region_confinement_unblocks_disjoint_store():
    """A widened cursor scanning array ``a`` is confined to ``a``, so a
    store into the disjoint array ``b`` no longer blocks it."""
    src = """
    li r1, 0
    li r5, 1
    li r6, 64
    sw r5, 0(r6)
Lloop:
    lw r2, 0(r1)
    addi r1, r1, 8
    lw r3, 0(r6)
    bne r3, r0, Lloop
    halt
"""
    data = {0: 5, 8: 5, 16: 5, 24: 5, 64: 0}
    regions = (Region("a", 0, 32), Region("b", 64, 96))
    prog = assemble(src)
    cfg = CFG(prog.instructions, entry=prog.entry, name="test")
    scan_pc = next(
        pc for pc, inst in enumerate(cfg.instructions) if inst.is_load
    )

    plain = analyze_values_cfg(
        cfg, 2, sp_divergent=False, memory=MemoryModel(data)
    )
    assert not plain.loads[scan_pc].must_identical

    refined = analyze_values_cfg(
        cfg, 2, sp_divergent=False,
        memory=MemoryModel(data, regions=regions),
    )
    lc = refined.loads[scan_pc]
    assert lc.must_identical
    assert lc.region == "a"
    assert (lc.addr_lo, lc.addr_hi) == (0, 31)


def test_region_confinement_only_tightens_builtin_oracle(monkeypatch):
    """With regions on, every built-in oracle keeps (at least) the
    must-identical loads it proved without them."""
    build = build_workload(get_profile("ammp"), 2, scale=0.3)
    confined = analyze_build(build).lvip_must_identical_pcs
    with monkeypatch.context() as m:
        m.setattr(MemoryModel, "confine", lambda self, lo, hi: (lo, hi))
        unconfined = analyze_build(build).lvip_must_identical_pcs
    assert unconfined <= confined
