"""Program image validation and per-instance overlays."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import WORD_SIZE, Program


def _halt():
    return Instruction(Opcode.HALT)


def test_out_of_range_target_rejected():
    bad = Instruction(Opcode.J, target=5)
    with pytest.raises(ValueError):
        Program([bad, _halt()])


def test_unaligned_data_rejected():
    with pytest.raises(ValueError):
        Program([_halt()], data={3: 1})


def test_entry_out_of_range_rejected():
    with pytest.raises(ValueError):
        Program([_halt()], entry=5)


def test_with_data_overlays_without_mutating_base():
    base = Program([_halt()], data={0: 1, WORD_SIZE: 2})
    derived = base.with_data({WORD_SIZE: 99, 2 * WORD_SIZE: 3})
    assert base.data[WORD_SIZE] == 2
    assert derived.data[WORD_SIZE] == 99
    assert derived.data[2 * WORD_SIZE] == 3
    assert all(a is b for a, b in zip(derived.instructions, base.instructions))


def test_label_and_symbol_lookup():
    prog = Program(
        [_halt()], labels={"start": 0}, symbols={"buf": 64}, data={64: 0}
    )
    assert prog.label("start") == 0
    assert prog.symbol("buf") == 64
    assert len(prog) == 1
    assert prog[0].op is Opcode.HALT
