"""Property-based end-to-end checks (hypothesis).

The central invariant of the whole repository: for *any* terminating SPMD
program, every machine configuration — Base SMT, MMT-F, MMT-FX, MMT-FXR —
retires the same instructions and leaves byte-identical architectural
state, equal to a pure functional execution.  Random programs exercise
combinations of divergence, sharing, memory traffic, and LVIP behaviour
that hand-written tests cannot anticipate; the pipeline's strict oracle
checks are armed throughout, so any mis-merge aborts loudly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import MMTConfig
from repro.func.executor import FunctionalExecutor
from repro.isa.opcodes import Opcode
from repro.pipeline.config import MachineConfig
from repro.pipeline.job import Job
from repro.pipeline.smt import SMTCore
from repro.workloads.dsl import ProgramBuilder

_ALU = (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.MUL)

# Register plan for generated programs.
ACCS = (1, 2, 3, 4, 5, 6)
BASE_REG = 9
TMP = 10
TID = 11
COUNTER = 12
LIMIT = 13
TID_STRIDE = 14  # tid * 128 bytes: per-thread output slice (race freedom)

ARRAY_WORDS = 16


def build_random_program(draw_ops, trips, use_tid, branch_on_memory):
    """A terminating SPMD program from a hypothesis-drawn op list."""
    b = ProgramBuilder("prop")
    b.array("arr", list(range(1, ARRAY_WORDS + 1)))
    # Four per-thread slices of 16 words each, plus per-thread checksums:
    # threads never write the same word, so any execution order agrees.
    b.reserve("out", ARRAY_WORDS * 4 + 8 * 4)
    if use_tid:
        b.inst(Opcode.TID, rd=TID)
    else:
        b.li(TID, 0)
    b.alui(Opcode.SLLI, TID_STRIDE, TID, 7)  # tid * 128 bytes
    for index, reg in enumerate(ACCS):
        b.alui(Opcode.ADDI, reg, TID, index + 1)
    b.la(BASE_REG, "arr")
    b.li(COUNTER, 0)
    b.li(LIMIT, trips)
    b.label("loop")
    for kind, a_index, b_index, imm in draw_ops:
        dst = ACCS[a_index]
        src = ACCS[b_index]
        if kind == "alu":
            b.alu(_ALU[imm % len(_ALU)], dst, dst, src)
        elif kind == "alui":
            b.alui(Opcode.ADDI, dst, dst, imm)
        elif kind == "load":
            b.alui(Opcode.ANDI, TMP, src, ARRAY_WORDS - 1)
            b.alui(Opcode.SLLI, TMP, TMP, 3)
            b.alu(Opcode.ADD, TMP, TMP, BASE_REG)
            b.load(dst, TMP, disp=0)
        elif kind == "store":
            b.alui(Opcode.ANDI, TMP, src, ARRAY_WORDS - 1)
            b.alui(Opcode.SLLI, TMP, TMP, 3)
            b.alu(Opcode.ADD, TMP, TMP, BASE_REG)
            b.alu(Opcode.ADD, TMP, TMP, TID_STRIDE)
            b.store(dst, TMP, disp=ARRAY_WORDS * 8)  # own 'out' slice
        elif kind == "branch" and branch_on_memory:
            skip = b.fresh_label("skip")
            b.alui(Opcode.ANDI, TMP, dst, 1)
            b.branch(Opcode.BEQ, TMP, 0, skip)
            b.alui(Opcode.ADDI, src, src, 3)
            b.label(skip)
    b.alui(Opcode.ADDI, COUNTER, COUNTER, 1)
    b.branch(Opcode.BLT, COUNTER, LIMIT, "loop")
    out = b.symbol("out")
    b.li(TMP, out + ARRAY_WORDS * 4 * 8)
    b.alu(Opcode.ADD, TMP, TMP, TID_STRIDE)
    for offset, reg in enumerate(ACCS):
        b.store(reg, TMP, disp=offset * 8)
    b.halt()
    return b.build()


op_strategy = st.tuples(
    st.sampled_from(["alu", "alui", "load", "store", "branch"]),
    st.integers(0, len(ACCS) - 1),
    st.integers(0, len(ACCS) - 1),
    st.integers(-16, 16),
)

program_strategy = st.tuples(
    st.lists(op_strategy, min_size=3, max_size=12),
    st.integers(2, 6),  # loop trips
    st.booleans(),  # use_tid (per-context divergence of values)
    st.booleans(),  # data-dependent branches
)

CONFIGS = [MMTConfig.mmt_f(), MMTConfig.mmt_fx(), MMTConfig.mmt_fxr()]


def functional_reference(job):
    states = job.make_states()
    for state in states:
        FunctionalExecutor(state).run(max_steps=100_000)
    return [space.snapshot() for space in job.address_spaces]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy)
def test_mt_configs_match_functional(params):
    ops, trips, use_tid, branchy = params
    program = build_random_program(ops, trips, use_tid, branchy)
    reference = functional_reference(Job.multi_threaded("p", program, 2))
    for config in [MMTConfig.base()] + CONFIGS:
        job = Job.multi_threaded("p", program, 2)
        core = SMTCore(MachineConfig(num_threads=2), config, job, strict=True)
        stats = core.run()
        assert [s.snapshot() for s in job.address_spaces] == reference, config.name
        assert stats.halted_threads == 2


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy, st.dictionaries(st.integers(0, ARRAY_WORDS - 1),
                                         st.integers(1, 99), max_size=4))
def test_me_configs_match_functional(params, overlay_words):
    ops, trips, _use_tid, branchy = params
    program = build_random_program(ops, trips, False, branchy)
    arr = program.symbol("arr")
    overlay = {arr + 8 * k: v for k, v in overlay_words.items()}
    reference = functional_reference(
        Job.multi_execution("p", program, [{}, overlay])
    )
    for config in [MMTConfig.base()] + CONFIGS:
        job = Job.multi_execution("p", program, [{}, overlay])
        core = SMTCore(MachineConfig(num_threads=2), config, job, strict=True)
        core.run()
        assert [s.snapshot() for s in job.address_spaces] == reference, config.name


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_strategy)
def test_four_context_mt(params):
    ops, trips, use_tid, branchy = params
    program = build_random_program(ops, trips, use_tid, branchy)
    reference = functional_reference(Job.multi_threaded("p", program, 4))
    job = Job.multi_threaded("p", program, 4)
    core = SMTCore(MachineConfig(num_threads=4), MMTConfig.mmt_fxr(), job, strict=True)
    core.run()
    assert [s.snapshot() for s in job.address_spaces] == reference
