"""Assembler: syntax, labels, data directives, pseudo-ops, errors."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.opcodes import Opcode
from repro.isa.registers import RA


def test_simple_program():
    prog = assemble("li r1, 5\naddi r1, r1, -1\nhalt\n")
    assert len(prog) == 3
    assert prog[0].op is Opcode.LI and prog[0].imm == 5
    assert prog[1].op is Opcode.ADDI and prog[1].imm == -1
    assert prog[2].op is Opcode.HALT


def test_comments_and_blank_lines():
    prog = assemble(
        """
        # leading comment
        li r1, 1   ; trailing comment

        halt
        """
    )
    assert len(prog) == 2


def test_backward_branch_label():
    prog = assemble("loop: addi r1, r1, 1\nbne r1, r2, loop\nhalt")
    assert prog[1].target == 0


def test_forward_branch_label():
    prog = assemble("beq r1, r0, end\naddi r1, r1, 1\nend: halt")
    assert prog[0].target == 2


def test_memory_operands():
    prog = assemble("lw r1, 8(r2)\nsw r3, -16(r4)\nhalt")
    load, store = prog[0], prog[1]
    assert load.rs1 == 2 and load.imm == 8 and load.rd == 1
    assert store.rs1 == 4 and store.rs2 == 3 and store.imm == -16


def test_data_section_and_la():
    prog = assemble(
        """
        la r1, table
        lw r2, 0(r1)
        halt
        .data 0x100
        table: .word 7 8 9
        vec:   .float 1.5
               .space 2
        """
    )
    assert prog.symbol("table") == 0x100
    assert prog.data[0x100] == 7
    assert prog.data[0x110] == 9
    assert prog.data[prog.symbol("vec")] == 1.5
    assert prog.data[prog.symbol("vec") + 8] == 0
    assert prog[0].imm == 0x100


def test_pseudo_ops():
    prog = assemble(
        """
        mv r1, r2
        call fn
        j end
        fn: ret
        end: halt
        """
    )
    assert prog[0].op is Opcode.ADDI and prog[0].imm == 0
    assert prog[1].op is Opcode.JAL and prog[1].rd == RA
    assert prog[3].op is Opcode.JR and prog[3].rs1 == RA


def test_hex_immediates():
    prog = assemble("li r1, 0x40\nhalt")
    assert prog[0].imm == 0x40


def test_float_immediate():
    prog = assemble("fli f0, 2.5\nhalt")
    assert prog[0].imm == 2.5


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("x: nop\nx: halt")


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("j nowhere\nhalt")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError):
        assemble("frobnicate r1, r2")


def test_wrong_operand_count_rejected():
    with pytest.raises(AssemblerError):
        assemble("add r1, r2")


def test_unaligned_data_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data 0x101\n.word 1")


def test_instruction_inside_data_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data 0x100\nadd r1, r2, r3")


def test_error_carries_line_number():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("nop\nnop\nbogus r1")
    assert "line 3" in str(excinfo.value)


def test_multiple_labels_one_line():
    prog = assemble("a: b: nop\nj a\nj b\nhalt")
    assert prog.label("a") == prog.label("b") == 0


# --------------------------------------------------- structured AssemblyError
def test_duplicate_label_raises_assembly_error_with_symbol():
    from repro.isa.assembler import AssemblyError

    with pytest.raises(AssemblyError) as excinfo:
        assemble("nop\nx: nop\nx: halt")
    assert excinfo.value.symbol == "x"
    assert excinfo.value.lineno == 3
    assert "duplicate" in str(excinfo.value)


def test_duplicate_data_symbol_raises_assembly_error():
    from repro.isa.assembler import AssemblyError

    with pytest.raises(AssemblyError) as excinfo:
        assemble(".data 0x100\nbuf: .word 1\nbuf: .word 2")
    assert excinfo.value.symbol == "buf"


def test_undefined_branch_label_carries_symbol_and_line():
    from repro.isa.assembler import AssemblyError

    with pytest.raises(AssemblyError) as excinfo:
        assemble("nop\nbeq r1, r2, nowhere\nhalt")
    assert excinfo.value.symbol == "nowhere"
    assert excinfo.value.lineno == 2


def test_undefined_jump_label_carries_symbol():
    from repro.isa.assembler import AssemblyError

    with pytest.raises(AssemblyError) as excinfo:
        assemble("j missing")
    assert excinfo.value.symbol == "missing"


def test_undefined_call_label_carries_symbol():
    from repro.isa.assembler import AssemblyError

    with pytest.raises(AssemblyError) as excinfo:
        assemble("call helper\nhalt")
    assert excinfo.value.symbol == "helper"


def test_undefined_la_symbol_carries_symbol():
    from repro.isa.assembler import AssemblyError

    with pytest.raises(AssemblyError) as excinfo:
        assemble("la r1, ghost\nhalt")
    assert excinfo.value.symbol == "ghost"


def test_assembly_error_is_an_assembler_error():
    from repro.isa.assembler import AssemblyError

    # Existing except AssemblerError / except ValueError handlers still catch
    # the new structured subclass.
    assert issubclass(AssemblyError, AssemblerError)
    assert issubclass(AssemblyError, ValueError)
