"""Static LVIP oracle vs dynamic runs: soundness across every workload.

Every built-in application, under both the Base and MMT-FXR
configurations, is simulated once and cross-checked against the static
value-level oracle (``repro.analysis.values`` via ``analyze_build``):

* ``OracleReport.validate_against`` must report no disagreements — the
  dynamic merge fraction, RST sharing, LVIP hit rate and per-site LVIP
  activity all stay inside their proven bounds;
* the static LVIP hit-rate upper bound dominates the measured rate
  (soundness), and is within 2x of it for several multi-execution
  workloads (usefulness — a bound of "anything goes" would be sound
  but worthless).

Simulations reuse the differential suite's executor (strict mode), so a
bound violation cannot be explained away by a merging bug silently
corrupting state: strict mode would have raised first.
"""

import pytest

from repro.analysis.redundancy import analyze_build
from repro.core.config import MMTConfig, WorkloadType
from repro.workloads.generator import build_workload
from repro.workloads.profiles import APP_ORDER, get_profile

from tests.test_differential import run_pipeline

SCALE = 0.1
NCTX = 2
SEED = 12

CONFIGS = [
    ("Base", MMTConfig.base()),
    ("MMT-FXR", MMTConfig.mmt_fxr()),
]

# One build, one oracle report, and one simulation per (app, config) for
# the whole module — the parametrized assertions below all interrogate
# the same runs.
_builds: dict = {}
_reports: dict = {}
_stats: dict = {}


def build_of(app):
    if app not in _builds:
        _builds[app] = build_workload(
            get_profile(app), NCTX, scale=SCALE, seed=SEED
        )
    return _builds[app]


def report_of(app):
    if app not in _reports:
        _reports[app] = analyze_build(build_of(app))
    return _reports[app]


def stats_of(app, label):
    if (app, label) not in _stats:
        config = dict(CONFIGS)[label]
        core, _job = run_pipeline(build_of(app), config, NCTX)
        _stats[app, label] = core.stats
    return _stats[app, label]


@pytest.mark.parametrize("label", [label for label, _ in CONFIGS])
@pytest.mark.parametrize("app", APP_ORDER)
def test_oracle_consistent_with_dynamic_run(app, label):
    """The full validate_against contract holds for every (app, config)."""
    problems = report_of(app).validate_against(stats_of(app, label))
    assert problems == [], f"{app}/{label}: {problems}"


@pytest.mark.parametrize("app", APP_ORDER)
def test_static_lvip_bound_dominates_dynamic_rate(app):
    """Soundness: measured MMT hit rate never exceeds the static bound."""
    report = report_of(app)
    stats = stats_of(app, "MMT-FXR")
    assert stats.lvip_hit_rate() <= report.lvip_hit_rate_upper_bound + 1e-9


@pytest.mark.parametrize(
    "app",
    [a for a in APP_ORDER
     if get_profile(a).wtype is WorkloadType.MULTI_THREADED],
)
def test_multi_threaded_workloads_never_consult_lvip(app):
    """MT jobs share one address space: no LVIP checks, bound pinned at 0."""
    report = report_of(app)
    stats = stats_of(app, "MMT-FXR")
    assert not report.lvip_eligible
    assert report.lvip_hit_rate_upper_bound == 0.0
    assert stats.lvip_checks == 0


def test_bound_within_2x_for_multiple_workloads():
    """Usefulness: the bound is tight (<= 2x) where the LVIP actually runs."""
    tight = []
    for app in APP_ORDER:
        if get_profile(app).wtype is not WorkloadType.MULTI_EXECUTION:
            continue
        stats = stats_of(app, "MMT-FXR")
        rate = stats.lvip_hit_rate()
        bound = report_of(app).lvip_hit_rate_upper_bound
        if stats.lvip_checks and rate > 0 and bound <= 2 * rate:
            tight.append(app)
    assert len(tight) >= 2, f"bound within 2x only for {tight}"


@pytest.mark.parametrize(
    "app",
    [a for a in APP_ORDER
     if get_profile(a).wtype is WorkloadType.MULTI_EXECUTION],
)
def test_per_site_lvip_contract(app):
    """Checked PCs are statically eligible; must-identical PCs never miss."""
    report = report_of(app)
    stats = stats_of(app, "MMT-FXR")
    checked = frozenset(stats.lvip_site_checks)
    assert checked <= report.lvip_eligible_pcs
    missed = frozenset(stats.lvip_site_mispredicts)
    assert not missed & report.lvip_must_identical_pcs


# --------------------------------------------- per-array region refinement
def test_region_confinement_sound_on_zero_divergence_scan(monkeypatch):
    """Region confinement proves the flags-cursor scan loads identical
    under a zero-divergence profile, and the dynamic run agrees.

    The scan cursor widens to a half-open address range, so without the
    per-array region table those loads are unclassifiable (the range
    overlaps the output array's stores).  Confinement to the flags
    region makes them must-identical; the contract it rests on (the
    generator never runs a cursor past its array) is then validated
    dynamically: the gained sites are exercised and never mispredict.
    """
    from dataclasses import replace

    from repro.analysis.values import MemoryModel

    profile = replace(
        get_profile("ammp"), name="ammp-zerodiv",
        divergence_rate=0.0, dispatch_agree=1.0, input_similarity=1.0,
    )
    build = build_workload(profile, NCTX, scale=SCALE, seed=SEED)
    report = analyze_build(build)
    with monkeypatch.context() as m:
        m.setattr(MemoryModel, "confine", lambda self, lo, hi: (lo, hi))
        unconfined = analyze_build(build).lvip_must_identical_pcs
    gained = report.lvip_must_identical_pcs - unconfined
    assert gained, "confinement should prove extra loads identical"
    assert unconfined <= report.lvip_must_identical_pcs

    core, _job = run_pipeline(build, MMTConfig.mmt_fxr(), NCTX)
    stats = core.stats
    assert report.validate_against(stats) == []
    checked = frozenset(stats.lvip_site_checks)
    assert checked <= report.lvip_eligible_pcs
    assert not frozenset(stats.lvip_site_mispredicts) & report.lvip_must_identical_pcs
    # The refinement is load-bearing: the gained sites actually ran.
    assert gained <= checked
