"""MSHR file: allocation, merging, capacity, retirement."""

import pytest

from repro.mem.mshr import MSHRFile


def test_needs_positive_capacity():
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_allocate_returns_ready_cycle():
    mshr = MSHRFile(2)
    assert mshr.request(1, now=10, latency=6) == 16
    assert mshr.outstanding() == 1


def test_same_line_merges():
    mshr = MSHRFile(1)
    ready = mshr.request(1, now=0, latency=6)
    again = mshr.request(1, now=3, latency=6)
    assert again == ready
    assert mshr.merges == 1
    assert mshr.outstanding() == 1


def test_full_file_rejects():
    mshr = MSHRFile(1)
    assert mshr.request(1, now=0, latency=6) is not None
    assert mshr.request(2, now=0, latency=6) is None
    assert mshr.full_stalls == 1


def test_tick_retires_completed():
    mshr = MSHRFile(1)
    mshr.request(1, now=0, latency=6)
    mshr.tick(5)
    assert mshr.outstanding() == 1
    mshr.tick(6)
    assert mshr.outstanding() == 0
    assert mshr.request(2, now=7, latency=6) == 13


def test_lookup():
    mshr = MSHRFile(2)
    mshr.request(5, now=0, latency=6)
    assert mshr.lookup(5) == 6
    assert mshr.lookup(9) is None
