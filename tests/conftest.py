"""Shared pytest configuration: test tiers and fuzz budgets.

The suite is split into two tiers (see README's "Running the tests"):

* **Tier 1** — every unmarked test.  Runs on each commit
  (``python -m pytest -x -q``); the differential fuzz suites use their
  small default budget.
* **Tier 2** — tests marked ``slow`` (deep sweeps) and ``bench``
  (wall-clock regression gates).  Nightly CI enables them with
  ``--run-slow --run-bench`` and widens the fuzz budget with
  ``--runs=200``.

Marked tests are *skipped* (visibly, with the enabling flag in the
reason) rather than deselected, so a plain run still shows they exist.
Selecting them explicitly with ``-m slow`` / ``-m bench`` also works.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runs",
        type=int,
        default=None,
        metavar="N",
        help="seeded programs per configuration for the differential fuzz "
        "suites (default: a small tier-1 budget; nightly CI uses 200)",
    )
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked 'slow' (tier 2 / nightly)",
    )
    parser.addoption(
        "--run-bench",
        action="store_true",
        default=False,
        help="run tests marked 'bench' (wall-clock regression gates)",
    )
    parser.addoption(
        "--run-scenario",
        action="store_true",
        default=False,
        help="run tests marked 'scenario' (full cross-engine scenario "
        "sweep over the workload registry and suite files)",
    )


def _enabled(config, marker: str, flag: str) -> bool:
    markexpr = config.getoption("-m") or ""
    return config.getoption(flag) or marker in markexpr


def pytest_collection_modifyitems(config, items):
    skip_slow = pytest.mark.skip(reason="tier 2: pass --run-slow")
    skip_bench = pytest.mark.skip(reason="bench gate: pass --run-bench")
    skip_scenario = pytest.mark.skip(
        reason="scenario sweep: pass --run-scenario"
    )
    slow_on = _enabled(config, "slow", "--run-slow")
    bench_on = _enabled(config, "bench", "--run-bench")
    scenario_on = _enabled(config, "scenario", "--run-scenario")
    for item in items:
        if not slow_on and "slow" in item.keywords:
            item.add_marker(skip_slow)
        if not bench_on and "bench" in item.keywords:
            item.add_marker(skip_bench)
        if not scenario_on and "scenario" in item.keywords:
            item.add_marker(skip_scenario)
