"""Single-context pipeline: timing sanity + architectural correctness.

Every run is checked two ways: the machine's own strict oracle assertions
(enabled by default), and an independent functional execution of the same
program compared on final memory.
"""

import pytest

from repro.core.config import MMTConfig
from repro.func.executor import FunctionalExecutor
from repro.func.state import ArchState
from repro.isa.assembler import assemble
from repro.mem.memory import AddressSpace
from repro.pipeline.config import MachineConfig
from repro.pipeline.job import Job
from repro.pipeline.smt import SMTCore


def run_both(src):
    prog = assemble(src)
    ref_mem = AddressSpace(dict(prog.data))
    FunctionalExecutor(ArchState(prog, ref_mem)).run(max_steps=200_000)

    job = Job.multi_threaded("t", prog, 1)
    core = SMTCore(MachineConfig(num_threads=1), MMTConfig.base(), job)
    stats = core.run()
    return stats, job.address_spaces[0], ref_mem, core


SUM_LOOP = """
    li r1, 20
    li r2, 0
loop:
    add r2, r2, r1
    addi r1, r1, -1
    bne r1, r0, loop
    la r3, out
    sw r2, 0(r3)
    halt
.data 0x1000
out: .word 0
"""


def test_sum_loop_result_and_timing():
    stats, mem, ref, core = run_both(SUM_LOOP)
    assert mem.load(0x1000) == ref.load(0x1000) == 210
    assert stats.committed_thread_insts == core.oracles[0].instret
    assert 0 < stats.cycles
    assert stats.ipc() <= core.config.issue_width


def test_memory_dependences():
    stats, mem, ref, _ = run_both(
        """
        la r1, buf
        li r2, 5
        sw r2, 0(r1)
        lw r3, 0(r1)      # must forward/order after the store
        addi r3, r3, 1
        sw r3, 8(r1)
        lw r4, 8(r1)
        sw r4, 16(r1)
        halt
        .data 0x2000
        buf: .word 0 0 0
        """
    )
    assert mem.load(0x2010) == 6
    assert ref.load(0x2010) == 6


def test_function_calls_and_ras():
    stats, mem, ref, core = run_both(
        """
        li r1, 0
        li r5, 4
        outer: call bump
        addi r5, r5, -1
        bne r5, r0, outer
        la r2, out
        sw r1, 0(r2)
        halt
        bump: addi r1, r1, 7
        ret
        .data 0x1000
        out: .word 0
        """
    )
    assert mem.load(0x1000) == 28
    assert core.ras[0].pushes == 4


def test_fp_kernel():
    stats, mem, ref, _ = run_both(
        """
        fli f0, 0.0
        fli f1, 1.5
        li r1, 8
        loop: fadd f0, f0, f1
        fmul f1, f1, f1
        fli f1, 1.25
        addi r1, r1, -1
        bne r1, r0, loop
        la r2, out
        fsw f0, 0(r2)
        halt
        .data 0x1000
        out: .word 0
        """
    )
    assert mem.load(0x1000) == ref.load(0x1000)


def test_long_latency_ops():
    stats, mem, ref, _ = run_both(
        """
        li r1, 1000
        li r2, 7
        div r3, r1, r2
        mul r4, r3, r2
        rem r5, r1, r2
        add r6, r4, r5
        la r7, out
        sw r6, 0(r7)
        halt
        .data 0x1000
        out: .word 0
        """
    )
    assert mem.load(0x1000) == 1000


def test_mispredict_costs_cycles():
    """A data-dependent unpredictable branch sequence must cost more than
    the same instruction count of straight-line code."""
    branchy = """
        la r5, pat
        li r1, 0
        li r2, 16
    loop:
        lw r3, 0(r5)
        addi r5, r5, 8
        beq r3, r0, skip
        addi r1, r1, 1
    skip:
        addi r2, r2, -1
        bne r2, r0, loop
        halt
    .data 0x1000
    pat: .word 1 0 0 1 1 0 1 0 0 1 1 1 0 0 0 1
    """
    stats, _, _, _ = run_both(branchy)
    assert stats.branch_mispredicts > 0


def test_machine_finishes_clean():
    stats, _, _, core = run_both(SUM_LOOP)
    assert core.done()
    assert not core.rob and not core.iq and not core.decode_buffer
    assert len(core.lsq) == 0
    assert core.states[0].halted


def test_cycle_limit_guard():
    prog = assemble("loop: j loop")
    job = Job.multi_threaded("t", prog, 1)
    machine = MachineConfig(num_threads=1, max_cycles=500)
    core = SMTCore(machine, MMTConfig.base(), job)
    with pytest.raises(RuntimeError):
        core.run()
