"""Branch prediction substrates: two-level predictor, BTB, RAS, trace model."""

import pytest

from repro.branch.btb import BTB
from repro.branch.predictor import TwoLevelPredictor
from repro.branch.ras import ReturnAddressStack
from repro.branch.trace_cache import TraceCacheModel


# ------------------------------------------------------------- two-level
def test_predictor_learns_always_taken():
    pred = TwoLevelPredictor(num_contexts=1)
    pc = 100
    # gshare: the history register must saturate (history_length updates)
    # before the index stabilises, then the 2-bit counter trains.
    for _ in range(pred.history_length + 4):
        taken = pred.predict(pc, 0)
        pred.update(pc, 0, True, taken)
    assert pred.predict(pc, 0) is True


def test_predictor_learns_alternating_pattern():
    """With history, a strict T/NT alternation becomes predictable."""
    pred = TwoLevelPredictor(num_contexts=1)
    pc = 5
    outcome = True
    for _ in range(100):
        guess = pred.predict(pc, 0)
        pred.update(pc, 0, outcome, guess)
        outcome = not outcome
    correct = 0
    for _ in range(20):
        guess = pred.predict(pc, 0)
        pred.update(pc, 0, outcome, guess)
        if guess == outcome:
            correct += 1
        outcome = not outcome
    assert correct >= 18


def test_per_context_histories_are_independent():
    pred = TwoLevelPredictor(num_contexts=2)
    for _ in range(20):
        pred.update(7, 0, True, pred.predict(7, 0))
    # Context 1 has never trained with its own history path; its index
    # differs, so training context 0 must not force context 1's answer
    # through the history register.
    assert pred._histories[0] != pred._histories[1]


def test_history_sync():
    pred = TwoLevelPredictor(num_contexts=2)
    for _ in range(5):
        pred.update(3, 0, True, True)
    pred.sync_history(0, 1)
    assert pred._histories[0] == pred._histories[1]


def test_mispredict_counter():
    pred = TwoLevelPredictor(num_contexts=1)
    guess = pred.predict(9, 0)
    pred.update(9, 0, not guess, guess)
    assert pred.mispredicts == 1


def test_pht_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        TwoLevelPredictor(pht_entries=1000)


# ------------------------------------------------------------------- BTB
def test_btb_miss_then_hit():
    btb = BTB(16)
    assert btb.predict(5) is None
    btb.update(5, 42)
    assert btb.predict(5) == 42


def test_btb_conflict_eviction():
    btb = BTB(16)
    btb.update(5, 42)
    btb.update(5 + 16, 99)  # same index, different tag
    assert btb.predict(5) is None
    assert btb.predict(5 + 16) == 99


def test_btb_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        BTB(100)


# ------------------------------------------------------------------- RAS
def test_ras_lifo_order():
    ras = ReturnAddressStack(4)
    ras.push(10)
    ras.push(20)
    assert ras.pop() == 20
    assert ras.pop() == 10
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ras_copy_from():
    a, b = ReturnAddressStack(4), ReturnAddressStack(4)
    a.push(7)
    b.copy_from(a)
    assert b.pop() == 7
    assert a.pop() == 7  # copy, not alias


def test_ras_depth_validation():
    with pytest.raises(ValueError):
        ReturnAddressStack(0)


# ----------------------------------------------------------- trace cache
def test_trace_cache_block_limits():
    assert TraceCacheModel(enabled=True, max_blocks=3).blocks_per_fetch() == 3
    assert TraceCacheModel(enabled=False, max_blocks=3).blocks_per_fetch() == 1
